"""Unit tests for the Table III scenarios."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import scenarios


class TestScenarioTable:
    def test_ten_scenarios(self):
        assert scenarios.scenario_ids() == tuple(range(1, 11))

    def test_unknown_id_rejected(self):
        with pytest.raises(WorkloadError):
            scenarios.scenario(11)

    def test_datacenter_vs_arvr_split(self):
        assert all(s.use_case == "datacenter"
                   for s in scenarios.datacenter_scenarios())
        assert all(s.use_case == "arvr"
                   for s in scenarios.arvr_scenarios())

    def test_scenario_1_contents(self):
        sc = scenarios.scenario(1)
        assert sc.model_names == ("gpt_l", "bert_large")
        assert sc.instance("gpt_l").batch == 1
        assert sc.instance("bert_large").batch == 3

    def test_scenario_3_differs_from_2_only_in_resnet_batch(self):
        sc2, sc3 = scenarios.scenario(2), scenarios.scenario(3)
        assert sc2.model_names == sc3.model_names
        assert sc2.instance("resnet50").batch == 1
        assert sc3.instance("resnet50").batch == 32

    def test_scenario_5_is_widest(self):
        assert len(scenarios.scenario(5)) == 6

    def test_scenario_4_batches_match_table3(self):
        sc = scenarios.scenario(4)
        batches = {i.name: i.batch for i in sc}
        assert batches == {"gpt_l": 8, "bert_large": 24, "unet": 1,
                           "resnet50": 32}

    def test_arvr_scenario_10(self):
        sc = scenarios.scenario(10)
        assert sc.model_names == ("eyecod", "hand_sp")
        assert sc.instance("eyecod").batch == 60

    def test_scenarios_cached(self):
        assert scenarios.scenario(1) is scenarios.scenario(1)
