"""Shared fixtures: small deterministic workloads and MCMs for fast tests."""

from __future__ import annotations

import pytest

from repro.core.budget import SearchBudget
from repro.dataflow.database import LayerCostDatabase
from repro.mcm import templates
from repro.workloads.layer import conv, gemm
from repro.workloads.model import Model, ModelInstance, Scenario


@pytest.fixture
def tiny_conv_model() -> Model:
    """A 4-layer conv model (spatial-heavy: Shi-affine)."""
    return Model(name="tinyconv", layers=(
        conv("c0", c=3, k=16, y=32, x=32, r=3),
        conv("c1", c=16, k=32, y=16, x=16, r=3, stride=2),
        conv("c2", c=32, k=32, y=16, x=16, r=3),
        conv("c3", c=32, k=64, y=8, x=8, r=3, stride=2),
    ))


@pytest.fixture
def tiny_gemm_model() -> Model:
    """A 3-layer GEMM model (channel-heavy: NVDLA-affine)."""
    return Model(name="tinygemm", layers=(
        gemm("g0", m=32, n_out=512, k_in=256),
        gemm("g1", m=32, n_out=1024, k_in=512),
        gemm("g2", m=32, n_out=256, k_in=1024),
    ))


@pytest.fixture
def tiny_scenario(tiny_conv_model, tiny_gemm_model) -> Scenario:
    """Two small models, one batched."""
    return Scenario(name="tiny", instances=(
        ModelInstance(tiny_conv_model, 4),
        ModelInstance(tiny_gemm_model, 2),
    ))


@pytest.fixture
def het_mcm():
    """Het-Sides 3x3 at the datacenter operating point."""
    return templates.build("het_sides_3x3")


@pytest.fixture
def nvd_mcm():
    """Homogeneous NVDLA 3x3."""
    return templates.build("simba_nvd_3x3")


@pytest.fixture
def het_2x2():
    """The Fig. 2 motivational 2x2 MCM."""
    return templates.build("het_2x2")


@pytest.fixture
def database():
    """A fresh 500 MHz layer-cost database."""
    return LayerCostDatabase(clock_hz=500e6)


@pytest.fixture
def small_budget() -> SearchBudget:
    """Tight search budget for fast engine tests."""
    return SearchBudget(top_k_segmentations=2, max_segment_candidates=16,
                        max_root_combos=4, max_paths_per_model=4,
                        max_candidates_per_window=40, seed=1)
