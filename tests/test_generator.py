"""Tests for the seeded scenario generator (repro.workloads.generator)."""

import pytest

from repro.config import scenario_from_dict, scenario_to_dict
from repro.errors import ConfigError, WorkloadError
from repro.workloads import (
    GeneratorSpec,
    generate,
    random_mix,
    replicated,
    use_case_batches,
    use_case_models,
    zoo,
)


class TestUseCasePools:
    def test_datacenter_pool_matches_table3(self):
        assert use_case_models("datacenter") == (
            "bert_base", "bert_large", "googlenet", "gpt_l", "resnet50",
            "unet")

    def test_arvr_pool_matches_table3(self):
        assert set(use_case_models("arvr")) == {
            "d2go", "planercnn", "midas", "emformer", "hrvit", "hand_sp",
            "eyecod", "sp2dense"}

    def test_batch_pools(self):
        assert use_case_batches("datacenter") == (1, 3, 8, 24, 32)
        assert use_case_batches("arvr") == (3, 10, 15, 30, 45, 60)

    def test_unknown_use_case_rejected(self):
        with pytest.raises(WorkloadError, match="unknown use case"):
            use_case_models("edge")
        with pytest.raises(WorkloadError, match="unknown use case"):
            use_case_batches("edge")


class TestRandomMix:
    def test_same_seed_is_bit_identical(self):
        a = random_mix(42, tenants=5)
        b = random_mix(42, tenants=5)
        assert a == b  # full dataclass equality, layers included

    def test_wire_round_trip_exact(self):
        sc = random_mix(7, tenants=4, use_case="arvr")
        assert scenario_from_dict(scenario_to_dict(sc)) == sc

    def test_different_seeds_differ(self):
        mixes = {random_mix(seed, tenants=4).model_names
                 for seed in range(8)}
        assert len(mixes) > 1

    def test_sibling_index_differs_but_is_deterministic(self):
        assert random_mix(3, index=0) == random_mix(3, index=0)
        assert any(random_mix(3, index=0).model_names
                   != random_mix(3, index=i).model_names
                   or random_mix(3, index=0) != random_mix(3, index=i)
                   for i in range(1, 6))

    def test_use_case_constrains_models_and_batches(self):
        sc = random_mix(11, tenants=6, use_case="arvr")
        assert sc.use_case == "arvr"
        pool = set(use_case_models("arvr"))
        batches = set(use_case_batches("arvr"))
        for inst in sc:
            assert inst.model.name in pool
            assert inst.batch in batches

    def test_repeated_tenants_get_hash_k_names(self):
        sc = random_mix(1, tenants=12)  # 12 draws from a 6-model pool
        names = sc.model_names
        assert len(set(names)) == 12  # tenant-unique
        assert any("#" in name for name in names)

    def test_explicit_pools(self):
        sc = random_mix(5, tenants=3, models=("resnet50",), batches=(4,))
        assert all(inst.model.name == "resnet50" and inst.batch == 4
                   for inst in sc)
        assert sc.model_names == ("resnet50", "resnet50#2", "resnet50#3")

    def test_bad_model_pool_rejected(self):
        with pytest.raises(WorkloadError, match="unknown model"):
            random_mix(0, models=("nonexistent",))

    def test_bad_tenants_rejected(self):
        with pytest.raises(WorkloadError):
            random_mix(0, tenants=0)


class TestReplicated:
    def test_names_and_batches(self):
        sc = replicated("eyecod", (30, 60), use_case="arvr")
        assert sc.model_names == ("eyecod", "eyecod#2")
        assert [inst.batch for inst in sc] == [30, 60]
        assert all(inst.model == zoo.build("eyecod") for inst in sc)

    def test_wire_round_trip_exact(self):
        sc = replicated("resnet50", (1, 8, 32))
        assert scenario_from_dict(scenario_to_dict(sc)) == sc

    def test_empty_batches_rejected(self):
        with pytest.raises(WorkloadError):
            replicated("eyecod", ())


class TestGeneratorSpec:
    def test_round_trip(self):
        spec = GeneratorSpec(kind="random_mix", seed=9, count=3,
                             use_case="arvr", tenants=2)
        assert GeneratorSpec.from_dict(spec.to_dict()) == spec

    def test_generate_is_deterministic(self):
        spec = GeneratorSpec(kind="random_mix", seed=5, count=4)
        assert generate(spec) == generate(spec)

    def test_growing_count_is_a_prefix(self):
        small = GeneratorSpec(kind="random_mix", seed=5, count=2)
        large = GeneratorSpec(kind="random_mix", seed=5, count=4)
        assert generate(large)[:2] == generate(small)

    def test_replicated_requires_model(self):
        with pytest.raises(ConfigError, match="model"):
            GeneratorSpec(kind="replicated")

    def test_replicated_explicit_batches(self):
        spec = GeneratorSpec(kind="replicated", model="eyecod",
                             batches=(30, 60), use_case="arvr")
        (sc,) = generate(spec)
        assert sc.model_names == ("eyecod", "eyecod#2")

    def test_replicated_sampled_batches_deterministic(self):
        spec = GeneratorSpec(kind="replicated", model="hand_sp",
                             tenants=3, use_case="arvr", seed=2, count=2)
        fam = generate(spec)
        assert fam == generate(spec)
        assert all(len(sc) == 3 for sc in fam)
        pool = set(use_case_batches("arvr"))
        assert all(inst.batch in pool for sc in fam for inst in sc)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown generator kind"):
            GeneratorSpec(kind="fancy")

    def test_kind_irrelevant_fields_rejected(self):
        with pytest.raises(ConfigError, match="random_mix ignores"):
            GeneratorSpec(kind="random_mix", model="eyecod")
        with pytest.raises(ConfigError, match="one 'model'"):
            GeneratorSpec(kind="replicated", model="eyecod",
                          models=("eyecod", "midas"))

    def test_not_a_spec_document_rejected(self):
        with pytest.raises(ConfigError):
            GeneratorSpec.from_dict({"kind": "something_else"})

    def test_scenario_names_are_unique(self):
        spec = GeneratorSpec(kind="random_mix", seed=1, count=5)
        names = [sc.name for sc in generate(spec)]
        assert len(set(names)) == 5
