"""Golden determinism snapshots for the SCAR scheduler.

These pin the end-to-end numeric behaviour of the full search pipeline on
``tiny_scenario`` for the four engine-mode combinations (packing x
provisioning x seg_search), so that refactors of the evaluation hot path
-- the segment-cost cache, the parallel window search -- provably change
nothing numerically.  If an intentional model change shifts these values,
regenerate them with the snippet in each failure message and review the
diff in the PR.
"""

from __future__ import annotations

import pytest

from repro.core.budget import SearchBudget
from repro.core.scar import SCARScheduler

#: (packing, provisioning, seg_search) -> (latency_s, energy_j, edp).
#: Regenerate: run SCARScheduler on tiny_scenario with GOLDEN_BUDGET,
#: nsplits=1, on het_sides_3x3 and print metrics with repr().
GOLDEN = {
    ("greedy", "uniform", "enumerative"):
        (5.571568e-05, 0.00021417920256000002, 1.1933139912488141e-08),
    ("uniform", "uniform", "enumerative"):
        (5.769968e-05, 0.00022271901184, 1.285081571308421e-08),
    ("greedy", "exhaustive", "enumerative"):
        (5.4435679999999996e-05, 0.00021271739904, 1.1579416264573746e-08),
    ("greedy", "uniform", "evolutionary"):
        (5.4435679999999996e-05, 0.00021271739904, 1.1579416264573746e-08),
}

GOLDEN_BUDGET = SearchBudget(top_k_segmentations=2,
                             max_segment_candidates=16,
                             max_root_combos=4, max_paths_per_model=4,
                             max_candidates_per_window=40, seed=1)


@pytest.mark.parametrize("packing,provisioning,seg_search",
                         sorted(GOLDEN))
def test_golden_snapshot(tiny_scenario, het_mcm, packing, provisioning,
                         seg_search):
    result = SCARScheduler(het_mcm, nsplits=1, budget=GOLDEN_BUDGET,
                           packing=packing, provisioning=provisioning,
                           seg_search=seg_search).schedule(tiny_scenario)
    latency, energy, edp = GOLDEN[(packing, provisioning, seg_search)]
    assert result.metrics.latency_s == pytest.approx(latency, abs=1e-9,
                                                     rel=1e-9)
    assert result.metrics.energy_j == pytest.approx(energy, abs=1e-9,
                                                    rel=1e-9)
    assert result.metrics.edp == pytest.approx(edp, abs=1e-9, rel=1e-9)


@pytest.mark.parametrize("packing,provisioning,seg_search",
                         sorted(GOLDEN))
def test_golden_snapshot_parallel(tiny_scenario, het_mcm, packing,
                                  provisioning, seg_search):
    """jobs=2 must reproduce the committed goldens bit-for-bit too."""
    result = SCARScheduler(het_mcm, nsplits=1, budget=GOLDEN_BUDGET,
                           packing=packing, provisioning=provisioning,
                           seg_search=seg_search,
                           jobs=2).schedule(tiny_scenario)
    latency, energy, edp = GOLDEN[(packing, provisioning, seg_search)]
    assert result.metrics.latency_s == pytest.approx(latency, abs=1e-9,
                                                     rel=1e-9)
    assert result.metrics.energy_j == pytest.approx(energy, abs=1e-9,
                                                    rel=1e-9)
    assert result.metrics.edp == pytest.approx(edp, abs=1e-9, rel=1e-9)


class TestGeneratedReplicatedParity:
    """The multi-tenant extension of the determinism contract: a seeded
    generated scenario running the *same* zoo model twice (``model#k``
    instance names) schedules bit-identically end to end -- through the
    wire file form, serially, with the parallel window search, and on
    the pooled job service."""

    def _request(self, tmp_path):
        from repro.api import ScheduleRequest
        from repro.config import (
            load_json,
            save_json,
            scenario_from_dict,
            scenario_to_dict,
        )
        from repro.workloads import replicated

        scenario = replicated("eyecod", (30, 60), use_case="arvr")
        path = tmp_path / "scenario.json"
        save_json(scenario_to_dict(scenario), path)
        loaded = scenario_from_dict(load_json(path))
        assert loaded == scenario  # the file round-trip is exact
        return loaded, ScheduleRequest.for_scenario(
            loaded, template="het_sides_3x3", nsplits=1,
            budget=GOLDEN_BUDGET)

    def test_serial_vs_parallel_vs_pooled_service(self, tmp_path):
        from repro.api import Session
        from repro.service import SchedulerService

        loaded, request = self._request(tmp_path)
        serial = Session().submit(request)
        # The duplicated-tenant schedule is a valid layer partition.
        serial.schedule.validate(loaded)
        assert serial.request.resolve_scenario() == loaded

        # jobs=2 fans the window search over worker processes; jobs is
        # part of the request (and cache key), so compare the payload.
        parallel = Session().submit(request.replace(jobs=2))
        assert parallel.schedule == serial.schedule
        assert parallel.metrics == serial.metrics
        assert parallel.window_candidates == serial.window_candidates
        assert parallel.num_evaluated == serial.num_evaluated

        with SchedulerService(Session(), workers=2) as service:
            pooled = service.submit(request).result()
        assert pooled.same_payload(serial)
