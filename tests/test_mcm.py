"""Unit tests for chiplets, the MCM package and templates (Fig. 6)."""

import pytest

from repro.errors import ConfigError, HardwareError
from repro.mcm import templates
from repro.mcm.chiplet import (
    Chiplet,
    arvr_chiplet,
    chiplet_for_use_case,
    datacenter_chiplet,
)
from repro.mcm.package import MCM
from repro.mcm.topology import mesh
from repro.units import MB


class TestChiplet:
    def test_operating_points(self):
        assert datacenter_chiplet("nvdla").num_pes == 4096
        assert arvr_chiplet("nvdla").num_pes == 256
        assert datacenter_chiplet("nvdla").sram_bytes == 10 * MB

    def test_use_case_dispatch(self):
        assert chiplet_for_use_case("nvdla", "datacenter").num_pes == 4096
        assert chiplet_for_use_case("nvdla", "arvr").num_pes == 256
        with pytest.raises(HardwareError):
            chiplet_for_use_case("nvdla", "mobile")

    def test_invalid_dataflow_rejected(self):
        with pytest.raises(Exception):
            Chiplet(dataflow="tpu", num_pes=16)

    def test_invalid_resources_rejected(self):
        with pytest.raises(HardwareError):
            Chiplet(dataflow="nvdla", num_pes=0)
        with pytest.raises(HardwareError):
            Chiplet(dataflow="nvdla", num_pes=16, noc_gbps=0)

    def test_with_dataflow(self):
        shi = datacenter_chiplet("nvdla").with_dataflow("shidiannao")
        assert shi.dataflow == "shidiannao"
        assert shi.num_pes == 4096

    def test_class_key_equality(self):
        assert datacenter_chiplet("nvdla").class_key \
            == datacenter_chiplet("nvdla").class_key


class TestMCM:
    def test_chiplet_count_must_match_topology(self):
        with pytest.raises(HardwareError):
            MCM(name="bad",
                chiplets=(datacenter_chiplet("nvdla"),) * 3,
                topology=mesh(2, 2))

    def test_dataflow_counts(self, het_mcm):
        counts = het_mcm.dataflow_counts()
        assert counts == {"nvdla": 6, "shidiannao": 3}

    def test_chiplet_classes_deduplicated(self, het_mcm):
        assert len(het_mcm.chiplet_classes()) == 2

    def test_nodes_with_dataflow(self, het_mcm):
        assert het_mcm.nodes_with_dataflow("shidiannao") == (1, 4, 7)

    def test_io_nodes_on_side_columns(self, het_mcm):
        assert het_mcm.io_nodes == (0, 2, 3, 5, 6, 8)

    def test_io_hops(self, het_mcm):
        assert het_mcm.io_hops(0) == 0
        assert het_mcm.io_hops(4) == 1

    def test_nearest_io_deterministic(self, het_mcm):
        assert het_mcm.nearest_io(4) == 3  # ties break to lowest id

    def test_is_heterogeneous(self, het_mcm, nvd_mcm):
        assert het_mcm.is_heterogeneous
        assert not nvd_mcm.is_heterogeneous

    def test_out_of_range_chiplet(self, het_mcm):
        with pytest.raises(HardwareError):
            het_mcm.chiplet(9)

    def test_summary_and_diagram(self, het_mcm):
        assert "het_sides_3x3" in het_mcm.summary()
        diagram = het_mcm.grid_diagram()
        assert diagram.splitlines()[0] == "NVD SHI NVD"


class TestTemplates:
    def test_all_templates_build(self):
        for name in templates.template_names():
            mcm = templates.build(name)
            assert mcm.num_chiplets == mcm.topology.num_nodes

    def test_unknown_template_rejected(self):
        with pytest.raises(ConfigError):
            templates.build("het_9x9")

    def test_checkerboard_pattern(self):
        cb = templates.build("het_cb_3x3")
        assert cb.dataflow_counts() == {"nvdla": 5, "shidiannao": 4}
        assert cb.chiplet(0).dataflow == "nvdla"
        assert cb.chiplet(1).dataflow == "shidiannao"

    def test_het_cross_pattern(self):
        cross = templates.build("het_cross_6x6")
        counts = cross.dataflow_counts()
        assert counts["shidiannao"] == 20
        assert counts["nvdla"] == 16
        # Corners are NVDLA.
        for corner in (0, 5, 30, 35):
            assert cross.chiplet(corner).dataflow == "nvdla"

    def test_motivational_2x2(self, het_2x2):
        assert het_2x2.dataflow_counts() == {"nvdla": 3, "shidiannao": 1}

    def test_triangular_templates_use_triangular_topology(self):
        assert templates.build("het_t").topology.kind == "triangular"
        assert templates.build("simba_t_nvd").topology.kind == "triangular"

    def test_use_case_controls_operating_point(self):
        dc = templates.build("simba_nvd_3x3", "datacenter")
        edge = templates.build("simba_nvd_3x3", "arvr")
        assert dc.chiplet(0).num_pes == 4096
        assert edge.chiplet(0).num_pes == 256

    def test_custom_mesh(self):
        mcm = templates.custom_mesh("c", 1, 2, ["nvdla", "shidiannao"])
        assert mcm.chiplet(1).dataflow == "shidiannao"
        with pytest.raises(ConfigError):
            templates.custom_mesh("c", 2, 2, ["nvdla"])
