"""The vectorized cost kernel (``eval_mode="vector"``).

The contract under test: the numpy tensor kernel is an *accelerator*,
never a different cost model.  Every schedule, metric, candidate
population and perf counter it produces must be bit-identical to the
scalar Sec. III-E reference, across scenarios, templates (mesh and
triangular), seg-search modes and randomly generated tenant mixes; and
the whole ``eval_mode`` plumbing (request validation, wire round-trip,
session default, sweep axis, CLI flags, missing-numpy failure) must
behave like the existing ``backend`` knob.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.api import ScheduleRequest, Session
from repro.core import QUICK_BUDGET, SCARScheduler, objective_by_name
from repro.core.evalcache import EvalCache
from repro.engine import (
    EVAL_MODES,
    CandidateEvaluator,
    TensorEvaluator,
    have_numpy,
)
from repro.engine.tensorkernel import require_numpy
from repro.errors import ConfigError, SearchError
from repro.mcm import templates
from repro.sweep import SweepSpec
from repro.workloads import scenario
from repro.workloads.generator import random_mix


def _results(request: ScheduleRequest):
    """(scalar, vector) results for one request via session defaults.

    Both sessions see the *same* request (``eval_mode=None``), so
    ``ScheduleResult.same_payload`` -- which compares the request too --
    is exactly the parity contract.
    """
    scalar = Session(eval_mode="scalar").submit(request)
    vector = Session(eval_mode="vector").submit(request)
    return scalar, vector


def _quick_request(workload, **kwargs) -> ScheduleRequest:
    kwargs.setdefault("nsplits", 2)
    kwargs.setdefault("budget", QUICK_BUDGET)
    return ScheduleRequest.for_scenario(workload, **kwargs)


class TestBitIdentity:
    """vector == scalar, bit for bit, through the full public stack."""

    @pytest.mark.parametrize("scenario_id", [1, 2])
    def test_table3_scenarios(self, scenario_id):
        scalar, vector = _results(_quick_request(scenario_id))
        assert vector.same_payload(scalar)

    def test_evolutionary_search(self):
        scalar, vector = _results(
            _quick_request(1, seg_search="evolutionary"))
        assert vector.same_payload(scalar)

    def test_triangular_template(self):
        scalar, vector = _results(_quick_request(1, template="het_t"))
        assert vector.same_payload(scalar)

    @pytest.mark.parametrize("seed", [7, 19, 23])
    def test_random_tenant_mixes(self, seed):
        """Seeded random workloads: batches, models and tenant counts
        vary, so divisor grids and table shapes do too."""
        workload = random_mix(seed, tenants=2 + seed % 2,
                              use_case="datacenter")
        scalar, vector = _results(_quick_request(workload))
        assert vector.same_payload(scalar)

    def test_perf_accounting_parity(self):
        """The delta-evaluation counters ride through PerfReport
        unchanged: the tensor kernel plugs in below the accounting."""
        scalar, vector = _results(_quick_request(1))
        assert vector.perf.num_evaluated == scalar.perf.num_evaluated
        assert vector.perf.num_segments == scalar.perf.num_segments
        assert (vector.perf.num_segments_recosted
                == scalar.perf.num_segments_recosted)
        assert vector.perf.num_segments_recosted > 0

    def test_explicit_request_mode_beats_session_default(self):
        request = _quick_request(1, eval_mode="vector")
        result = Session(eval_mode="scalar").submit(request)
        baseline = Session().submit(_quick_request(1))
        assert result.schedule == baseline.schedule
        assert result.metrics == baseline.metrics

    def test_delta_off_parity(self):
        """use_delta=False recomputes every chain through the tensor
        kernel; results still match the scalar reference."""
        sc = scenario(1)
        mcm = templates.build("het_sides_3x3", sc.use_case)

        def run(eval_mode):
            return SCARScheduler(
                mcm, objective=objective_by_name("edp"), nsplits=2,
                budget=QUICK_BUDGET, use_delta=False,
                eval_mode=eval_mode).schedule(sc)

        scalar, vector = run("scalar"), run("vector")
        assert vector.metrics == scalar.metrics
        assert vector.schedule == scalar.schedule
        assert vector.num_evaluated == scalar.num_evaluated


class TestEvaluatorUnit:
    """TensorEvaluator as a drop-in CandidateEvaluator."""

    def test_is_candidate_evaluator(self):
        sc = scenario(1)
        mcm = templates.build("het_sides_3x3", sc.use_case)
        evaluator = TensorEvaluator(sc, mcm, cache=EvalCache())
        assert isinstance(evaluator, CandidateEvaluator)

    def test_schedule_evaluate_matches_scalar(self):
        sc = scenario(1)
        mcm = templates.build("het_sides_3x3", sc.use_case)
        result = SCARScheduler(mcm, nsplits=2, budget=QUICK_BUDGET,
                               eval_mode="scalar").schedule(sc)
        vector = TensorEvaluator(sc, mcm, cache=EvalCache())
        scalar = CandidateEvaluator(sc, mcm, cache=EvalCache())
        assert (vector.evaluate(result.schedule)
                == scalar.evaluate(result.schedule))


class TestValidationAndPlumbing:
    """eval_mode behaves like the backend knob at every layer."""

    def test_eval_modes_constant(self):
        assert EVAL_MODES == ("scalar", "vector")
        assert have_numpy()
        require_numpy()  # no-op when numpy is importable

    def test_request_rejects_unknown_mode(self):
        with pytest.raises(ConfigError, match="eval_mode"):
            ScheduleRequest(scenario_id=1, eval_mode="bogus")

    def test_scheduler_rejects_unknown_mode(self):
        mcm = templates.build("het_sides_3x3", "datacenter")
        with pytest.raises(SearchError, match="eval_mode"):
            SCARScheduler(mcm, eval_mode="fast")

    def test_session_rejects_unknown_mode(self):
        with pytest.raises(ConfigError, match="eval_mode"):
            Session(eval_mode="tensor")

    def test_make_evaluator_picks_kernel(self):
        sc = scenario(1)
        mcm = templates.build("het_sides_3x3", sc.use_case)
        scalar = SCARScheduler(mcm).make_evaluator(sc)
        vector = SCARScheduler(mcm,
                               eval_mode="vector").make_evaluator(sc)
        assert type(scalar) is CandidateEvaluator
        assert type(vector) is TensorEvaluator
        assert scalar.delta and vector.delta

    def test_wire_round_trip(self):
        request = ScheduleRequest(scenario_id=1, eval_mode="vector")
        assert ScheduleRequest.from_dict(request.to_dict()) == request
        assert '"eval_mode":"vector"' in request.cache_key()

    def test_cache_key_separates_modes(self):
        scalar = ScheduleRequest(scenario_id=1, eval_mode="scalar")
        vector = ScheduleRequest(scenario_id=1, eval_mode="vector")
        unset = ScheduleRequest(scenario_id=1)
        assert len({scalar.cache_key(), vector.cache_key(),
                    unset.cache_key()}) == 3

    def test_legacy_document_means_unset(self):
        """Requests serialized before the kernel landed still load."""
        data = ScheduleRequest(scenario_id=1).to_dict()
        del data["eval_mode"]
        assert ScheduleRequest.from_dict(data).eval_mode is None

    def test_sweep_axis(self):
        spec = SweepSpec(scenarios=(1,),
                         eval_modes=("scalar", "vector"))
        requests = spec.requests()
        assert spec.size == len(requests) == 2
        assert {r.eval_mode for r in requests} == {"scalar", "vector"}
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_sweep_legacy_document_means_scalar_default(self):
        data = SweepSpec(scenarios=(1,)).to_dict()
        del data["eval_modes"]
        assert SweepSpec.from_dict(data).eval_modes == (None,)

    def test_determinism_lint_covers_the_kernel(self):
        from repro.analysis.determinism import _in_scope

        assert _in_scope("repro.engine.tensorkernel")


class TestMissingNumpy:
    """Without numpy: vector fails fast and clear, scalar never cares."""

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        import repro.engine.tensorkernel as tk

        monkeypatch.setattr(tk, "_np", None)

    def test_have_and_require(self, no_numpy):
        assert not have_numpy()
        with pytest.raises(ConfigError,
                           match="requires numpy.*eval_mode='scalar'"):
            require_numpy()

    def test_scheduler_fails_at_construction(self, no_numpy):
        mcm = templates.build("het_sides_3x3", "datacenter")
        with pytest.raises(ConfigError, match="numpy"):
            SCARScheduler(mcm, eval_mode="vector")

    def test_session_fails_at_construction(self, no_numpy):
        with pytest.raises(ConfigError, match="numpy"):
            Session(eval_mode="vector")

    def test_vector_request_fails_as_config_error(self, no_numpy):
        """A vector request on a numpy-less host surfaces the stable
        config_error wire code (HTTP 400 through the service)."""
        from repro.api import ErrorDocument

        request = _quick_request(1, eval_mode="vector")
        with pytest.raises(ConfigError) as excinfo:
            Session().submit(request)
        assert ErrorDocument.from_exception(excinfo.value).code \
            == "config_error"

    def test_scalar_path_still_runs(self, no_numpy):
        result = Session().submit(_quick_request(1))
        assert result.num_evaluated > 0
