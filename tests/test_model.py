"""Unit tests for Model / ModelInstance / Scenario."""

import math

import pytest

from repro.errors import WorkloadError
from repro.workloads.layer import conv
from repro.workloads.model import (
    Model,
    ModelInstance,
    Scenario,
    scheduling_space_magnitude,
)


def _model(name="m", n=3):
    return Model(name=name, layers=tuple(
        conv(f"l{i}", c=4, k=4, y=4, x=4) for i in range(n)))


class TestModel:
    def test_len_iter_getitem(self):
        model = _model(n=4)
        assert len(model) == 4
        assert [l.name for l in model] == ["l0", "l1", "l2", "l3"]
        assert model[2].name == "l2"

    def test_empty_model_rejected(self):
        with pytest.raises(WorkloadError, match="no layers"):
            Model(name="m", layers=())

    def test_duplicate_layer_names_rejected(self):
        layer = conv("dup", c=1, k=1, y=1, x=1)
        with pytest.raises(WorkloadError, match="duplicate"):
            Model(name="m", layers=(layer, layer))

    def test_skip_edge_must_be_forward(self):
        layers = tuple(conv(f"l{i}", c=1, k=1, y=1, x=1) for i in range(3))
        Model(name="ok", layers=layers, skip_edges=((0, 2),))
        with pytest.raises(WorkloadError):
            Model(name="bad", layers=layers, skip_edges=((2, 0),))

    def test_totals(self):
        model = _model(n=3)
        assert model.total_macs == 3 * model[0].macs
        assert model.total_weight_bytes == 3 * model[0].weight_bytes

    def test_summary_mentions_name_and_count(self):
        text = _model(name="net", n=2).summary()
        assert "net" in text and "2 layers" in text


class TestModelInstance:
    def test_layer_applies_batch(self):
        inst = ModelInstance(_model(), batch=5)
        assert inst.layer(0).n == 5
        assert inst.layers()[2].n == 5

    def test_total_macs_scale(self):
        model = _model()
        assert ModelInstance(model, 4).total_macs == 4 * model.total_macs

    def test_zero_batch_rejected(self):
        with pytest.raises(WorkloadError):
            ModelInstance(_model(), batch=0)

    @pytest.mark.parametrize("batch", [True, False, 2.5, 1.0, "3", None])
    def test_non_int_batch_rejected(self, batch):
        """bool/float/str batches must not poison total_macs (regression:
        ``batch=True`` and ``batch=2.5`` used to be accepted)."""
        with pytest.raises(WorkloadError, match="must be an int"):
            ModelInstance(_model(), batch=batch)

    def test_instance_name_defaults_to_model_name(self):
        inst = ModelInstance(_model("net"))
        assert inst.name == "net" and inst.instance_name is None

    def test_instance_name_overrides(self):
        inst = ModelInstance(_model("net"), 2, instance_name="net#2")
        assert inst.name == "net#2"

    def test_instance_name_equal_to_model_name_normalizes(self):
        """Explicitly naming the instance after its model compares equal
        to the default-named instance (wire round-trip exactness)."""
        assert ModelInstance(_model("net"), 2, instance_name="net") \
            == ModelInstance(_model("net"), 2)

    @pytest.mark.parametrize("name", ["", 7])
    def test_bad_instance_name_rejected(self, name):
        with pytest.raises(WorkloadError, match="instance_name"):
            ModelInstance(_model(), instance_name=name)


class TestScenario:
    def test_lookup_by_name(self):
        sc = Scenario(name="s", instances=(
            ModelInstance(_model("a")), ModelInstance(_model("b"))))
        assert sc.instance("b").name == "b"
        with pytest.raises(WorkloadError):
            sc.instance("missing")

    def test_duplicate_model_names_rejected(self):
        with pytest.raises(WorkloadError, match="duplicate"):
            Scenario(name="s", instances=(
                ModelInstance(_model("a")), ModelInstance(_model("a"))))

    def test_repeated_model_with_instance_names_allowed(self):
        """Multi-tenant scenarios: same model twice under model#k names."""
        sc = Scenario(name="s", instances=(
            ModelInstance(_model("a"), 1),
            ModelInstance(_model("a"), 8, instance_name="a#2")))
        assert sc.model_names == ("a", "a#2")
        assert sc.instance("a#2").batch == 8
        assert sc.instance("a").batch == 1

    def test_duplicate_instance_names_rejected(self):
        with pytest.raises(WorkloadError, match="duplicate"):
            Scenario(name="s", instances=(
                ModelInstance(_model("a"), instance_name="x"),
                ModelInstance(_model("b"), instance_name="x")))

    def test_empty_scenario_rejected(self):
        with pytest.raises(WorkloadError):
            Scenario(name="s", instances=())

    def test_total_layers(self):
        sc = Scenario(name="s", instances=(
            ModelInstance(_model("a", 3)), ModelInstance(_model("b", 5))))
        assert sc.total_layers == 8

    def test_summary_lists_models(self):
        sc = Scenario(name="s", instances=(ModelInstance(_model("a")),))
        assert "a" in sc.summary()


class TestSpaceMagnitude:
    def test_paper_two_model_magnitude(self):
        """ResNet-50 + UNet on 36 chiplets reaches ~O(10^56) (Sec. II-D)."""
        from repro.workloads import zoo
        sc = Scenario(name="s", instances=(
            ModelInstance(zoo.build("resnet50")),
            ModelInstance(zoo.build("unet"))))
        magnitude = scheduling_space_magnitude(sc, 36)
        # The paper quotes 10^56 for L1=50, L2=23; our layer counts are
        # larger, so the magnitude must be at least that.
        assert magnitude >= 56

    def test_single_layer_single_chiplet(self):
        sc = Scenario(name="s", instances=(ModelInstance(_model(n=1)),))
        assert scheduling_space_magnitude(sc, 1) == pytest.approx(0.0)

    def test_monotone_in_chiplets(self):
        sc = Scenario(name="s", instances=(ModelInstance(_model(n=4)),))
        assert scheduling_space_magnitude(sc, 9) \
            > scheduling_space_magnitude(sc, 4)
