"""Unit tests for the SCHED engine's per-window search."""

import pytest

from repro.core.metrics import ScheduleEvaluator
from repro.core.packing import WindowAssignment
from repro.core.scoring import edp_objective, latency_objective
from repro.core.sched_engine import (
    build_window_schedule,
    node_affinity_ranks,
    search_window,
)
from repro.core.segmentation import RankedSegmentation
from repro.errors import SearchError


@pytest.fixture
def window(tiny_scenario):
    return WindowAssignment(index=0, ranges=((0, 0, 4), (1, 0, 3)))


@pytest.fixture
def evaluator(tiny_scenario, het_mcm, database):
    return ScheduleEvaluator(tiny_scenario, het_mcm, database)


def _ranked(cuts_by_model):
    return {m: [RankedSegmentation(cuts=c, score=float(i))
                for i, c in enumerate(cuts)]
            for m, cuts in cuts_by_model.items()}


class TestBuildWindowSchedule:
    def test_build_places_segments_along_path(self, window):
        ws = build_window_schedule(window, {0: (2,), 1: ()},
                                   {0: (0, 3), 1: (2,)})
        chain0 = ws.chain_for(0)
        assert [s.node for s in chain0] == [0, 3]
        assert [(s.start, s.stop) for s in chain0] == [(0, 2), (2, 4)]
        assert ws.chain_for(1)[0].node == 2

    def test_path_shorter_than_segments_rejected(self, window):
        with pytest.raises(SearchError):
            build_window_schedule(window, {0: (1, 2), 1: ()},
                                  {0: (0, 3), 1: (2,)})


class TestNodeAffinity:
    def test_gemm_model_ranks_nvdla_first(self, window, evaluator):
        ranks = node_affinity_ranks(window, evaluator, edp_objective())
        gemm_rank = ranks[1]  # model 1 is the GEMM model
        nvd_nodes = evaluator.mcm.nodes_with_dataflow("nvdla")
        shi_nodes = evaluator.mcm.nodes_with_dataflow("shidiannao")
        assert max(gemm_rank[n] for n in nvd_nodes) \
            < min(gemm_rank[n] for n in shi_nodes)

    def test_same_class_nodes_share_rank(self, window, evaluator):
        ranks = node_affinity_ranks(window, evaluator, edp_objective())
        assert ranks[0][0] == ranks[0][3] == ranks[0][6]


class TestSearchWindow:
    def test_finds_valid_candidate(self, window, evaluator, small_budget):
        ranked = _ranked({0: [(), (2,)], 1: [()]})
        best = search_window(window, ranked, evaluator, edp_objective(),
                             small_budget)
        assert best.score > 0
        assert best.window.total_layers == 7
        best.window.chain_for(0)
        best.window.chain_for(1)

    def test_collect_receives_population(self, window, evaluator,
                                         small_budget):
        collected = []
        search_window(window, _ranked({0: [()], 1: [()]}), evaluator,
                      edp_objective(), small_budget, collect=collected)
        assert len(collected) >= 1
        assert all(c.score >= 0 for c in collected)

    def test_best_is_minimum_of_population(self, window, evaluator,
                                           small_budget):
        collected = []
        best = search_window(window, _ranked({0: [(), (1,)], 1: [()]}),
                             evaluator, edp_objective(), small_budget,
                             collect=collected)
        assert best.score == pytest.approx(min(c.score for c in collected))

    def test_objective_changes_choice_metric(self, window, evaluator,
                                             small_budget):
        lat = search_window(window, _ranked({0: [(), (2,)], 1: [()]}),
                            evaluator, latency_objective(), small_budget)
        assert lat.score == pytest.approx(lat.metrics.latency_s)

    def test_infeasible_window_raises(self, tiny_scenario, het_2x2,
                                      database, small_budget):
        evaluator = ScheduleEvaluator(tiny_scenario, het_2x2, database)
        window = WindowAssignment(index=0, ranges=((0, 0, 4), (1, 0, 3)))
        # 3 + 2 segments > 4 chiplets: no placement exists.
        ranked = _ranked({0: [(1, 2)], 1: [(1,)]})
        with pytest.raises(SearchError):
            search_window(window, ranked, evaluator, edp_objective(),
                          small_budget)

    def test_deterministic(self, window, evaluator, small_budget):
        ranked = _ranked({0: [(), (2,)], 1: [(), (1,)]})
        a = search_window(window, ranked, evaluator, edp_objective(),
                          small_budget)
        b = search_window(window, ranked, evaluator, edp_objective(),
                          small_budget)
        assert a.score == b.score
        assert a.window == b.window
