"""Session facade, scheduler registry and legacy-parity tests.

The parity class re-implements the pre-``repro.api`` ExperimentRunner
dispatch (direct scheduler construction) and checks that
``Session.submit`` reproduces it bit-for-bit for every core strategy --
the acceptance gate of the API redesign.
"""

from __future__ import annotations

import pytest

from repro.api import (
    PolicyOutcome,
    ScheduleRequest,
    SchedulerRegistry,
    Session,
)
from repro.core.baselines import NNBatonScheduler, StandaloneScheduler
from repro.core.scar import SCARScheduler
from repro.core.scoring import objective_by_name
from repro.dataflow.database import LayerCostDatabase
from repro.errors import ConfigError
from repro.experiments.runner import (
    CORE_STRATEGIES,
    STRATEGIES,
    ExperimentConfig,
    ExperimentRunner,
    strategy_request,
)
from repro.mcm import templates
from repro.workloads.scenarios import scenario


def _legacy_run(sc, strategy, objective, config, databases):
    """The pre-redesign ExperimentRunner.run dispatch, verbatim."""
    template, policy = STRATEGIES[strategy]
    mcm = templates.build(template, sc.use_case)
    if mcm.clock_hz not in databases:
        databases[mcm.clock_hz] = LayerCostDatabase(clock_hz=mcm.clock_hz)
    database = databases[mcm.clock_hz]
    if policy == "standalone":
        outcome = StandaloneScheduler(mcm, database).schedule(sc)
        return outcome.metrics, outcome.schedule
    if policy == "nn_baton":
        outcome = NNBatonScheduler(mcm, database=database).schedule(sc)
        return outcome.metrics, outcome.schedule
    seg_search = config.seg_search
    if template.endswith("6x6"):
        seg_search = "evolutionary"
    scheduler = SCARScheduler(
        mcm, objective=objective_by_name(objective),
        nsplits=config.nsplits, budget=config.budget, database=database,
        seg_search=seg_search, jobs=config.jobs)
    result = scheduler.schedule(sc)
    return result.metrics, result.schedule


class TestLegacyParity:
    """Session.submit == the pre-redesign scheduler path, bit for bit."""

    def test_core_strategies_bit_identical(self, tiny_scenario):
        config = ExperimentConfig.fast()
        session = Session()
        databases: dict[float, LayerCostDatabase] = {}
        for strategy in CORE_STRATEGIES:
            legacy_metrics, legacy_schedule = _legacy_run(
                tiny_scenario, strategy, "edp", config, databases)
            result = session.submit(strategy_request(
                tiny_scenario, strategy, "edp", config))
            assert result.metrics == legacy_metrics, strategy
            assert result.schedule == legacy_schedule, strategy

    def test_fig8_workload_parity(self):
        """Scenario 3 (the quick Fig. 8 workload) on the quick budget."""
        config = ExperimentConfig.fast()
        session = Session()
        databases: dict[float, LayerCostDatabase] = {}
        for strategy in ("stand_nvd", "het_sides"):
            legacy_metrics, legacy_schedule = _legacy_run(
                scenario(3), strategy, "edp", config, databases)
            result = session.submit(strategy_request(
                3, strategy, "edp", config))
            assert result.metrics == legacy_metrics, strategy
            assert result.schedule == legacy_schedule, strategy

    def test_inline_spec_matches_table3_reference(self):
        """A request built from the Scenario object == the id form."""
        config = ExperimentConfig.fast()
        session = Session()
        by_id = session.submit(strategy_request(1, "het_sides", "edp",
                                                config))
        by_spec = session.submit(strategy_request(scenario(1), "het_sides",
                                                  "edp", config))
        assert by_spec.metrics == by_id.metrics
        assert by_spec.schedule == by_id.schedule


class TestRegistry:
    def test_builtins_registered(self):
        from repro.api import DEFAULT_REGISTRY

        assert set(("standalone", "nn_baton", "scar", "evolutionary")) \
            <= set(DEFAULT_REGISTRY.names())

    def test_strategies_resolve_to_registered_policies(self):
        from repro.api import DEFAULT_REGISTRY

        assert {policy for _, policy in STRATEGIES.values()} \
            <= set(DEFAULT_REGISTRY.names())

    def test_unknown_policy_rejected(self, tiny_scenario):
        request = ScheduleRequest.for_scenario(tiny_scenario,
                                               policy="magic")
        with pytest.raises(ConfigError, match="unknown policy"):
            Session().submit(request)

    def test_duplicate_registration_rejected(self):
        registry = SchedulerRegistry()
        registry.register("p", lambda ctx: None)
        with pytest.raises(ConfigError, match="already registered"):
            registry.register("p", lambda ctx: None)

    def test_bad_name_rejected(self):
        registry = SchedulerRegistry()
        with pytest.raises(ConfigError):
            registry.register("")

    def test_custom_policy_plugin(self, tiny_scenario):
        """A fresh registry drives a session without touching built-ins."""
        registry = SchedulerRegistry()

        @registry.register("reversed_standalone")
        def _policy(ctx):
            outcome = StandaloneScheduler(ctx.mcm, ctx.database) \
                .schedule(ctx.scenario)
            return PolicyOutcome(schedule=outcome.schedule,
                                 metrics=outcome.metrics)

        assert "reversed_standalone" in registry
        session = Session(registry)
        result = session.submit(ScheduleRequest.for_scenario(
            tiny_scenario, template="simba_nvd_3x3",
            policy="reversed_standalone"))
        assert result.metrics.latency_s > 0
        with pytest.raises(ConfigError):
            session.submit(ScheduleRequest.for_scenario(tiny_scenario,
                                                        policy="scar"))


class TestSessionMemo:
    @pytest.fixture
    def request_(self, tiny_scenario, small_budget):
        return ScheduleRequest.for_scenario(
            tiny_scenario, template="het_sides_3x3", policy="scar",
            budget=small_budget, nsplits=1)

    def test_memoized_resubmit_returns_same_object(self, request_):
        session = Session()
        assert session.submit(request_) is session.submit(request_)

    def test_jobs_and_cache_flags_never_alias(self, request_):
        """Distinct jobs / cache-flag settings get distinct memo slots."""
        keys = {request_.cache_key(),
                request_.replace(jobs=2).cache_key(),
                request_.replace(use_eval_cache=False).cache_key(),
                request_.replace(jobs=2,
                                 use_eval_cache=False).cache_key()}
        assert len(keys) == 4

    def test_memoize_false_bypasses_the_memo(self, request_):
        session = Session()
        request = request_.replace(memoize=False)
        first = session.submit(request)
        second = session.submit(request)
        assert first is not second
        assert first.metrics == second.metrics

    def test_eval_cache_off_is_bit_identical(self, request_):
        session = Session()
        cached = session.submit(request_)
        uncached = session.submit(request_.replace(use_eval_cache=False))
        assert cached is not uncached
        assert cached.metrics == uncached.metrics
        assert cached.schedule == uncached.schedule
        # the disabled cache recorded misses only
        assert uncached.perf.overall_hit_rate == 0.0
        assert cached.perf.overall_hit_rate > 0.0

    def test_perf_reports_accumulate(self, request_):
        session = Session()
        session.submit(request_)
        session.submit(request_.replace(objective="latency"))
        assert len(session.perf_reports) == 2
        summary = session.perf_summary()
        assert summary.num_evaluated == sum(
            p.num_evaluated for p in session.perf_reports)


class TestMemoLRU:
    """Session(max_memo=N): bounded result memo with LRU eviction."""

    @pytest.fixture
    def requests(self, tiny_scenario, small_budget):
        base = ScheduleRequest.for_scenario(
            tiny_scenario, template="simba_nvd_3x3", policy="standalone",
            budget=small_budget, nsplits=1)
        return [base, base.replace(template="het_sides_3x3"),
                base.replace(policy="nn_baton")]

    def test_default_is_unbounded(self, requests):
        session = Session()
        assert session.max_memo is None
        for request in requests:
            session.submit(request)
        assert len(session._memo) == len(requests)

    def test_eviction_recomputes_bit_identically(self, requests):
        session = Session(max_memo=1)
        first = session.submit(requests[0])
        session.submit(requests[1])  # evicts requests[0]
        assert len(session._memo) == 1
        again = session.submit(requests[0])
        assert again is not first  # recomputed...
        assert again.metrics == first.metrics  # ...bit-identically
        assert again.schedule == first.schedule

    def test_hit_refreshes_recency(self, requests):
        session = Session(max_memo=2)
        first = session.submit(requests[0])
        second = session.submit(requests[1])
        session.submit(requests[0])  # touch: 0 becomes most recent
        session.submit(requests[2])  # evicts 1, not 0
        assert session.submit(requests[0]) is first
        assert session.submit(requests[1]) is not second

    def test_zero_disables_the_memo(self, requests):
        session = Session(max_memo=0)
        first = session.submit(requests[0])
        assert session.submit(requests[0]) is not first
        assert len(session._memo) == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError, match="max_memo"):
            Session(max_memo=-1)

    def test_batch_path_respects_the_cap(self, requests):
        session = Session(max_memo=1)
        session.submit_many(requests, jobs=2)
        assert len(session._memo) == 1


class TestSubmitMany:
    @pytest.fixture
    def requests(self, tiny_scenario, small_budget):
        base = ScheduleRequest.for_scenario(
            tiny_scenario, template="het_sides_3x3", policy="scar",
            budget=small_budget, nsplits=1)
        return [base,
                base.replace(objective="latency"),
                base.replace(template="simba_nvd_3x3",
                             policy="standalone")]

    def test_serial_batch_matches_submits(self, requests):
        serial = [Session().submit(r) for r in requests]
        batch = Session().submit_many(requests)
        assert [r.metrics for r in batch] == [r.metrics for r in serial]
        assert [r.schedule for r in batch] == [r.schedule for r in serial]

    def test_parallel_batch_is_bit_identical(self, requests):
        serial = Session().submit_many(requests)
        parallel = Session().submit_many(requests, jobs=2)
        assert [r.metrics for r in parallel] == \
            [r.metrics for r in serial]
        assert [r.schedule for r in parallel] == \
            [r.schedule for r in serial]

    def test_parallel_batch_fills_memo_and_perf(self, requests):
        session = Session()
        results = session.submit_many(requests, jobs=2)
        # SCAR requests contributed perf reports, in request order
        assert len(session.perf_reports) == 2
        # and a resubmit is served from the memo
        assert session.submit(requests[0]) is results[0]

    def test_parallel_batch_dedupes_memoizable_duplicates(self, requests):
        session = Session()
        results = session.submit_many([requests[0], requests[0]], jobs=2)
        assert results[0] is results[1]
        assert len(session.perf_reports) == 1  # ran once, like serial

    def test_parallel_results_drop_raw_population(self, requests):
        serial = Session().submit_many([requests[0]])
        parallel = Session().submit_many(list(requests), jobs=2)
        assert serial[0].raw is not None
        assert parallel[0].raw is None  # stays in the worker
        # ...without affecting the deterministic payload
        assert parallel[0].metrics == serial[0].metrics
        assert parallel[0].schedule == serial[0].schedule
        assert parallel[0].window_candidates == \
            serial[0].window_candidates
        assert parallel[0].num_evaluated == serial[0].num_evaluated

    def test_bad_jobs_rejected(self, requests):
        with pytest.raises(ValueError):
            Session().submit_many(requests, jobs=0)


class TestLegacyShim:
    def test_runner_warns_but_works(self, tiny_scenario):
        with pytest.warns(DeprecationWarning, match="Session"):
            runner = ExperimentRunner(ExperimentConfig.fast())
        run = runner.run(tiny_scenario, "het_sides")
        result = Session().submit(strategy_request(
            tiny_scenario, "het_sides", "edp", ExperimentConfig.fast()))
        assert run.metrics == result.metrics
        assert run.schedule == result.schedule
        assert run.scar_result is not None
        assert runner.perf_reports
        assert runner.perf_summary().num_evaluated > 0

    def test_runner_memo_identity_across_calls(self, tiny_scenario):
        with pytest.warns(DeprecationWarning):
            runner = ExperimentRunner(ExperimentConfig.fast())
        assert runner.run(tiny_scenario, "stand_nvd") \
            is runner.run(tiny_scenario, "stand_nvd")
