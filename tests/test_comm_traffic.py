"""Unit tests for the communication model (Lat_com) and NoP contention."""

import pytest

from repro.mcm.comm import CommModel, Transfer
from repro.mcm.traffic import Flow, contention_factors


@pytest.fixture
def comm(het_mcm):
    return CommModel(het_mcm)


class TestLatCom:
    def test_same_chiplet_is_free(self, comm):
        assert comm.chiplet_to_chiplet(1e6, 3, 3) == Transfer.zero()

    def test_zero_size_is_free(self, comm):
        assert comm.chiplet_to_chiplet(0, 0, 1).latency_s == 0
        assert comm.offchip(0, 4).latency_s == 0

    def test_on_package_latency_terms(self, comm, het_mcm):
        size = 1e6
        transfer = comm.chiplet_to_chiplet(size, 0, 2)
        hops = het_mcm.topology.hops(0, 2)
        expected = size / (het_mcm.nop_gbps * 1e9) \
            + hops * het_mcm.nop_hop_s
        assert transfer.latency_s == pytest.approx(expected)
        assert transfer.hops == hops

    def test_offchip_includes_dram_latency(self, comm, het_mcm):
        transfer = comm.offchip(1e6, 4)
        assert transfer.latency_s >= het_mcm.dram_latency_s
        # node 4 is one hop from a side interface
        assert transfer.hops == 1

    def test_offchip_from_io_node_has_no_hops(self, comm):
        assert comm.offchip(1e6, 0).hops == 0

    def test_congestion_scales_serialization_only(self, comm, het_mcm):
        size = 1e8
        base = comm.chiplet_to_chiplet(size, 0, 2)
        congested = comm.chiplet_to_chiplet(size, 0, 2, congestion=2.0)
        serialization = size / (het_mcm.nop_gbps * 1e9)
        assert congested.latency_s - base.latency_s == pytest.approx(
            serialization)

    def test_energy_table2(self, comm):
        # 2.04 pJ/bit/hop NoP, 14.8 pJ/bit DRAM.
        transfer = comm.chiplet_to_chiplet(1.0, 0, 1)
        assert transfer.energy_j == pytest.approx(2.04 * 8 * 1e-12)
        off = comm.offchip(1.0, 0)  # zero hops
        assert off.energy_j == pytest.approx(14.8 * 8 * 1e-12)

    def test_parts_sum_to_transfer(self, comm):
        size = 5e6
        var, fix, energy = comm.chiplet_parts(size, 0, 2)
        whole = comm.chiplet_to_chiplet(size, 0, 2)
        assert var + fix == pytest.approx(whole.latency_s)
        assert energy == pytest.approx(whole.energy_j)
        var, fix, energy = comm.offchip_parts(size, 4)
        whole = comm.offchip(size, 4)
        assert var + fix == pytest.approx(whole.latency_s)
        assert energy == pytest.approx(whole.energy_j)

    def test_transfer_dispatcher(self, comm):
        assert comm.transfer(1e3, None, None) == Transfer.zero()
        assert comm.transfer(1e3, None, 4).latency_s \
            == comm.offchip(1e3, 4).latency_s
        assert comm.transfer(1e3, 0, 2).latency_s \
            == comm.chiplet_to_chiplet(1e3, 0, 2).latency_s

    def test_transfer_addition(self):
        a = Transfer(1.0, 2.0, 1, 10.0)
        b = Transfer(0.5, 1.0, 2, 20.0)
        c = a + b
        assert (c.latency_s, c.energy_j, c.hops, c.size_bytes) \
            == (1.5, 3.0, 3, 30.0)


class TestContention:
    def test_disjoint_flows_no_contention(self, het_mcm):
        flows = [Flow(0, 1, 1e6), Flow(6, 7, 1e6)]
        assert contention_factors(het_mcm, flows) == [1.0, 1.0]

    def test_shared_link_counts_flows(self, het_mcm):
        # Both flows traverse link (0, 1) under XY routing.
        flows = [Flow(0, 1, 1e6), Flow(0, 2, 1e6)]
        factors = contention_factors(het_mcm, flows)
        assert factors == [2.0, 2.0]

    def test_zero_size_flow_ignored(self, het_mcm):
        flows = [Flow(0, 1, 0.0), Flow(0, 2, 1e6)]
        assert contention_factors(het_mcm, flows) == [1.0, 1.0]

    def test_offchip_flows_share_dram_channel(self, het_mcm):
        flows = [Flow(None, 0, 1e6), Flow(None, 8, 1e6),
                 Flow(2, None, 1e6)]
        factors = contention_factors(het_mcm, flows)
        assert all(f >= 3.0 for f in factors)

    def test_same_chiplet_flow_unaffected(self, het_mcm):
        flows = [Flow(3, 3, 1e6)]
        assert contention_factors(het_mcm, flows) == [1.0]
