"""The HTTP layer: live-server parity, lifecycle over the wire, errors."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import ErrorDocument, ScheduleRequest, Session
from repro.errors import (
    ConfigError,
    JobNotFoundError,
    ServiceError,
    ServiceOverloadedError,
    WorkloadError,
)
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    ServiceClient,
    local_service,
)
from service_helpers import (
    POLICIES,
    assert_equivalent,
    gated_registry,
    request_for,
)


class TestLiveServerParity:
    def test_every_policy_bit_identical_over_http(self, tiny_scenario,
                                                  small_budget):
        """The issue's acceptance gate: ServiceClient against a live
        server == Session.submit, for every built-in policy."""
        requests = [request_for(tiny_scenario, small_budget, policy)
                    for policy in POLICIES]
        reference = [Session().submit(r) for r in requests]
        with local_service(workers=2) as (url, _service):
            client = ServiceClient(url)
            handles = client.submit_many(requests)
            results = [h.result(timeout=600) for h in handles]
        for got, want in zip(results, reference):
            assert_equivalent(got, want)

    def test_single_submit_and_resubmit_after_eviction(self,
                                                       tiny_scenario,
                                                       small_budget):
        a = request_for(tiny_scenario, small_budget, "standalone")
        b = request_for(tiny_scenario, small_budget, "nn_baton")
        reference = Session().submit(a)
        with local_service(Session(max_memo=1),
                           workers=1) as (url, _service):
            client = ServiceClient(url)
            first = client.submit(a).result(timeout=300)
            client.submit(b).result(timeout=300)  # evicts a's memo entry
            again = client.submit(a).result(timeout=300)
        assert_equivalent(first, reference)
        assert_equivalent(again, reference)


class TestJobLifecycleOverHTTP:
    @pytest.fixture
    def gated(self, tiny_scenario, small_budget):
        registry, started, release, _order = gated_registry()
        request = ScheduleRequest.for_scenario(
            tiny_scenario, template="het_sides_3x3", policy="gated",
            budget=small_budget, nsplits=1)
        with local_service(Session(registry), workers=1) as (url, svc):
            yield ServiceClient(url), request, started, release
            release.set()

    def test_result_before_done_raises(self, gated):
        client, request, started, release = gated
        handle = client.submit(request)
        assert started.wait(timeout=60)
        with pytest.raises(ServiceError, match="job_not_done|RUNNING"):
            client.result(handle.job_id)
        release.set()
        assert handle.result(timeout=300).metrics.latency_s > 0

    def test_delete_cancels_queued_job(self, gated):
        client, request, started, release = gated
        client.submit(request)  # occupies the single worker
        assert started.wait(timeout=60)
        queued = client.submit(request.replace(prov_limit=63))
        record = queued.cancel()
        assert record.state == CANCELLED
        with pytest.raises(ServiceError, match="cancelled"):
            client.result(queued.job_id)
        release.set()

    def test_job_listing_and_progress_events(self, gated):
        client, request, started, release = gated
        handle = client.submit(request)
        release.set()
        record = handle.wait(timeout=300)
        assert record.state == DONE
        assert [e.state for e in record.events] == \
            ["QUEUED", "RUNNING", "DONE"]
        assert record.queue_s is not None and record.run_s is not None
        listed = client.jobs()
        assert [r.job_id for r in listed] == [handle.job_id]

    def test_failed_job_reraises_typed_error(self, small_budget):
        bad = ScheduleRequest(scenario_id=99, policy="standalone",
                              budget=small_budget, nsplits=1)
        with local_service(workers=1) as (url, _service):
            client = ServiceClient(url)
            handle = client.submit(bad)
            record = handle.wait(timeout=300)
            assert record.state == FAILED
            assert record.error is not None
            assert record.error.code == "workload_error"
            with pytest.raises(WorkloadError, match="unknown scenario"):
                handle.result()


class TestAdmissionControlOverHTTP:
    @pytest.fixture
    def overloaded(self, tiny_scenario, small_budget):
        """A 1-worker, max_pending=1 service with the worker gated and
        the one queue slot filled: the next submit must get a 429."""
        registry, started, release, _order = gated_registry()
        request = ScheduleRequest.for_scenario(
            tiny_scenario, template="het_sides_3x3", policy="gated",
            budget=small_budget, nsplits=1)
        with local_service(Session(registry), workers=1,
                           max_pending=1) as (url, svc):
            client = ServiceClient(url, overload_retries=0)
            client.submit(request)  # occupies the worker
            assert started.wait(timeout=60)
            client.submit(request.replace(prov_limit=63))  # fills queue
            yield url, client, request, release
            release.set()

    def test_queue_full_is_429_with_retry_after(self, overloaded):
        url, _client, request, _release = overloaded
        body = json.dumps(request.replace(prov_limit=62)
                          .to_dict()).encode()
        req = urllib.request.Request(
            url + "/v1/jobs", data=body, method="POST",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=30)
        assert excinfo.value.code == 429
        assert excinfo.value.headers["Retry-After"] == "1"
        document = json.loads(excinfo.value.read().decode())
        assert document["kind"] == "error"
        assert document["code"] == "service_overloaded"

    def test_client_reraises_typed_overload(self, overloaded):
        _url, client, request, _release = overloaded
        with pytest.raises(ServiceOverloadedError,
                           match="max_pending") as excinfo:
            client.submit(request.replace(prov_limit=62))
        assert excinfo.value.retry_after_s == 1.0

    def test_client_backoff_retries_until_admitted(self, overloaded):
        """The backing-off client rides out the overload: once the gate
        releases and the queue drains, a retried submit is accepted and
        completes."""
        url, _client, request, release = overloaded
        patient = ServiceClient(url, overload_retries=8,
                                backoff_s=0.05, backoff_cap_s=0.05)
        releaser = threading.Timer(0.15, release.set)
        releaser.start()
        try:
            handle = patient.submit(request.replace(prov_limit=62))
            assert handle.result(timeout=300).metrics.latency_s > 0
        finally:
            releaser.cancel()

    def test_batch_rejection_queues_nothing(self, overloaded):
        _url, client, request, _release = overloaded
        before = client.health()["total"]
        with pytest.raises(ServiceOverloadedError):
            client.submit_many([request.replace(prov_limit=62 - i)
                                for i in range(2)])
        assert client.health()["total"] == before


class TestSharedStoreOverHTTP:
    def test_cache_hit_parity_across_replicas(self, tmp_path,
                                              tiny_scenario,
                                              small_budget):
        """The tentpole's cross-replica contract over the wire: a
        result served from the shared store is same_payload-identical
        to a fresh search, and the replica reports the hit."""
        from repro.sweep import ResultStore

        request = request_for(tiny_scenario, small_budget, "scar")
        reference = Session().submit(request)
        path = tmp_path / "cache.jsonl"
        with local_service(Session(),
                           store=ResultStore(path)) as (url, _svc):
            computed = ServiceClient(url).submit(request) \
                .result(timeout=600)
        assert_equivalent(computed, reference)
        with local_service(Session(),
                           store=ResultStore(path)) as (url, service):
            served = ServiceClient(url).submit(request) \
                .result(timeout=60)
            stats = service.perf_summary()["store"]
        assert stats["hits"] == 1 and stats["hit_rate"] > 0
        assert_equivalent(served, reference)


class TestWireErrors:
    def test_unknown_job_id_raises_service_error(self):
        with local_service(workers=1) as (url, _service):
            client = ServiceClient(url)
            with pytest.raises(ServiceError, match="unknown job id"):
                client.job("job-999999")

    def test_malformed_request_document_rejected(self):
        with local_service(workers=1) as (url, _service):
            client = ServiceClient(url)
            with pytest.raises(ConfigError):
                client._call("POST", "/v1/jobs",
                             payload={"kind": "nonsense"})

    def test_bad_batch_entry_names_the_field(self, tiny_scenario,
                                             small_budget):
        good = request_for(tiny_scenario, small_budget, "standalone")
        with local_service(workers=1) as (url, _service):
            body = json.dumps([good.to_dict(), {"kind": "x"}]) \
                .encode("utf-8")
            req = urllib.request.Request(
                url + "/v1/jobs", data=body, method="POST",
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(req, timeout=30)
            assert excinfo.value.code == 400
            doc = ErrorDocument.from_json(
                excinfo.value.read().decode("utf-8"))
            assert doc.field == "requests[1]"
            assert doc.code == "config_error"

    def test_unknown_endpoint_is_structured_404(self):
        with local_service(workers=1) as (url, _service):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url + "/v2/nope", timeout=30)
            assert excinfo.value.code == 404
            doc = ErrorDocument.from_json(
                excinfo.value.read().decode("utf-8"))
            # distinct from "not_found" so clients never confuse a
            # typo'd URL with an evicted job
            assert doc.code == "unknown_endpoint"
            assert not isinstance(doc.exception(), JobNotFoundError)

    def test_health_endpoint(self):
        with local_service(workers=1) as (url, _service):
            health = ServiceClient(url).health()
            assert health["status"] == "ok"
            assert health["total"] == 0

    def test_unreachable_server_raises_service_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout_s=0.5)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()

    def test_malformed_content_length_gets_structured_400(self):
        import http.client

        with local_service(workers=1) as (url, _service):
            host, port = url.removeprefix("http://").split(":")
            conn = http.client.HTTPConnection(host, int(port),
                                              timeout=30)
            try:
                conn.putrequest("POST", "/v1/jobs")
                conn.putheader("Content-Length", "abc")
                conn.endheaders()
                response = conn.getresponse()
                # empty body -> JSON parse failure -> structured 400
                # (the server also closes the unreadable connection)
                assert response.status == 400
                doc = ErrorDocument.from_json(
                    response.read().decode("utf-8"))
                assert doc.code == "config_error"
            finally:
                conn.close()

    def test_oversized_body_refused_with_413(self):
        import http.client

        with local_service(workers=1) as (url, _service):
            host, port = url.removeprefix("http://").split(":")
            conn = http.client.HTTPConnection(host, int(port),
                                              timeout=30)
            try:
                conn.putrequest("POST", "/v1/jobs")
                conn.putheader("Content-Length", str(1 << 40))
                conn.endheaders()
                response = conn.getresponse()  # refused before any read
                assert response.status == 413
                doc = ErrorDocument.from_json(
                    response.read().decode("utf-8"))
                assert doc.code == "bad_request"
                assert "too large" in doc.message
            finally:
                conn.close()

    def test_remote_result_fetch_is_single_round_trip(self,
                                                      tiny_scenario,
                                                      small_budget):
        """RemoteJob.result polls the result endpoint itself, so the
        response that reports completion IS the result -- no gap for a
        retain cap to evict it in (mirrors JobHandle's completion
        slot)."""
        request = request_for(tiny_scenario, small_budget, "standalone")
        with local_service(workers=1) as (url, _service):
            client = ServiceClient(url)
            result = client.submit(request).result(timeout=300)
            assert result.metrics.latency_s > 0
