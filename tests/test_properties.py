"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packing import greedy_pack, uniform_pack
from repro.core.segmentation import (
    enumerate_cut_candidates,
    segments_from_cuts,
)
from repro.core.budget import SearchBudget
from repro.dataflow.cost import compute_layer_cost, map_spatial
from repro.dataflow.dataflow import NVDLA, SHIDIANNAO
from repro.experiments.reporting import pareto_front
from repro.mcm.topology import mesh, triangular
from repro.workloads.layer import Layer, LayerOp, conv, gemm
from repro.workloads.model import Model, ModelInstance, Scenario

dims = st.integers(min_value=1, max_value=64)
small_dims = st.integers(min_value=1, max_value=16)


@st.composite
def conv_layers(draw):
    return Layer(
        name="l", op=LayerOp.CONV,
        n=draw(st.integers(1, 4)), k=draw(dims), c=draw(dims),
        y=draw(dims), x=draw(dims),
        r=draw(st.integers(1, 7)), s=draw(st.integers(1, 7)),
        stride=draw(st.integers(1, 2)),
    )


@st.composite
def gemm_layers(draw):
    return gemm("g", m=draw(dims), n_out=draw(dims), k_in=draw(dims),
                batch=draw(st.integers(1, 4)))


any_layers = st.one_of(conv_layers(), gemm_layers())


class TestLayerProperties:
    @given(any_layers)
    def test_macs_positive_and_batch_linear(self, layer):
        assert layer.macs > 0
        assert layer.with_batch(3).macs == 3 * layer.with_batch(1).macs

    @given(any_layers)
    def test_footprint_components_nonnegative(self, layer):
        assert layer.weight_bytes >= 0
        assert layer.input_bytes > 0
        assert layer.output_bytes > 0

    @given(conv_layers())
    def test_input_bytes_cover_kernel_window(self, layer):
        """Input must be at least as large as the output-sample demand."""
        assert layer.input_bytes >= layer.n * layer.c


class TestCostModelProperties:
    @settings(max_examples=40, deadline=None)
    @given(any_layers, st.sampled_from([NVDLA, SHIDIANNAO]),
           st.sampled_from([64, 256, 1024]))
    def test_cost_invariants(self, layer, dataflow, pes):
        cost = compute_layer_cost(layer, dataflow, num_pes=pes,
                                  sram_bytes=1 << 20, noc_gbps=64.0,
                                  mem_gbps=64.0, clock_hz=500e6)
        # Cycles can never beat the PE roofline.
        assert cost.cycles >= layer.macs / pes - 1e-6
        assert cost.energy_pj > 0
        assert cost.stall_factor >= 1.0
        assert cost.sram_bytes >= 0
        assert cost.dram_refetch_bytes >= 0

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 512), st.integers(1, 512),
           st.sampled_from([16, 64, 256]))
    def test_mapping_invariants(self, d1, d2, pes):
        mapping = map_spatial("K", d1, "C", d2, pes)
        assert 1 <= mapping.p1 <= min(d1, pes)
        assert 1 <= mapping.p2 <= min(d2, pes)
        assert mapping.p1 * mapping.p2 <= pes
        # Steps must cover both extents.
        assert mapping.steps * mapping.p1 * mapping.p2 >= d1 * d2
        assert 0 < mapping.utilization <= 1.0


class TestTopologyProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 6), st.integers(1, 6),
           st.sampled_from(["mesh", "triangular"]))
    def test_routes_symmetric_hops_and_valid(self, rows, cols, kind):
        topo = mesh(rows, cols) if kind == "mesh" \
            else triangular(rows, cols)
        nodes = list(range(topo.num_nodes))
        for src in nodes[: min(4, len(nodes))]:
            for dst in nodes[-min(4, len(nodes)):]:
                route = topo.route(src, dst)
                if src == dst:
                    assert route == ()
                    continue
                assert route[0][0] == src and route[-1][1] == dst
                for a, b in route:
                    assert b in topo.neighbors(a)
                # Hop count bounded by Manhattan distance.
                (r1, c1) = topo.position(src)
                (r2, c2) = topo.position(dst)
                assert len(route) <= abs(r1 - r2) + abs(c1 - c2)


class TestPackingProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.lists(st.floats(0.01, 10.0), min_size=1,
                             max_size=12), min_size=1, max_size=4),
           st.integers(0, 5))
    def test_greedy_pack_partitions(self, costs, nsplits):
        models = tuple(
            ModelInstance(Model(name=f"m{i}", layers=tuple(
                conv(f"l{j}", c=2, k=2, y=2, x=2)
                for j in range(len(row)))), 1)
            for i, row in enumerate(costs))
        scenario = Scenario(name="s", instances=models)
        plan = greedy_pack(scenario, costs, nsplits)
        plan.validate(scenario)  # raises on any Theorem-2 violation
        assert plan.num_windows <= nsplits + 1
        # Windows are indexed sequentially.
        assert [w.index for w in plan.windows] \
            == list(range(plan.num_windows))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 20), st.integers(0, 6))
    def test_uniform_pack_partitions(self, num_layers, nsplits):
        model = Model(name="m", layers=tuple(
            conv(f"l{j}", c=2, k=2, y=2, x=2)
            for j in range(num_layers)))
        scenario = Scenario(name="s", instances=(ModelInstance(model, 1),))
        plan = uniform_pack(scenario, nsplits)
        plan.validate(scenario)


class TestSegmentationProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 50), st.integers(2, 40), st.integers(1, 6),
           st.integers(0, 10))
    def test_candidates_partition_range(self, start, length, max_segments,
                                        seed):
        stop = start + length
        budget = SearchBudget(max_segment_candidates=32, seed=seed)
        weights = [1.0] * length
        for cuts in enumerate_cut_candidates(start, stop, max_segments,
                                             weights, budget):
            ranges = segments_from_cuts(start, stop, cuts)
            # Exact contiguous partition (Theorem 1).
            assert ranges[0][0] == start and ranges[-1][1] == stop
            for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
                assert e1 == s2
            assert all(e > s for s, e in ranges)
            assert len(ranges) <= max_segments


class TestParetoProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.floats(0.1, 100), st.floats(0.1, 100)),
                    min_size=1, max_size=60))
    def test_front_subset_and_nondominated(self, points):
        front = pareto_front(points)
        assert set(front) <= set(points)
        for a in front:
            for b in points:
                dominates = (b[0] <= a[0] and b[1] <= a[1]
                             and (b[0] < a[0] or b[1] < a[1]))
                assert not dominates
