"""Tests for the experiment runner and the CLI."""

import argparse
import json

import pytest

from repro.cli import _positive_int, build_parser, main
from repro.errors import ConfigError
from repro.experiments.runner import (
    CORE_STRATEGIES,
    STRATEGIES,
    ExperimentConfig,
    ExperimentRunner,
)


@pytest.fixture
def runner():
    with pytest.warns(DeprecationWarning):
        return ExperimentRunner(ExperimentConfig.fast())


class TestRunner:
    def test_unknown_strategy_rejected(self, runner, tiny_scenario):
        with pytest.raises(ConfigError):
            runner.run(tiny_scenario, "magic")

    def test_standalone_strategy(self, runner, tiny_scenario):
        run = runner.run(tiny_scenario, "stand_nvd")
        assert run.latency_s > 0
        assert run.scar_result is None

    def test_scar_strategy_carries_population(self, runner, tiny_scenario):
        run = runner.run(tiny_scenario, "het_sides")
        assert run.scar_result is not None
        assert run.scar_result.num_evaluated > 0

    def test_memoization(self, runner, tiny_scenario):
        a = runner.run(tiny_scenario, "het_sides")
        b = runner.run(tiny_scenario, "het_sides")
        assert a is b

    def test_value_lookup(self, runner, tiny_scenario):
        run = runner.run(tiny_scenario, "stand_nvd")
        assert run.value("edp") == pytest.approx(
            run.value("latency") * run.value("energy"))
        with pytest.raises(ConfigError):
            run.value("power")

    def test_run_many(self, runner, tiny_scenario):
        runs = runner.run_many(tiny_scenario, ("stand_nvd", "stand_shi"))
        assert set(runs) == {"stand_nvd", "stand_shi"}

    def test_core_strategies_registered(self):
        assert set(CORE_STRATEGIES) <= set(STRATEGIES)


class TestConfig:
    def test_fast_preset_is_cheaper(self):
        fast = ExperimentConfig.fast()
        full = ExperimentConfig.full()
        assert fast.budget.max_candidates_per_window \
            < full.budget.max_candidates_per_window
        assert fast.nsplits < full.nsplits

    def test_with_nsplits(self):
        assert ExperimentConfig.fast().with_nsplits(5).nsplits == 5


class TestCLI:
    def test_parser_knows_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table4", "--fast"])
        assert args.command == "table4" and args.fast

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out and "fig13" in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "fig2" in capsys.readouterr().out

    def test_schedule_command(self, capsys, tmp_path):
        out_file = tmp_path / "sched.json"
        code = main(["schedule", "--scenario", "1", "--template",
                     "het_sides_3x3", "--fast", "--output",
                     str(out_file)])
        assert code == 0
        assert out_file.exists()
        out = capsys.readouterr().out
        assert "EDP" in out and "window" in out
        # --output writes the full wire document
        doc = json.loads(out_file.read_text())
        assert doc["kind"] == "schedule_result"
        assert doc["schedule"]["windows"]

    def test_schedule_json_format(self, capsys):
        """`schedule --format json` emits the repro.api wire document."""
        from repro.api import ScheduleResult

        code = main(["schedule", "--scenario", "1", "--fast",
                     "--format", "json"])
        assert code == 0
        out = capsys.readouterr().out
        result = ScheduleResult.from_json(out)
        assert result.request.scenario_id == 1
        assert result.request.policy == "scar"
        assert result.metrics.latency_s > 0
        assert result.num_evaluated > 0
        # the document round-trips unchanged
        assert ScheduleResult.from_dict(json.loads(out)) == result

    def test_schedule_policy_option(self, capsys):
        code = main(["schedule", "--scenario", "1", "--fast",
                     "--policy", "standalone", "--format", "json"])
        assert code == 0
        from repro.api import ScheduleResult

        result = ScheduleResult.from_json(capsys.readouterr().out)
        assert result.request.policy == "standalone"
        assert result.window_candidates == ()

    def test_schedule_json_failure_emits_error_document(self, capsys):
        """No tracebacks on the wire: failures become error documents."""
        from repro.api import ErrorDocument

        code = main(["schedule", "--scenario", "99", "--fast",
                     "--format", "json"])
        assert code == 1
        doc = ErrorDocument.from_json(capsys.readouterr().out)
        assert doc.code == "workload_error"
        assert "unknown scenario id 99" in doc.message

    def test_schedule_json_output_write_failure_is_structured(
            self, capsys):
        from repro.api import ErrorDocument

        code = main(["schedule", "--scenario", "1", "--fast",
                     "--format", "json", "--output",
                     "/nonexistent-dir/out.json"])
        assert code == 1
        doc = ErrorDocument.from_json(capsys.readouterr().out)
        assert doc.code == "internal_error"

    def test_schedule_text_failure_is_concise(self, capsys):
        code = main(["schedule", "--scenario", "99", "--fast"])
        assert code == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8787
        assert args.workers == 2
        assert args.max_memo is None

    def test_serve_rejects_bad_workers(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--workers", "0"])
        assert "positive integer" in capsys.readouterr().err

    def test_serve_rejects_negative_max_memo(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--max-memo", "-1"])
        assert ">= 0" in capsys.readouterr().err

    def test_serve_bind_failure_is_concise(self, capsys):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        port = blocker.getsockname()[1]
        try:
            code = main(["serve", "--port", str(port)])
        finally:
            blocker.close()
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error: cannot bind")
        assert "Traceback" not in err


class TestPositiveInt:
    @pytest.mark.parametrize("value,parsed", [("1", 1), ("8", 8)])
    def test_accepts_positive(self, value, parsed):
        assert _positive_int(value) == parsed

    @pytest.mark.parametrize("value", ["0", "-1", "-32"])
    def test_rejects_zero_and_negative(self, value):
        with pytest.raises(argparse.ArgumentTypeError,
                           match="positive integer"):
            _positive_int(value)

    @pytest.mark.parametrize("value", ["", "abc", "1.5", "2x"])
    def test_rejects_non_integers(self, value):
        with pytest.raises(argparse.ArgumentTypeError,
                           match="positive integer"):
            _positive_int(value)

    def test_argparse_error_message_is_clear(self, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["schedule", "--jobs", "0"])
        err = capsys.readouterr().err
        assert "--jobs" in err and "positive integer" in err
