"""Tests for the experiment runner and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigError
from repro.experiments.runner import (
    CORE_STRATEGIES,
    STRATEGIES,
    ExperimentConfig,
    ExperimentRunner,
)


@pytest.fixture
def runner():
    return ExperimentRunner(ExperimentConfig.fast())


class TestRunner:
    def test_unknown_strategy_rejected(self, runner, tiny_scenario):
        with pytest.raises(ConfigError):
            runner.run(tiny_scenario, "magic")

    def test_standalone_strategy(self, runner, tiny_scenario):
        run = runner.run(tiny_scenario, "stand_nvd")
        assert run.latency_s > 0
        assert run.scar_result is None

    def test_scar_strategy_carries_population(self, runner, tiny_scenario):
        run = runner.run(tiny_scenario, "het_sides")
        assert run.scar_result is not None
        assert run.scar_result.num_evaluated > 0

    def test_memoization(self, runner, tiny_scenario):
        a = runner.run(tiny_scenario, "het_sides")
        b = runner.run(tiny_scenario, "het_sides")
        assert a is b

    def test_value_lookup(self, runner, tiny_scenario):
        run = runner.run(tiny_scenario, "stand_nvd")
        assert run.value("edp") == pytest.approx(
            run.value("latency") * run.value("energy"))
        with pytest.raises(ConfigError):
            run.value("power")

    def test_run_many(self, runner, tiny_scenario):
        runs = runner.run_many(tiny_scenario, ("stand_nvd", "stand_shi"))
        assert set(runs) == {"stand_nvd", "stand_shi"}

    def test_core_strategies_registered(self):
        assert set(CORE_STRATEGIES) <= set(STRATEGIES)


class TestConfig:
    def test_fast_preset_is_cheaper(self):
        fast = ExperimentConfig.fast()
        full = ExperimentConfig.full()
        assert fast.budget.max_candidates_per_window \
            < full.budget.max_candidates_per_window
        assert fast.nsplits < full.nsplits

    def test_with_nsplits(self):
        assert ExperimentConfig.fast().with_nsplits(5).nsplits == 5


class TestCLI:
    def test_parser_knows_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table4", "--fast"])
        assert args.command == "table4" and args.fast

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out and "fig13" in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "fig2" in capsys.readouterr().out

    def test_schedule_command(self, capsys, tmp_path):
        out_file = tmp_path / "sched.json"
        code = main(["schedule", "--scenario", "1", "--template",
                     "het_sides_3x3", "--fast", "--output",
                     str(out_file)])
        assert code == 0
        assert out_file.exists()
        out = capsys.readouterr().out
        assert "EDP" in out and "window" in out
