"""Tests for the experiment runner and the CLI."""

import argparse
import json

import pytest

from repro.cli import _positive_int, build_parser, main
from repro.errors import ConfigError
from repro.experiments.runner import (
    CORE_STRATEGIES,
    STRATEGIES,
    ExperimentConfig,
    ExperimentRunner,
)


@pytest.fixture
def runner():
    with pytest.warns(DeprecationWarning):
        return ExperimentRunner(ExperimentConfig.fast())


class TestRunner:
    def test_unknown_strategy_rejected(self, runner, tiny_scenario):
        with pytest.raises(ConfigError):
            runner.run(tiny_scenario, "magic")

    def test_standalone_strategy(self, runner, tiny_scenario):
        run = runner.run(tiny_scenario, "stand_nvd")
        assert run.latency_s > 0
        assert run.scar_result is None

    def test_scar_strategy_carries_population(self, runner, tiny_scenario):
        run = runner.run(tiny_scenario, "het_sides")
        assert run.scar_result is not None
        assert run.scar_result.num_evaluated > 0

    def test_memoization(self, runner, tiny_scenario):
        a = runner.run(tiny_scenario, "het_sides")
        b = runner.run(tiny_scenario, "het_sides")
        assert a is b

    def test_value_lookup(self, runner, tiny_scenario):
        run = runner.run(tiny_scenario, "stand_nvd")
        assert run.value("edp") == pytest.approx(
            run.value("latency") * run.value("energy"))
        with pytest.raises(ConfigError):
            run.value("power")

    def test_run_many(self, runner, tiny_scenario):
        runs = runner.run_many(tiny_scenario, ("stand_nvd", "stand_shi"))
        assert set(runs) == {"stand_nvd", "stand_shi"}

    def test_core_strategies_registered(self):
        assert set(CORE_STRATEGIES) <= set(STRATEGIES)


class TestConfig:
    def test_fast_preset_is_cheaper(self):
        fast = ExperimentConfig.fast()
        full = ExperimentConfig.full()
        assert fast.budget.max_candidates_per_window \
            < full.budget.max_candidates_per_window
        assert fast.nsplits < full.nsplits

    def test_with_nsplits(self):
        assert ExperimentConfig.fast().with_nsplits(5).nsplits == 5


class TestCLI:
    def test_parser_knows_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table4", "--fast"])
        assert args.command == "table4" and args.fast

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out and "fig13" in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "fig2" in capsys.readouterr().out

    def test_schedule_command(self, capsys, tmp_path):
        out_file = tmp_path / "sched.json"
        code = main(["schedule", "--scenario", "1", "--template",
                     "het_sides_3x3", "--fast", "--output",
                     str(out_file)])
        assert code == 0
        assert out_file.exists()
        out = capsys.readouterr().out
        assert "EDP" in out and "window" in out
        # --output writes the full wire document
        doc = json.loads(out_file.read_text())
        assert doc["kind"] == "schedule_result"
        assert doc["schedule"]["windows"]

    def test_schedule_json_format(self, capsys):
        """`schedule --format json` emits the repro.api wire document."""
        from repro.api import ScheduleResult

        code = main(["schedule", "--scenario", "1", "--fast",
                     "--format", "json"])
        assert code == 0
        out = capsys.readouterr().out
        result = ScheduleResult.from_json(out)
        assert result.request.scenario_id == 1
        assert result.request.policy == "scar"
        assert result.metrics.latency_s > 0
        assert result.num_evaluated > 0
        # the document round-trips unchanged
        assert ScheduleResult.from_dict(json.loads(out)) == result

    def test_schedule_policy_option(self, capsys):
        code = main(["schedule", "--scenario", "1", "--fast",
                     "--policy", "standalone", "--format", "json"])
        assert code == 0
        from repro.api import ScheduleResult

        result = ScheduleResult.from_json(capsys.readouterr().out)
        assert result.request.policy == "standalone"
        assert result.window_candidates == ()

    def test_schedule_json_failure_emits_error_document(self, capsys):
        """No tracebacks on the wire: failures become error documents."""
        from repro.api import ErrorDocument

        code = main(["schedule", "--scenario", "99", "--fast",
                     "--format", "json"])
        assert code == 1
        doc = ErrorDocument.from_json(capsys.readouterr().out)
        assert doc.code == "workload_error"
        assert "unknown scenario id 99" in doc.message

    def test_schedule_json_output_write_failure_is_structured(
            self, capsys):
        from repro.api import ErrorDocument

        code = main(["schedule", "--scenario", "1", "--fast",
                     "--format", "json", "--output",
                     "/nonexistent-dir/out.json"])
        assert code == 1
        doc = ErrorDocument.from_json(capsys.readouterr().out)
        assert doc.code == "internal_error"

    def test_schedule_text_failure_is_concise(self, capsys):
        code = main(["schedule", "--scenario", "99", "--fast"])
        assert code == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8787
        assert args.workers == 2
        assert args.max_memo is None
        assert args.job_backend == "process"
        assert args.max_pending is None
        assert args.store is None

    def test_serve_scaling_flags(self):
        args = build_parser().parse_args(
            ["serve", "--job-backend", "thread", "--max-pending", "64",
             "--store", "cache.jsonl"])
        assert args.job_backend == "thread"
        assert args.max_pending == 64
        assert args.store == "cache.jsonl"

    def test_serve_rejects_bad_workers(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--workers", "0"])
        assert "positive integer" in capsys.readouterr().err

    def test_serve_rejects_bad_max_pending(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--max-pending", "0"])
        assert "positive integer" in capsys.readouterr().err

    def test_serve_rejects_negative_max_memo(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--max-memo", "-1"])
        assert ">= 0" in capsys.readouterr().err

    def test_serve_bind_failure_is_concise(self, capsys):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        port = blocker.getsockname()[1]
        try:
            code = main(["serve", "--port", str(port)])
        finally:
            blocker.close()
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error: cannot bind")
        assert "Traceback" not in err


class TestGenerateCLI:
    def test_writes_loadable_scenario_files(self, capsys, tmp_path):
        from repro.config import load_json, scenario_from_dict

        out_dir = tmp_path / "scenarios"
        code = main(["generate", "--kind", "replicated", "--model",
                     "eyecod", "--batches", "30,60", "--use-case", "arvr",
                     "--output-dir", str(out_dir)])
        assert code == 0
        files = sorted(out_dir.glob("*.json"))
        assert len(files) == 1
        scenario = scenario_from_dict(load_json(files[0]))
        assert scenario.model_names == ("eyecod", "eyecod#2")
        assert "eyecod#2" in capsys.readouterr().out

    def test_stdout_document_is_deterministic(self, capsys):
        assert main(["generate", "--seed", "5", "--tenants", "2"]) == 0
        first = capsys.readouterr().out
        assert main(["generate", "--seed", "5", "--tenants", "2"]) == 0
        assert capsys.readouterr().out == first
        from repro.config import scenario_from_dict

        scenario_from_dict(json.loads(first))  # loads as a scenario doc

    def test_replicated_without_model_is_an_error(self, capsys):
        code = main(["generate", "--kind", "replicated", "--format",
                     "json"])
        assert code == 1
        from repro.api import ErrorDocument

        doc = ErrorDocument.from_json(capsys.readouterr().out)
        assert doc.code == "config_error"


class TestScheduleScenarioFile:
    def _write_scenario(self, tmp_path):
        from repro.config import save_json, scenario_to_dict
        from repro.workloads import replicated

        path = tmp_path / "scenario.json"
        save_json(scenario_to_dict(
            replicated("eyecod", (30, 60), use_case="arvr")), path)
        return path

    def test_schedules_generated_file(self, capsys, tmp_path):
        from repro.api import ScheduleResult

        path = self._write_scenario(tmp_path)
        code = main(["schedule", "--scenario-file", str(path), "--fast",
                     "--format", "json"])
        assert code == 0
        result = ScheduleResult.from_json(capsys.readouterr().out)
        assert result.request.scenario_id is None
        names = [entry.get("name", entry["model"]) for entry in
                 result.request.scenario_spec["models"]]
        assert names == ["eyecod", "eyecod#2"]
        assert result.metrics.latency_s > 0

    def test_scenario_and_file_are_exclusive(self, capsys, tmp_path):
        path = self._write_scenario(tmp_path)
        code = main(["schedule", "--scenario", "1", "--scenario-file",
                     str(path), "--fast"])
        assert code == 1
        assert "exactly one" in capsys.readouterr().err

    def test_malformed_file_emits_error_document(self, capsys, tmp_path):
        from repro.api import ErrorDocument

        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x", "models": [{"model": "mynet"}]}')
        code = main(["schedule", "--scenario-file", str(bad), "--fast",
                     "--format", "json"])
        assert code == 1
        doc = ErrorDocument.from_json(capsys.readouterr().out)
        assert doc.code == "config_error"
        assert "mynet" in doc.message

    def test_scenario_defaults_to_none_in_parser(self):
        args = build_parser().parse_args(["schedule"])
        assert args.scenario is None and args.scenario_file is None


class TestSweepCLI:
    def _generate(self, tmp_path):
        out_dir = tmp_path / "scenarios"
        assert main(["generate", "--kind", "replicated", "--model",
                     "eyecod", "--batches", "30,60", "--use-case",
                     "arvr", "--output-dir", str(out_dir)]) == 0
        (path,) = out_dir.glob("*.json")
        return path

    def test_sweep_and_resume_skips_all_cells(self, capsys, tmp_path):
        scenario = self._generate(tmp_path)
        store = tmp_path / "campaign.jsonl"
        argv = ["sweep", "--scenario-file", str(scenario), "--policies",
                "scar,standalone", "--nsplits", "1", "--fast", "--store",
                str(store), "--workers", "2", "--format", "json"]
        capsys.readouterr()  # drop the generate output
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cells"] == 2 and first["computed"] == 2
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["computed"] == 0 and second["skipped"] == 2
        # Resume verification: the engine's segment-eval counter is flat.
        assert second["num_segments"] == 0
        assert [row["edp"] for row in second["rows"]] \
            == [row["edp"] for row in first["rows"]]

    def test_sweep_without_scenarios_is_an_error(self, capsys):
        code = main(["sweep", "--fast", "--format", "json"])
        assert code == 1
        from repro.api import ErrorDocument

        doc = ErrorDocument.from_json(capsys.readouterr().out)
        assert doc.code == "config_error"

    def test_sweep_spec_file_replaces_grid_flags(self, capsys, tmp_path):
        from repro.api import scenario_spec
        from repro.core.budget import QUICK_BUDGET
        from repro.sweep import SweepSpec
        from repro.workloads import replicated

        spec = SweepSpec(
            scenarios=(scenario_spec(
                replicated("eyecod", (30,), use_case="arvr")),),
            nsplits=(1,), budget=QUICK_BUDGET)
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json())
        assert main(["sweep", "--spec", str(spec_path), "--format",
                     "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["cells"] == 1 and doc["computed"] == 1
        code = main(["sweep", "--spec", str(spec_path), "--scenarios",
                     "1", "--format", "json"])
        assert code == 1  # grid flags alongside --spec are rejected
        for flag in (["--policies", "scar"], ["--fast"], ["--jobs", "2"]):
            capsys.readouterr()
            assert main(["sweep", "--spec", str(spec_path), "--format",
                         "json", *flag]) == 1

    def test_scenario_files_normalize_to_workload_identity(self, capsys,
                                                           tmp_path):
        """Two cosmetically different files for the same workload share
        one store cell: the cache key is the normalized spec, not the
        file text."""
        sparse = tmp_path / "sparse.json"
        sparse.write_text('{"name": "w", "models": [{"model": "eyecod"}]}')
        explicit = tmp_path / "explicit.json"
        explicit.write_text(json.dumps({
            "name": "w", "use_case": "datacenter",
            "models": [{"model": "eyecod", "batch": 1}]}))
        store = tmp_path / "c.jsonl"
        base = ["--nsplits", "1", "--fast", "--store", str(store),
                "--format", "json"]
        assert main(["sweep", "--scenario-file", str(sparse), *base]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["computed"] == 1
        assert main(["sweep", "--scenario-file", str(explicit),
                     *base]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["computed"] == 0 and second["skipped"] == 1


class TestPositiveInt:
    @pytest.mark.parametrize("value,parsed", [("1", 1), ("8", 8)])
    def test_accepts_positive(self, value, parsed):
        assert _positive_int(value) == parsed

    @pytest.mark.parametrize("value", ["0", "-1", "-32"])
    def test_rejects_zero_and_negative(self, value):
        with pytest.raises(argparse.ArgumentTypeError,
                           match="positive integer"):
            _positive_int(value)

    @pytest.mark.parametrize("value", ["", "abc", "1.5", "2x"])
    def test_rejects_non_integers(self, value):
        with pytest.raises(argparse.ArgumentTypeError,
                           match="positive integer"):
            _positive_int(value)

    def test_argparse_error_message_is_clear(self, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["schedule", "--jobs", "0"])
        err = capsys.readouterr().err
        assert "--jobs" in err and "positive integer" in err


class TestSimulateCommand:
    @pytest.fixture
    def trace_file(self, tmp_path):
        from repro.sim import TenantEvent, Trace

        events = sorted([
            TenantEvent(tick=0, kind="arrive", tenant="eyecod#a",
                        model="eyecod", batch=1, deadline_s=0.5),
            TenantEvent(tick=1, kind="arrive", tenant="hand_sp#b",
                        model="hand_sp", batch=1),
            TenantEvent(tick=2, kind="depart", tenant="hand_sp#b"),
            TenantEvent(tick=3, kind="depart", tenant="eyecod#a"),
        ], key=TenantEvent.sort_key)
        trace = Trace(name="sim:cli:test", events=tuple(events),
                      use_case="arvr")
        path = tmp_path / "trace.json"
        path.write_text(trace.to_json())
        return path

    def test_parser_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.family == "arrivals" and args.mode == "warm"
        assert args.trace is None and args.spec is None
        assert args.service is None

    def test_replays_a_trace_file(self, capsys, trace_file):
        assert main(["simulate", "--trace", str(trace_file),
                     "--fast"]) == 0
        out = capsys.readouterr().out
        assert "trace sim:cli:test (warm replay)" in out
        assert "3/4 events scheduled, 1 memo hits" in out
        assert "eyecod#a" in out and "slack" in out

    def test_json_format_is_the_wire_document(self, capsys, trace_file,
                                              tmp_path):
        from repro.sim import SimReport

        output = tmp_path / "report.json"
        assert main(["simulate", "--trace", str(trace_file), "--fast",
                     "--mode", "cold", "--format", "json",
                     "--output", str(output)]) == 0
        report = SimReport.from_json(capsys.readouterr().out)
        assert report.mode == "cold"
        assert report.num_events == 4
        assert SimReport.from_json(output.read_text()) == report

    def test_spec_file_generates_the_trace(self, capsys, tmp_path):
        from repro.sim import TraceSpec

        spec = TraceSpec(family="arrivals", seed=1, tenants=2,
                         horizon=6, use_case="arvr")
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert main(["simulate", "--spec", str(path), "--fast"]) == 0
        assert spec.trace_name() in capsys.readouterr().out

    def test_trace_and_spec_are_exclusive(self, capsys, trace_file):
        assert main(["simulate", "--trace", str(trace_file),
                     "--spec", str(trace_file)]) == 1
        assert "at most one" in capsys.readouterr().err

    def test_malformed_trace_is_structured_in_json(self, capsys,
                                                   tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"kind\": \"schedule\"}")
        assert main(["simulate", "--trace", str(path),
                     "--format", "json"]) == 1
        err = json.loads(capsys.readouterr().out)
        assert err["kind"] == "error"


class TestSweepStatusCommand:
    ARGS = ["sweep", "--scenarios", "1", "--nsplits", "1", "--fast"]

    def test_all_pending_without_store(self, capsys):
        assert main(self.ARGS + ["--status"]) == 0
        out = capsys.readouterr().out
        assert "0/1 cells finished" in out and "pending:" in out

    def test_json_document(self, capsys, tmp_path):
        assert main(self.ARGS + ["--status", "--format", "json",
                                 "--store",
                                 str(tmp_path / "s.jsonl")]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "sweep_status"
        assert doc["finished"] == 0 and doc["pending"] == 1
        assert not doc["complete"]

    def test_status_runs_nothing(self, capsys, tmp_path):
        store = tmp_path / "s.jsonl"
        assert main(self.ARGS + ["--status", "--store",
                                 str(store)]) == 0
        capsys.readouterr()
        assert not store.exists() or store.read_text() == ""

    def test_status_after_run_reports_complete(self, capsys, tmp_path):
        store = tmp_path / "s.jsonl"
        assert main(self.ARGS + ["--store", str(store)]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--status", "--store",
                                 str(store)]) == 0
        out = capsys.readouterr().out
        assert "1/1 cells finished" in out
        assert "campaign complete" in out


class TestEvalModeFlags:
    """--eval-mode / --eval-modes plumb the costing kernel through."""

    def test_parser_defaults_to_unset(self):
        args = build_parser().parse_args(["schedule"])
        assert args.eval_mode is None
        args = build_parser().parse_args(["simulate"])
        assert args.eval_mode is None
        args = build_parser().parse_args(["serve"])
        assert args.eval_mode is None
        args = build_parser().parse_args(["sweep"])
        assert args.eval_modes is None

    def test_unknown_mode_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "--eval-mode",
                                       "turbo"])
        assert "invalid choice" in capsys.readouterr().err

    def test_schedule_vector_matches_scalar(self, capsys):
        pytest.importorskip("numpy")
        from repro.api import ScheduleResult

        def run(mode):
            assert main(["schedule", "--scenario", "1", "--fast",
                         "--eval-mode", mode, "--format", "json"]) == 0
            return ScheduleResult.from_json(capsys.readouterr().out)

        vector, scalar = run("vector"), run("scalar")
        assert vector.request.eval_mode == "vector"
        assert scalar.request.eval_mode == "scalar"
        # Same bits everywhere but the echoed request/perf.
        assert vector.schedule == scalar.schedule
        assert vector.metrics == scalar.metrics
        assert vector.num_evaluated == scalar.num_evaluated

    def test_sweep_crosses_eval_modes(self, capsys):
        pytest.importorskip("numpy")
        assert main(["sweep", "--scenarios", "1", "--fast",
                     "--eval-modes", "scalar,vector",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "sweep_report"
        assert doc["cells"] == 2 and doc["computed"] == 2
        modes = {row["eval_mode"] for row in doc["rows"]}
        assert modes == {"scalar", "vector"}

    def test_spec_rejects_eval_modes_flag(self, capsys, tmp_path):
        from repro.sweep import SweepSpec

        path = tmp_path / "spec.json"
        path.write_text(SweepSpec(scenarios=(1,)).to_json())
        assert main(["sweep", "--spec", str(path),
                     "--eval-modes", "vector"]) == 1
        assert "--eval-modes" in capsys.readouterr().err
