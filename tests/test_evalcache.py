"""Unit tests for the segment-cost cache and perf instrumentation."""

from __future__ import annotations

import pytest

from repro.core.evalcache import EvalCache, segment_place_key, window_key
from repro.core.metrics import ScheduleEvaluator
from repro.core.schedule import Segment, WindowSchedule
from repro.perf import (
    CacheStats,
    PerfReport,
    TimingSummary,
    aggregate_reports,
    merge_stats,
)


class TestEvalCache:
    def test_miss_then_hit(self):
        cache = EvalCache()
        calls = []
        assert cache.lookup("t", "k", lambda: calls.append(1) or 42) == 42
        assert cache.lookup("t", "k", lambda: calls.append(1) or 42) == 42
        assert len(calls) == 1
        assert cache.stats["t"].hits == 1
        assert cache.stats["t"].misses == 1
        assert cache.stats["t"].hit_rate == 0.5
        assert cache.size("t") == 1

    def test_disabled_recomputes_every_time(self):
        cache = EvalCache(enabled=False)
        calls = []
        for _ in range(3):
            cache.lookup("t", "k", lambda: calls.append(1) or 42)
        assert len(calls) == 3
        assert cache.stats["t"].hits == 0
        assert cache.stats["t"].misses == 3
        assert cache.size("t") == 0

    def test_record_external_memo(self):
        cache = EvalCache()
        cache.record("fitness", hit=True)
        cache.record("fitness", hit=False)
        assert cache.stats["fitness"].lookups == 2

    def test_snapshot_is_a_copy(self):
        cache = EvalCache()
        cache.lookup("t", "k", lambda: 1)
        snap = cache.snapshot()
        cache.lookup("t", "k", lambda: 1)
        assert snap["t"].lookups == 1
        assert cache.stats["t"].lookups == 2


class TestStats:
    def test_merge_stats_sums_tables(self):
        merged = merge_stats({"a": CacheStats(1, 2)},
                             {"a": CacheStats(3, 4),
                              "b": CacheStats(5, 6)})
        assert merged["a"].hits == 4 and merged["a"].misses == 6
        assert merged["b"].hits == 5 and merged["b"].misses == 6

    def test_empty_hit_rate_is_zero(self):
        assert CacheStats().hit_rate == 0.0
        assert PerfReport().overall_hit_rate == 0.0
        assert PerfReport().evals_per_s == 0.0

    def test_report_render_and_dict(self):
        report = PerfReport(wall_s=2.0, num_evaluated=100, num_windows=2,
                            jobs=2, cache={"compute": CacheStats(75, 25)})
        assert report.evals_per_s == pytest.approx(50.0)
        assert "compute" in report.render()
        payload = report.to_dict()
        assert payload["cache"]["compute"]["hit_rate"] \
            == pytest.approx(0.75)
        assert payload["jobs"] == 2

    def test_merge_stats_sums_evictions(self):
        merged = merge_stats({"a": CacheStats(1, 2, evictions=3)},
                             {"a": CacheStats(0, 0, evictions=4)})
        assert merged["a"].evictions == 7

    def test_segment_counters_render_aggregate_and_serialize(self):
        report = PerfReport(num_segments=100, num_segments_recosted=60)
        assert report.segment_reuse_rate == pytest.approx(0.4)
        assert "re-costed" in report.render()
        assert report.to_dict()["num_segments_recosted"] == 60
        total = aggregate_reports([report, report])
        assert total.num_segments == 200
        assert total.num_segments_recosted == 120
        assert PerfReport().segment_reuse_rate == 0.0
        # Reports without segment counters render without the line.
        assert "re-costed" not in PerfReport().render()


class TestTimingSummaryMerge:
    def test_merge_combines_counts_totals_and_max(self):
        a = TimingSummary.from_samples([1.0, 2.0])
        b = TimingSummary.from_samples([4.0])
        merged = a.merge(b)
        assert merged.count == 3
        assert merged.total_s == pytest.approx(7.0)
        assert merged.max_s == pytest.approx(4.0)
        assert merged.mean_s == pytest.approx(7.0 / 3)

    def test_merge_is_commutative_and_keeps_operands(self):
        a = TimingSummary.from_samples([1.0, 3.0])
        b = TimingSummary.from_samples([2.0, 5.0])
        assert a.merge(b) == b.merge(a)
        assert a == TimingSummary.from_samples([1.0, 3.0])  # unchanged

    def test_merge_with_empty_is_identity(self):
        samples = TimingSummary.from_samples([0.5, 1.5])
        assert samples.merge(TimingSummary()) == samples
        assert TimingSummary().merge(samples) == samples
        assert TimingSummary().merge(TimingSummary()) == TimingSummary()

    def test_merge_equals_from_samples_of_concatenation(self):
        splits = ([0.1], [0.2, 0.9], [0.4, 0.3, 0.8])
        merged = TimingSummary()
        for split in splits:
            merged = merged.merge(TimingSummary.from_samples(split))
        flat = [s for split in splits for s in split]
        assert merged == TimingSummary.from_samples(flat)


class TestKeys:
    def test_same_class_nodes_share_compute_entries(self, tiny_scenario,
                                                    nvd_mcm):
        """On a homogeneous MCM, equidistant-from-IO nodes share entries."""
        evaluator = ScheduleEvaluator(tiny_scenario, nvd_mcm)
        # Nodes 0 and 6 are both corner nodes (io_hops == 0, same class).
        assert nvd_mcm.io_hops(0) == nvd_mcm.io_hops(6)
        first = evaluator._segment_compute(Segment(0, 0, 2, node=0), 1)
        again = evaluator._segment_compute(Segment(0, 0, 2, node=6), 1)
        assert first == again
        stats = evaluator.cache.stats["compute"]
        assert stats.hits == 1 and stats.misses == 1

    def test_place_key_separates_batches_and_ranges(self, tiny_scenario,
                                                    nvd_mcm):
        evaluator = ScheduleEvaluator(tiny_scenario, nvd_mcm)
        evaluator._segment_compute(Segment(0, 0, 2, node=0), 1)
        evaluator._segment_compute(Segment(0, 0, 2, node=0), 2)
        evaluator._segment_compute(Segment(0, 0, 3, node=0), 1)
        assert evaluator.cache.stats["compute"].misses == 3

    def test_segment_place_key_node_independent(self, nvd_mcm):
        chiplet = nvd_mcm.chiplet(0)
        a = segment_place_key(Segment(0, 0, 2, node=0), chiplet, 0)
        b = segment_place_key(Segment(0, 0, 2, node=6), chiplet, 0)
        assert a == b

    def test_window_key_distinguishes_placements(self):
        w1 = WindowSchedule(index=0,
                            chains=((Segment(0, 0, 2, node=0),),))
        w2 = WindowSchedule(index=0,
                            chains=((Segment(0, 0, 2, node=1),),))
        assert window_key(w1) != window_key(w2)
        assert window_key(w1) == window_key(
            WindowSchedule(index=0, chains=((Segment(0, 0, 2, node=0),),)))

    def test_evaluate_window_memoized(self, tiny_scenario, het_mcm):
        evaluator = ScheduleEvaluator(tiny_scenario, het_mcm)
        window = WindowSchedule(index=0, chains=(
            (Segment(0, 0, 4, node=0),),
            (Segment(1, 0, 3, node=2),),
        ))
        first = evaluator.evaluate_window(window)
        second = evaluator.evaluate_window(window)
        assert first == second
        assert evaluator.cache.stats["window"].hits == 1
