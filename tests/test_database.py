"""Unit tests for the offline layer-cost database (Eq. 1)."""

import pytest

from repro.dataflow.database import LayerCostDatabase
from repro.mcm.chiplet import arvr_chiplet, datacenter_chiplet
from repro.workloads.layer import conv, gemm


@pytest.fixture
def db():
    return LayerCostDatabase(clock_hz=500e6)


NVD = datacenter_chiplet("nvdla")
SHI = datacenter_chiplet("shidiannao")


class TestMemoization:
    def test_cache_grows_once_per_key(self, db):
        layer = conv("c", c=8, k=8, y=8, x=8)
        db.cost(layer, NVD)
        assert len(db) == 1
        db.cost(layer, NVD)
        assert len(db) == 1
        db.cost(layer, SHI)
        assert len(db) == 2

    def test_same_dims_different_name_share_entry(self, db):
        db.cost(conv("a", c=8, k=8, y=8, x=8), NVD)
        db.cost(conv("b", c=8, k=8, y=8, x=8), NVD)
        assert len(db) == 1

    def test_batch_is_part_of_key(self, db):
        layer = conv("a", c=8, k=8, y=8, x=8)
        db.cost(layer, NVD)
        db.cost(layer.with_batch(2), NVD)
        assert len(db) == 2

    def test_chiplet_class_not_identity(self, db):
        layer = conv("a", c=8, k=8, y=8, x=8)
        db.cost(layer, datacenter_chiplet("nvdla"))
        db.cost(layer, datacenter_chiplet("nvdla"))
        assert len(db) == 1
        db.cost(layer, arvr_chiplet("nvdla"))
        assert len(db) == 2


class TestQueries:
    def test_latency_and_energy_consistent_with_cost(self, db):
        layer = gemm("g", m=16, n_out=128, k_in=128)
        cost = db.cost(layer, NVD)
        assert db.latency_s(layer, NVD) == pytest.approx(
            cost.latency_s(db.clock_hz))
        assert db.energy_j(layer, NVD) == pytest.approx(cost.energy_j())

    def test_expected_latency_is_composition_mean(self, db):
        layer = gemm("g", m=16, n_out=512, k_in=512)
        lat_nvd = db.latency_s(layer, NVD)
        lat_shi = db.latency_s(layer, SHI)
        expected = db.expected_latency_s(layer, [NVD, NVD, SHI])
        assert expected == pytest.approx((2 * lat_nvd + lat_shi) / 3)

    def test_expected_energy_is_composition_mean(self, db):
        layer = conv("c", c=16, k=16, y=16, x=16)
        e_nvd = db.energy_j(layer, NVD)
        e_shi = db.energy_j(layer, SHI)
        assert db.expected_energy_j(layer, [NVD, SHI]) == pytest.approx(
            (e_nvd + e_shi) / 2)

    def test_expected_requires_chiplets(self, db):
        with pytest.raises(ValueError):
            db.expected_latency_s(conv("c", c=1, k=1, y=1, x=1), [])

    def test_affinity_picks_lower_edp_class(self, db):
        gemm_layer = gemm("g", m=128, n_out=5120, k_in=1280)
        stem = conv("s", c=3, k=64, y=112, x=112, r=7, stride=2)
        classes = {"nvdla": NVD, "shidiannao": SHI}
        assert db.affinity(gemm_layer, classes) == "nvdla"
        assert db.affinity(stem, classes) == "shidiannao"
