"""Unit tests for reporting helpers and units."""

import pytest

from repro.experiments.reporting import (
    ascii_scatter,
    format_table,
    normalize,
    pareto_front,
)
from repro.units import (
    cycles_to_seconds,
    gbps_to_bytes_per_cycle,
    pj_per_bit_to_pj_per_byte,
    seconds_to_cycles,
    transfer_seconds,
)


class TestUnits:
    def test_cycle_conversions_invert(self):
        assert seconds_to_cycles(cycles_to_seconds(1000, 5e8), 5e8) \
            == pytest.approx(1000)

    def test_gbps_to_bytes_per_cycle(self):
        # 64 GB/s at 500 MHz = 128 B/cycle.
        assert gbps_to_bytes_per_cycle(64.0, 500e6) == pytest.approx(128.0)

    def test_pj_per_bit(self):
        assert pj_per_bit_to_pj_per_byte(2.0) == 16.0

    def test_transfer_seconds(self):
        assert transfer_seconds(64e9, 64.0) == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            cycles_to_seconds(1, 0)
        with pytest.raises(ValueError):
            gbps_to_bytes_per_cycle(1, -5)
        with pytest.raises(ValueError):
            transfer_seconds(1, 0)


class TestFormatTable:
    def test_aligned_columns(self):
        text = format_table(("a", "bbbb"), [(1, 2.5), (333, 4)])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) or True for line in lines)

    def test_title(self):
        text = format_table(("x",), [(1,)], title="T")
        assert text.splitlines()[0] == "T"

    def test_float_formatting(self):
        text = format_table(("x",), [(0.123456,)])
        assert "0.1235" in text


class TestNormalize:
    def test_divides_by_baseline(self):
        normed = normalize({"a": 2.0, "b": 4.0}, "a")
        assert normed == {"a": 1.0, "b": 2.0}

    def test_missing_baseline(self):
        with pytest.raises(KeyError):
            normalize({"a": 1.0}, "z")

    def test_zero_baseline(self):
        with pytest.raises(ZeroDivisionError):
            normalize({"a": 0.0}, "a")


class TestParetoFront:
    def test_removes_dominated(self):
        points = [(1.0, 5.0), (2.0, 3.0), (3.0, 4.0), (4.0, 1.0)]
        front = pareto_front(points)
        assert front == [(1.0, 5.0), (2.0, 3.0), (4.0, 1.0)]

    def test_single_point(self):
        assert pareto_front([(1.0, 1.0)]) == [(1.0, 1.0)]

    def test_duplicates_collapse(self):
        assert pareto_front([(1.0, 1.0), (1.0, 1.0)]) == [(1.0, 1.0)]

    def test_front_is_monotone(self):
        import random
        rng = random.Random(0)
        points = [(rng.random(), rng.random()) for _ in range(200)]
        front = pareto_front(points)
        xs = [p[0] for p in front]
        ys = [p[1] for p in front]
        assert xs == sorted(xs)
        assert ys == sorted(ys, reverse=True)

    def test_no_front_point_dominated(self):
        points = [(1, 4), (2, 2), (3, 3), (2.5, 1.5), (0.5, 6)]
        front = pareto_front(points)
        for a in front:
            for b in points:
                assert not (b[0] <= a[0] and b[1] <= a[1]
                            and (b[0] < a[0] or b[1] < a[1]))


class TestScatter:
    def test_renders_markers_and_legend(self):
        text = ascii_scatter({"nvd": [(1.0, 2.0)], "shi": [(2.0, 1.0)]})
        assert "N" in text and "S" in text
        assert "legend" in text

    def test_empty(self):
        assert ascii_scatter({}) == "(no points)"
