"""Integration tests for the experiment drivers (fast budgets).

These verify the drivers produce well-formed artifacts and that the
paper's *qualitative* findings hold under the reduced search budget; the
benchmark harness (benchmarks/) regenerates the full tables.
"""

import pytest

from repro.core.budget import QUICK_BUDGET
from repro.experiments import (
    ExperimentConfig,
    run_arvr,
    run_breakdown,
    run_datacenter,
    run_fig2,
    run_nsplits_ablation,
    run_packing_ablation,
    run_pareto,
)


FAST = ExperimentConfig.fast()


@pytest.fixture(scope="module")
def fig2_result():
    return run_fig2(QUICK_BUDGET)


class TestFig2:
    def test_all_six_cases_present(self, fig2_result):
        assert len(fig2_result.edps) == 6
        assert all(v > 0 for v in fig2_result.edps.values())

    def test_scar_het_beats_nn_baton_single(self, fig2_result):
        """Paper A3: heterogeneity-aware beats single-chiplet NN-baton."""
        ratios = fig2_result.single_ratios
        assert ratios["A3_scar_het"] < 1.0

    def test_scar_multi_beats_nn_baton_sequential(self, fig2_result):
        """Paper B2/B3: SCAR multi-model beats sequential NN-baton."""
        ratios = fig2_result.multi_ratios
        assert min(ratios["B2_scar_spatial"],
                   ratios["B3_scar_temporal"]) < 1.0

    def test_render(self, fig2_result):
        text = fig2_result.render()
        assert "paper" in text and "A1_nnbaton_shi" in text


class TestDatacenterSmall:
    @pytest.fixture(scope="class")
    def result(self):
        return run_datacenter(FAST, scenario_ids=(1,),
                              searches=("edp",))

    def test_grid_normalized_to_baseline(self, result):
        grid = result.normalized_grid("edp", "edp")
        assert grid["stand_nvd"][1] == pytest.approx(1.0)

    def test_lm_scenario_prefers_nvdla(self, result):
        """Paper Sc1: NVDLA-based strategies dominate the Shi ones."""
        grid = result.normalized_grid("edp", "edp")
        assert grid["simba_nvd"][1] < grid["simba_shi"][1]
        assert grid["stand_nvd"][1] < grid["stand_shi"][1]

    def test_render_table(self, result):
        # Only the EDP search was run here; render the grid directly.
        text = result.render_fig7() if False else str(
            result.normalized_grid("edp", "edp"))
        assert "simba_nvd" in text


class TestArvrSmall:
    @pytest.fixture(scope="class")
    def result(self):
        return run_arvr(FAST, scenario_ids=(9, 10))

    def test_relative_table_complete(self, result):
        rel = result.relative("edp")
        for strategy in result.strategies:
            assert set(rel[strategy]) == {9, 10}

    def test_conv_scenarios_favor_shi(self, result):
        """Paper Table V: scenarios 9-10 favor Shi-style hardware."""
        rel = result.relative("edp")
        assert rel["stand_shi"][9] < 1.0

    def test_het_improves_on_average_homogeneous(self, result):
        rel = result.relative("edp")
        for scenario_id in (9, 10):
            avg_homog = (rel["simba_nvd"][scenario_id]
                         + rel["simba_shi"][scenario_id]) / 2
            assert rel["het_sides"][scenario_id] < avg_homog * 1.1

    def test_render(self, result):
        assert "Table V" in result.render()


class TestPareto:
    def test_fronts_well_formed(self):
        result = run_pareto((1,), FAST,
                            strategies=("stand_nvd", "simba_nvd"),
                            searches=("edp",))
        front = result.front(1, "simba_nvd")
        assert front
        xs = [p[0] for p in front]
        assert xs == sorted(xs)
        assert "Pareto" in result.render()

    def test_global_front_dominates_strategy_fronts(self):
        result = run_pareto((1,), FAST,
                            strategies=("stand_nvd", "stand_shi"),
                            searches=("edp",))
        global_front = result.global_front(1)
        merged = [p for s in result.strategies
                  for p in result.points[(1, s)]]
        for point in global_front:
            assert point in merged


class TestBreakdown:
    @pytest.fixture(scope="class")
    def result(self):
        return run_breakdown(scenario_id=2, strategy="het_sides",
                             config=FAST)

    def test_window_latencies_cover_total(self, result):
        assert result.total_latency_s == pytest.approx(
            sum(result.window_latencies))

    def test_layer_counts_match_models(self, result):
        from repro.workloads import scenario
        sc = scenario(2)
        for inst in sc:
            assert sum(result.per_model_layers[inst.name]) \
                == inst.num_layers

    def test_ideal_latency_at_most_total(self, result):
        for name in result.model_names:
            assert result.ideal_latency(name) \
                <= result.total_latency_s + 1e-9

    def test_render(self, result):
        text = result.render()
        assert "Table VI" in text and "Fig. 9" in text


class TestAblations:
    def test_nsplits_sweep(self):
        result = run_nsplits_ablation(FAST, scenario_id=1,
                                      values=(0, 1, 2))
        assert set(result.edps) == {0, 1, 2}
        assert all(v > 0 for v in result.edps.values())
        assert "nsplits" in result.render()

    def test_packing_ablation(self):
        result = run_packing_ablation(FAST, scenario_id=2)
        assert result.speedup > 0
        assert "paper" in result.render()
