"""Unit tests for the model zoo (Table III models)."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import zoo
from repro.workloads.layer import LayerOp
from repro.workloads.zoo.resnet import resnet_block2_slice
from repro.workloads.zoo.transformers import transformer


class TestRegistry:
    def test_all_models_build(self):
        for name in zoo.model_names():
            model = zoo.build(name)
            assert len(model) > 0, name

    def test_unknown_model_rejected(self):
        with pytest.raises(WorkloadError, match="unknown model"):
            zoo.build("alexnet")

    def test_build_is_cached(self):
        assert zoo.build("resnet50") is zoo.build("resnet50")


class TestLayerCounts:
    """Layer counts should approximate the paper's Table VI figures."""

    def test_unet_is_23_layers(self):
        assert len(zoo.build("unet")) == 23

    def test_gpt_l_is_120_layers(self):
        assert len(zoo.build("gpt_l")) == 120

    def test_bert_large_close_to_paper(self):
        assert 60 <= len(zoo.build("bert_large")) <= 80

    def test_resnet50_close_to_paper(self):
        assert 60 <= len(zoo.build("resnet50")) <= 80


class TestResNet:
    def test_stem_shape(self):
        stem = zoo.build("resnet50")[0]
        assert (stem.c, stem.k, stem.y) == (3, 64, 112)

    def test_final_fc(self):
        fc = zoo.build("resnet50").layers[-1]
        assert fc.op is LayerOp.GEMM and fc.k == 1000

    def test_total_macs_in_expected_range(self):
        """ResNet-50 is ~4.1 GMACs at 224x224."""
        gmacs = zoo.build("resnet50").total_macs / 1e9
        assert 3.0 < gmacs < 5.0

    def test_block2_slice(self):
        layers = resnet_block2_slice(3)
        assert len(layers) == 3
        assert all(l.name.startswith("s2b0_conv") for l in layers)


class TestUNet:
    def test_decoder_mirrors_encoder_resolution(self):
        model = zoo.build("unet")
        first = model[0]
        last = model.layers[-1]
        assert first.y == last.y == 512

    def test_has_skip_edges(self):
        assert len(zoo.build("unet").skip_edges) == 4

    def test_macs_heavier_than_resnet(self):
        """U-Net at 512x512 is far heavier than ResNet-50 at 224."""
        assert zoo.build("unet").total_macs \
            > 10 * zoo.build("resnet50").total_macs


class TestTransformers:
    def test_all_layers_are_gemm(self):
        for name in ("gpt_l", "bert_large", "bert_base", "emformer"):
            assert all(l.op is LayerOp.GEMM for l in zoo.build(name)), name

    def test_full_decomposition_block_layout(self):
        model = transformer("t", blocks=2, d_model=64, seq_len=16,
                            decomposition="full")
        assert len(model) == 10
        assert model[0].name == "b0_qkv"
        assert model[0].k == 3 * 64

    def test_fused_decomposition_block_layout(self):
        model = transformer("t", blocks=2, d_model=64, seq_len=16,
                            decomposition="fused")
        assert len(model) == 6

    def test_fused_attention_preserves_macs(self):
        """Fused attention MACs == qkv + matmuls + proj MACs."""
        d, m = 64, 16
        fused = transformer("t", blocks=1, d_model=d, seq_len=m,
                            decomposition="fused")[0]
        expected = 3 * d * d * m + 2 * m * m * d + d * d * m
        assert fused.macs == expected

    def test_unknown_decomposition_rejected(self):
        with pytest.raises(WorkloadError):
            transformer("t", blocks=1, d_model=8, seq_len=4,
                        decomposition="other")

    def test_bert_base_smaller_than_large(self):
        assert zoo.build("bert_base").total_macs \
            < zoo.build("bert_large").total_macs


class TestXRModels:
    def test_edge_models_are_light(self):
        """XR models must be far lighter than datacenter U-Net."""
        unet = zoo.build("unet").total_macs
        for name in ("d2go", "eyecod", "hand_sp", "sp2dense"):
            assert zoo.build(name).total_macs < unet / 5, name

    def test_d2go_contains_depthwise(self):
        ops = {l.op for l in zoo.build("d2go")}
        assert LayerOp.DWCONV in ops

    def test_hrvit_is_hybrid(self):
        ops = {l.op for l in zoo.build("hrvit")}
        assert LayerOp.CONV in ops and LayerOp.GEMM in ops

    def test_unique_layer_names_everywhere(self):
        for name in zoo.model_names():
            model = zoo.build(name)
            names = [l.name for l in model]
            assert len(set(names)) == len(names), name
