"""JSON wire-format round-trip tests for the repro.api value types.

Property-style: seeded-random :class:`ScheduleRequest` instances must
survive ``from_dict(to_dict(x)) == x`` exactly (same for the JSON string
form), and malformed documents must fail loudly with ``ConfigError``.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.api import (
    CandidatePoint,
    ScheduleRequest,
    ScheduleResult,
    metrics_from_dict,
    metrics_to_dict,
    perf_from_dict,
    perf_to_dict,
    scenario_spec,
)
from repro.core.budget import QUICK_BUDGET, SearchBudget
from repro.errors import ConfigError
from repro.perf import CacheStats, PerfReport


def _random_request(rng: random.Random) -> ScheduleRequest:
    """One random-but-valid request (all fields exercised over a run)."""
    return ScheduleRequest(
        scenario_id=rng.randint(1, 10),
        template=rng.choice(("het_sides_3x3", "simba_nvd_3x3",
                             "het_cross_6x6")),
        policy=rng.choice(("standalone", "nn_baton", "scar",
                           "evolutionary")),
        objective=rng.choice(("latency", "energy", "edp")),
        latency_bound_s=rng.choice((None, rng.uniform(1e-4, 1.0))),
        nsplits=rng.randint(0, 5),
        budget=SearchBudget(
            top_k_segmentations=rng.randint(1, 4),
            max_segment_candidates=rng.randint(1, 128),
            max_root_combos=rng.randint(1, 24),
            max_paths_per_model=rng.randint(1, 12),
            max_candidates_per_window=rng.randint(1, 400),
            seed=rng.randint(0, 99),
        ),
        packing=rng.choice(("greedy", "uniform")),
        provisioning=rng.choice(("uniform", "exhaustive")),
        prov_limit=rng.randint(1, 64),
        max_nodes_per_model=rng.choice((None, rng.randint(1, 9))),
        seg_search=rng.choice(("enumerative", "evolutionary")),
        jobs=rng.randint(1, 4),
        use_eval_cache=rng.choice((True, False)),
        memoize=rng.choice((True, False)),
    )


class TestRequestRoundTrip:
    def test_default_request(self):
        request = ScheduleRequest(scenario_id=4)
        assert ScheduleRequest.from_dict(request.to_dict()) == request

    @pytest.mark.parametrize("seed", range(20))
    def test_random_requests(self, seed):
        request = _random_request(random.Random(seed))
        assert ScheduleRequest.from_dict(request.to_dict()) == request
        assert ScheduleRequest.from_json(request.to_json()) == request

    def test_round_trip_through_json_text(self):
        """The wire form survives an actual serialize/parse cycle."""
        request = _random_request(random.Random(1234))
        text = json.dumps(request.to_dict())
        assert ScheduleRequest.from_dict(json.loads(text)) == request

    def test_inline_spec_round_trip(self, tiny_scenario):
        request = ScheduleRequest.for_scenario(
            tiny_scenario, template="het_sides_3x3", budget=QUICK_BUDGET)
        clone = ScheduleRequest.from_json(request.to_json())
        assert clone == request
        rebuilt = clone.resolve_scenario()
        assert rebuilt == tiny_scenario

    def test_table3_spec_stays_compact(self):
        """Zoo-resolvable models are referenced by name, not inlined."""
        from repro.workloads.scenarios import scenario

        spec = scenario_spec(scenario(1))
        assert all("layers" not in entry for entry in spec["models"])
        request = ScheduleRequest(scenario_spec=spec)
        assert request.resolve_scenario() == scenario(1)

    def test_custom_model_spec_inlines_layers(self, tiny_scenario):
        spec = scenario_spec(tiny_scenario)
        assert all("layers" in entry for entry in spec["models"])

    def test_cache_key_is_canonical_and_covers_flags(self):
        request = ScheduleRequest(scenario_id=4)
        assert request.cache_key() == \
            ScheduleRequest.from_dict(request.to_dict()).cache_key()
        assert request.cache_key() != \
            request.replace(jobs=2).cache_key()
        assert request.cache_key() != \
            request.replace(use_eval_cache=False).cache_key()
        assert request.cache_key() != \
            request.replace(memoize=False).cache_key()

    def test_replace(self):
        request = ScheduleRequest(scenario_id=4)
        assert request.replace(objective="latency").objective == "latency"

    def test_requests_are_hashable(self, tiny_scenario):
        """Inline-spec requests (dict field) still hash as value objects."""
        by_id = ScheduleRequest(scenario_id=4)
        by_spec = ScheduleRequest.for_scenario(tiny_scenario)
        assert len({by_id, ScheduleRequest(scenario_id=4), by_spec,
                    ScheduleRequest.for_scenario(tiny_scenario)}) == 2
        assert hash(by_spec) == hash(
            ScheduleRequest.from_dict(by_spec.to_dict()))


class TestRequestValidation:
    def test_scenario_ref_is_exclusive(self):
        with pytest.raises(ConfigError):
            ScheduleRequest()
        with pytest.raises(ConfigError):
            ScheduleRequest(scenario_id=1,
                            scenario_spec={"name": "x", "models": []})

    def test_bad_jobs(self):
        with pytest.raises(ConfigError):
            ScheduleRequest(scenario_id=1, jobs=0)

    def test_bad_objective(self):
        with pytest.raises(Exception):
            ScheduleRequest(scenario_id=1, objective="power")

    def test_malformed_document(self):
        with pytest.raises(ConfigError):
            ScheduleRequest.from_dict({"kind": "schedule_request",
                                       "version": 1})

    def test_wrong_kind(self):
        request = ScheduleRequest(scenario_id=1)
        data = request.to_dict()
        data["kind"] = "something_else"
        with pytest.raises(ConfigError):
            ScheduleRequest.from_dict(data)

    def test_unsupported_version(self):
        data = ScheduleRequest(scenario_id=1).to_dict()
        data["version"] = 999
        with pytest.raises(ConfigError):
            ScheduleRequest.from_dict(data)

    def test_missing_envelope_rejected(self):
        """Documents without kind/version fail the gate, not field lookup."""
        data = ScheduleRequest(scenario_id=1).to_dict()
        for dropped in ("kind", "version"):
            broken = dict(data)
            del broken[dropped]
            with pytest.raises(ConfigError,
                               match="kind|version"):
                ScheduleRequest.from_dict(broken)

    def test_bad_json_text(self):
        with pytest.raises(ConfigError):
            ScheduleRequest.from_json("{not json")


class TestAuxRoundTrips:
    def test_candidate_point(self):
        point = CandidatePoint(score=1.5e-8, latency_s=0.01,
                               energy_j=0.002)
        assert CandidatePoint.from_dict(point.to_dict()) == point

    def test_perf_report(self):
        perf = PerfReport(wall_s=1.25, num_evaluated=100, num_windows=3,
                          jobs=2,
                          cache={"window": CacheStats(hits=5, misses=7)})
        assert perf_from_dict(perf_to_dict(perf)) == perf

    def test_metrics_round_trip_from_real_run(self, tiny_scenario,
                                              nvd_mcm):
        from repro.core import ScheduleEvaluator, StandaloneScheduler

        outcome = StandaloneScheduler(nvd_mcm).schedule(tiny_scenario)
        metrics = outcome.metrics
        clone = metrics_from_dict(metrics_to_dict(metrics))
        assert clone == metrics
        assert clone.edp == metrics.edp
        # and again through real JSON text
        assert metrics_from_dict(
            json.loads(json.dumps(metrics_to_dict(metrics)))) == metrics


class TestResultRoundTrip:
    @pytest.fixture
    def result(self, tiny_scenario):
        from repro.api import Session

        request = ScheduleRequest.for_scenario(
            tiny_scenario, template="het_sides_3x3", policy="scar",
            budget=QUICK_BUDGET, nsplits=1)
        return Session().submit(request)

    def test_dict_round_trip(self, result):
        clone = ScheduleResult.from_dict(result.to_dict())
        assert clone == result

    def test_json_round_trip(self, result):
        clone = ScheduleResult.from_json(result.to_json())
        assert clone == result
        assert clone.metrics == result.metrics
        assert clone.schedule == result.schedule
        assert clone.window_candidates == result.window_candidates
        assert clone.perf == result.perf

    def test_raw_population_stays_in_process(self, result):
        assert result.raw is not None
        clone = ScheduleResult.from_dict(result.to_dict())
        assert clone.raw is None  # raw never crosses the wire
        assert clone == result    # ... and does not affect equality

    def test_candidate_points_survive_the_wire(self, result):
        clone = ScheduleResult.from_json(result.to_json())
        assert clone.candidate_points() == result.candidate_points()
        assert clone.candidate_points() == \
            result.raw.candidate_points()

    def test_value_lookup(self, result):
        assert result.value("edp") == pytest.approx(
            result.value("latency") * result.value("energy"))
        with pytest.raises(ConfigError):
            result.value("power")


class TestLintReportRoundTrip:
    """The lint report is a first-class wire document (kind lint_report)."""

    @pytest.fixture
    def report(self):
        from repro.analysis import Finding, LintReport

        finding = Finding(code="SCAR002", message="time.time in engine",
                          path="src/repro/engine/x.py", line=12, col=4)
        muted = Finding(code="SCAR005", message="undocumented policy",
                        path="src/repro/api/policies.py", line=3)
        return LintReport(findings=(finding,), suppressed=(muted,),
                          checked_files=88,
                          codes=("SCAR002", "SCAR005"))

    def test_dict_round_trip(self, report):
        from repro.analysis import LintReport

        assert LintReport.from_dict(report.to_dict()) == report

    def test_json_round_trip(self, report):
        from repro.analysis import LintReport

        clone = LintReport.from_json(report.to_json())
        assert clone == report
        assert clone.counts() == {"SCAR002": 1}
        assert not clone.clean

    def test_envelope_kind_and_version(self, report):
        from repro.analysis import REPORT_KIND
        from repro.api.wire import WIRE_VERSION

        data = report.to_dict()
        assert data["kind"] == REPORT_KIND
        assert data["version"] == WIRE_VERSION

    def test_missing_envelope_rejected(self, report):
        from repro.analysis import LintReport

        for dropped in ("kind", "version"):
            data = report.to_dict()
            del data[dropped]
            with pytest.raises(ConfigError, match="kind|version"):
                LintReport.from_dict(data)

    def test_wrong_kind_rejected(self, report):
        from repro.analysis import LintReport

        data = report.to_dict()
        data["kind"] = "schedule_result"
        with pytest.raises(ConfigError, match="kind"):
            LintReport.from_dict(data)

    def test_malformed_json_is_config_error(self):
        from repro.analysis import LintReport

        with pytest.raises(ConfigError, match="lint report"):
            LintReport.from_json("{not json")

    def test_malformed_findings_rejected(self, report):
        from repro.analysis import LintReport

        data = report.to_dict()
        data["findings"] = [{"code": "SCAR001"}]  # missing fields
        with pytest.raises(ConfigError, match="malformed finding"):
            LintReport.from_dict(data)


def _random_trace(rng: random.Random):
    """A seeded, valid trace: staircase lifecycles over random models."""
    from repro.sim import TenantEvent, Trace

    models = ("eyecod", "hand_sp", "emformer", "resnet50")
    events = []
    tick = 0
    active = []
    for i in range(rng.randrange(1, 5)):
        tenant = f"{rng.choice(models)}#t{i}"
        events.append(TenantEvent(
            tick=tick, kind="arrive", tenant=tenant,
            model=rng.choice(models), batch=rng.randrange(1, 16),
            deadline_s=rng.choice([None, rng.uniform(0.01, 1.0)])))
        active.append(tenant)
        tick += rng.randrange(0, 3)
    for tenant in active:
        tick += rng.randrange(1, 3)
        events.append(TenantEvent(tick=tick, kind="depart",
                                  tenant=tenant))
    return Trace(name=f"wire:{rng.randrange(1 << 16)}",
                 events=tuple(sorted(events, key=TenantEvent.sort_key)),
                 use_case=rng.choice(("datacenter", "arvr")))


def _random_trace_spec(rng: random.Random):
    from repro.sim import TraceSpec

    return TraceSpec(
        family=rng.choice(("arrivals", "uunifast")),
        seed=rng.randrange(1 << 16),
        tenants=rng.randrange(1, 8),
        horizon=rng.randrange(2, 40),
        use_case=rng.choice(("datacenter", "arvr")),
        models=rng.choice([None, ("eyecod", "hand_sp")]),
        batches=rng.choice([None, (1, 2, 4)]),
        utilization=rng.uniform(0.05, 1.0),
        deadline_range=rng.choice(
            [None, (rng.uniform(0.001, 0.01), rng.uniform(0.02, 2.0))]),
        name=rng.choice([None, f"spec:{rng.randrange(100)}"]),
    )


def _random_sim_report(rng: random.Random):
    from repro.sim import SimReport, TenantReport

    tenants = []
    for i in range(rng.randrange(0, 4)):
        deadline = rng.choice([None, rng.uniform(0.01, 1.0)])
        worst = rng.uniform(0.001, 0.5)
        tenants.append(TenantReport(
            tenant=f"m#{i}", model="eyecod", batch=rng.randrange(1, 8),
            deadline_s=deadline, worst_latency_s=worst,
            min_slack_s=None if deadline is None else deadline - worst,
            missed=deadline is not None and deadline < worst,
            events_active=rng.randrange(0, 9)))
    scheduled = rng.randrange(1, 10)
    total_wall = rng.uniform(0.0, 5.0)
    return SimReport(
        trace=f"wire:{rng.randrange(100)}",
        mode=rng.choice(("warm", "cold")),
        num_events=scheduled + rng.randrange(0, 3),
        num_scheduled=scheduled,
        deadline_miss_rate=rng.uniform(0.0, 1.0),
        tenants=tuple(tenants),
        mean_churn=rng.uniform(0.0, 1.0),
        total_wall_s=total_wall, mean_wall_s=total_wall / scheduled,
        total_segments=rng.randrange(0, 5000),
        total_segments_recosted=rng.randrange(0, 5000),
        memo_hits=rng.randrange(0, 10))


class TestSimWireRoundTrips:
    """Traces, trace specs and sim reports are wire documents too."""

    @pytest.mark.parametrize("seed", range(20))
    def test_trace_round_trip(self, seed):
        from repro.sim import Trace

        trace = _random_trace(random.Random(f"wire-trace-{seed}"))
        assert Trace.from_json(trace.to_json()) == trace

    @pytest.mark.parametrize("seed", range(20))
    def test_trace_spec_round_trip(self, seed):
        from repro.sim import TraceSpec

        spec = _random_trace_spec(random.Random(f"wire-spec-{seed}"))
        assert TraceSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("seed", range(20))
    def test_sim_report_round_trip(self, seed):
        from repro.sim import SimReport

        report = _random_sim_report(random.Random(f"wire-report-{seed}"))
        assert SimReport.from_json(report.to_json()) == report

    def test_envelope_kinds(self):
        from repro.sim import (
            SIM_REPORT_KIND,
            TRACE_KIND,
            TRACE_SPEC_KIND,
        )
        from repro.api.wire import WIRE_VERSION

        rng = random.Random("wire-kinds")
        for value, kind in ((_random_trace(rng), TRACE_KIND),
                            (_random_trace_spec(rng), TRACE_SPEC_KIND),
                            (_random_sim_report(rng), SIM_REPORT_KIND)):
            data = value.to_dict()
            assert data["kind"] == kind
            assert data["version"] == WIRE_VERSION

    def test_wrong_kind_rejected_everywhere(self):
        from repro.sim import SimReport, Trace, TraceSpec

        rng = random.Random("wire-cross")
        trace = _random_trace(rng).to_dict()
        spec = _random_trace_spec(rng).to_dict()
        report = _random_sim_report(rng).to_dict()
        with pytest.raises(ConfigError, match="kind"):
            Trace.from_dict(spec)
        with pytest.raises(ConfigError, match="kind"):
            TraceSpec.from_dict(report)
        with pytest.raises(ConfigError, match="kind"):
            SimReport.from_dict(trace)

    def test_malformed_documents_are_config_errors(self):
        from repro.sim import SimReport, Trace, TraceSpec

        with pytest.raises(ConfigError, match="trace"):
            Trace.from_json("{not json")
        with pytest.raises(ConfigError, match="trace spec"):
            TraceSpec.from_json("{not json")
        with pytest.raises(ConfigError, match="sim report"):
            SimReport.from_json("{not json")
        broken = _random_trace(random.Random("wire-broken")).to_dict()
        broken["events"] = [{"tick": 0}]  # missing kind/tenant
        with pytest.raises(ConfigError, match="malformed"):
            Trace.from_dict(broken)
