"""Unit tests for the MAESTRO-lite cost model and dataflow definitions."""

import pytest

from repro.dataflow.cost import (
    LayerCost,
    compute_layer_cost,
    map_spatial,
)
from repro.dataflow.dataflow import (
    NVDLA,
    SHIDIANNAO,
    Dataflow,
    DataflowStyle,
    by_name,
    known_dataflows,
    register,
)
from repro.dataflow.energy import DEFAULT_ENERGY, EnergyTable
from repro.errors import DataflowError
from repro.workloads.layer import LayerOp, conv, dwconv, elemwise, gemm, pool

CLK = 500e6


def _cost(layer, dataflow, pes=4096, noc=512.0):
    return compute_layer_cost(layer, dataflow, num_pes=pes,
                              sram_bytes=10 * 1024 * 1024, noc_gbps=noc,
                              mem_gbps=noc, clock_hz=CLK)


class TestDataflowRegistry:
    def test_builtins_registered(self):
        assert set(known_dataflows()) >= {"nvdla", "shidiannao"}
        assert by_name("nvdla") is NVDLA

    def test_unknown_name_rejected(self):
        with pytest.raises(DataflowError):
            by_name("tpu")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DataflowError):
            register(Dataflow("nvdla", DataflowStyle.WEIGHT_STATIONARY))

    def test_spatial_dims_per_style(self):
        assert NVDLA.spatial_dims(LayerOp.CONV) == ("K", "C")
        assert NVDLA.spatial_dims(LayerOp.GEMM) == ("K", "C")
        assert SHIDIANNAO.spatial_dims(LayerOp.CONV) == ("YX", "K")
        assert SHIDIANNAO.spatial_dims(LayerOp.GEMM) == ("K", "X")


class TestSpatialMapping:
    def test_perfect_fit(self):
        mapping = map_spatial("K", 64, "C", 64, 4096)
        assert mapping.steps == 1
        assert mapping.p1 * mapping.p2 <= 4096
        assert mapping.utilization == pytest.approx(1.0)

    def test_oversized_dims_tile(self):
        mapping = map_spatial("K", 128, "C", 128, 4096)
        assert mapping.steps == 4

    def test_degenerate_second_dim(self):
        mapping = map_spatial("K", 512, "X", 1, 256)
        assert mapping.p2 == 1
        assert mapping.steps == 2

    def test_rejects_zero_pes(self):
        with pytest.raises(DataflowError):
            map_spatial("K", 4, "C", 4, 0)


class TestComputeCycles:
    def test_cycles_at_least_macs_over_pes(self):
        layer = conv("c", c=64, k=64, y=56, x=56, r=3)
        for df in (NVDLA, SHIDIANNAO):
            cost = _cost(layer, df)
            assert cost.cycles >= layer.macs / 4096 - 1e-6

    def test_batch_scales_cycles_linearly(self):
        layer = conv("c", c=64, k=64, y=28, x=28, r=3)
        single = _cost(layer, NVDLA).cycles
        batched = _cost(layer.with_batch(4), NVDLA).cycles
        assert batched == pytest.approx(4 * single)

    def test_latency_seconds(self):
        layer = gemm("g", m=16, n_out=64, k_in=64)
        cost = _cost(layer, NVDLA)
        assert cost.latency_s(CLK) == pytest.approx(cost.cycles / CLK)

    def test_energy_positive_and_joules(self):
        cost = _cost(conv("c", c=8, k=8, y=8, x=8), SHIDIANNAO)
        assert cost.energy_pj > 0
        assert cost.energy_j() == pytest.approx(cost.energy_pj * 1e-12)

    def test_more_pes_never_slower(self):
        layer = conv("c", c=64, k=128, y=56, x=56, r=3)
        small = _cost(layer, NVDLA, pes=256)
        large = _cost(layer, NVDLA, pes=4096)
        assert large.cycles <= small.cycles


class TestAffinities:
    """The per-layer dataflow affinities that drive the whole paper."""

    def test_channel_heavy_gemm_prefers_nvdla(self):
        layer = gemm("ffn", m=128, n_out=5120, k_in=1280)
        nvd = _cost(layer, NVDLA)
        shi = _cost(layer, SHIDIANNAO)
        assert shi.cycles > 2.0 * nvd.cycles
        assert shi.energy_pj > nvd.energy_pj

    def test_shallow_spatial_conv_prefers_shidiannao(self):
        layer = conv("stem", c=3, k=64, y=112, x=112, r=7, stride=2)
        nvd = _cost(layer, NVDLA)
        shi = _cost(layer, SHIDIANNAO)
        assert nvd.cycles > 5.0 * shi.cycles

    def test_mid_conv_roughly_comparable(self):
        layer = conv("mid", c=128, k=128, y=28, x=28, r=3)
        nvd = _cost(layer, NVDLA)
        shi = _cost(layer, SHIDIANNAO)
        ratio = shi.cycles / nvd.cycles
        assert 0.5 < ratio < 2.0

    def test_os_gemm_is_bandwidth_limited(self):
        """The fixed Shi FC mapping streams per-lane weights."""
        layer = gemm("ffn", m=128, n_out=5120, k_in=1280)
        shi = _cost(layer, SHIDIANNAO, noc=64.0)
        shi_fast = _cost(layer, SHIDIANNAO, noc=512.0)
        assert shi.cycles > shi_fast.cycles

    def test_dwconv_prefers_shidiannao(self):
        layer = dwconv("dw", c=96, y=40, x=40, r=3)
        nvd = _cost(layer, NVDLA, pes=256, noc=32.0)
        shi = _cost(layer, SHIDIANNAO, pes=256, noc=32.0)
        assert shi.cycles <= nvd.cycles


class TestMemoryEffects:
    def test_refetch_when_footprint_exceeds_sram(self):
        layer = gemm("big", m=256, n_out=4096, k_in=4096)
        cost = compute_layer_cost(layer, NVDLA, num_pes=4096,
                                  sram_bytes=1024 * 1024, noc_gbps=512.0,
                                  mem_gbps=512.0, clock_hz=CLK)
        assert cost.dram_refetch_bytes > 0

    def test_no_refetch_when_it_fits(self):
        layer = conv("c", c=8, k=8, y=8, x=8)
        assert _cost(layer, NVDLA).dram_refetch_bytes == 0

    def test_pool_and_elemwise_cheap_energy(self):
        shape = dict(y=32, x=32)
        p = _cost(pool("p", c=64, **shape), NVDLA)
        e = _cost(elemwise("e", k=64, **shape), NVDLA)
        c = _cost(conv("c", c=64, k=64, **shape), NVDLA)
        assert p.energy_pj < c.energy_pj
        assert e.energy_pj < c.energy_pj

    def test_stall_factor_at_least_one(self):
        for df in (NVDLA, SHIDIANNAO):
            assert _cost(conv("c", c=16, k=16, y=16, x=16), df) \
                .stall_factor >= 1.0


class TestEnergyTable:
    def test_table2_dram_energy(self):
        assert DEFAULT_ENERGY.dram_pj_byte == pytest.approx(14.8 * 8)

    def test_table2_nop_energy(self):
        assert DEFAULT_ENERGY.nop_pj_byte == pytest.approx(2.04 * 8)

    def test_scaled(self):
        scaled = DEFAULT_ENERGY.scaled(2.0)
        assert scaled.mac_pj == pytest.approx(2 * DEFAULT_ENERGY.mac_pj)
        assert scaled.sram_pj_byte == pytest.approx(
            2 * DEFAULT_ENERGY.sram_pj_byte)

    def test_custom_energy_table_scales_energy(self):
        layer = conv("c", c=16, k=16, y=16, x=16)
        base = compute_layer_cost(layer, NVDLA, num_pes=256,
                                  sram_bytes=1 << 20, noc_gbps=32.0,
                                  mem_gbps=32.0, clock_hz=CLK)
        doubled = compute_layer_cost(layer, NVDLA, num_pes=256,
                                     sram_bytes=1 << 20, noc_gbps=32.0,
                                     mem_gbps=32.0, clock_hz=CLK,
                                     energy=DEFAULT_ENERGY.scaled(2.0))
        assert doubled.energy_pj == pytest.approx(2 * base.energy_pj)
