"""Unit tests for the layer IR."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.layer import (
    Layer,
    LayerOp,
    conv,
    dwconv,
    elemwise,
    gemm,
    pool,
)


class TestLayerConstruction:
    def test_conv_constructor_maps_dims(self):
        layer = conv("c", c=3, k=64, y=112, x=112, r=7, stride=2)
        assert layer.op is LayerOp.CONV
        assert (layer.c, layer.k, layer.y, layer.x) == (3, 64, 112, 112)
        assert layer.r == layer.s == 7
        assert layer.stride == 2

    def test_gemm_constructor_convention(self):
        layer = gemm("g", m=128, n_out=512, k_in=256)
        assert layer.op is LayerOp.GEMM
        assert layer.y == 128      # M
        assert layer.k == 512      # N
        assert layer.c == 256      # K_in
        assert layer.x == layer.r == layer.s == 1

    def test_rectangular_kernel(self):
        layer = conv("c", c=8, k=8, y=4, x=4, r=1, s=3)
        assert (layer.r, layer.s) == (1, 3)

    def test_nonpositive_dim_rejected(self):
        with pytest.raises(WorkloadError, match="k=0"):
            Layer(name="bad", op=LayerOp.CONV, k=0)

    def test_non_integer_dim_rejected(self):
        with pytest.raises(WorkloadError):
            Layer(name="bad", op=LayerOp.CONV, k=2.5)  # type: ignore

    def test_depthwise_requires_k_equals_c(self):
        with pytest.raises(WorkloadError, match="k == c"):
            Layer(name="bad", op=LayerOp.DWCONV, k=8, c=16)

    def test_dwconv_constructor_sets_k(self):
        layer = dwconv("d", c=32, y=8, x=8)
        assert layer.k == layer.c == 32


class TestDerivedCounts:
    def test_conv_macs(self):
        layer = conv("c", c=4, k=8, y=6, x=5, r=3)
        assert layer.macs == 8 * 4 * 6 * 5 * 9

    def test_gemm_macs(self):
        layer = gemm("g", m=10, n_out=20, k_in=30)
        assert layer.macs == 10 * 20 * 30

    def test_dwconv_macs_reduce_single_channel(self):
        layer = dwconv("d", c=16, y=4, x=4, r=3)
        assert layer.macs == 16 * 4 * 4 * 9

    def test_elemwise_macs(self):
        layer = elemwise("e", k=16, y=4, x=4)
        assert layer.macs == 16 * 16

    def test_weight_bytes(self):
        layer = conv("c", c=4, k=8, y=6, x=5, r=3)
        assert layer.weight_bytes == 8 * 4 * 9

    def test_pool_has_no_weights(self):
        assert pool("p", c=16, y=4, x=4).weight_bytes == 0

    def test_elemwise_has_no_weights(self):
        assert elemwise("e", k=16, y=4, x=4).weight_bytes == 0

    def test_output_bytes_scale_with_batch(self):
        layer = conv("c", c=4, k=8, y=6, x=5, r=3)
        assert layer.with_batch(3).output_bytes == 3 * layer.output_bytes

    def test_gemm_input_bytes(self):
        layer = gemm("g", m=10, n_out=20, k_in=30)
        assert layer.input_bytes == 10 * 30

    def test_conv_input_bytes_account_stride_and_kernel(self):
        layer = conv("c", c=2, k=2, y=4, x=4, r=3, stride=2)
        # y_in = 4*2 + (3-2) = 9
        assert layer.input_bytes == 2 * 9 * 9

    def test_footprint_is_sum(self):
        layer = conv("c", c=4, k=8, y=6, x=5, r=3)
        assert layer.footprint_bytes == (layer.weight_bytes
                                         + layer.input_bytes
                                         + layer.output_bytes)

    def test_arithmetic_intensity_positive(self):
        assert conv("c", c=4, k=8, y=6, x=5).arithmetic_intensity > 0


class TestManipulation:
    def test_with_batch_preserves_other_dims(self):
        layer = conv("c", c=4, k=8, y=6, x=5)
        batched = layer.with_batch(7)
        assert batched.n == 7
        assert batched.k == layer.k
        assert batched.name == layer.name

    def test_with_batch_rejects_zero(self):
        with pytest.raises(WorkloadError):
            conv("c", c=4, k=8, y=6, x=5).with_batch(0)

    def test_scaled_renames_and_overrides(self):
        layer = conv("c", c=4, k=8, y=6, x=5)
        scaled = layer.scaled("c2", y=12)
        assert scaled.name == "c2"
        assert scaled.y == 12 and scaled.x == 5

    def test_dims_mapping(self):
        layer = conv("c", c=4, k=8, y=6, x=5, r=3)
        dims = layer.dims()
        assert dims == {"N": 1, "K": 8, "C": 4, "Y": 6, "X": 5,
                        "R": 3, "S": 3}

    def test_layer_is_hashable_and_frozen(self):
        layer = conv("c", c=4, k=8, y=6, x=5)
        assert hash(layer) == hash(conv("c", c=4, k=8, y=6, x=5))
        with pytest.raises(AttributeError):
            layer.k = 9  # type: ignore
