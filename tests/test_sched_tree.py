"""Unit tests for scheduling trees (path enumeration + placements)."""

import random

import pytest

from repro.core.budget import SearchBudget
from repro.core.sched_tree import placements, simple_paths


BUDGET = SearchBudget(max_root_combos=9, max_paths_per_model=16,
                      max_candidates_per_window=400, seed=0)


class TestSimplePaths:
    def test_length_one_is_start_only(self, nvd_mcm):
        assert simple_paths(nvd_mcm, 4, 1, frozenset(), 10) == [(4,)]

    def test_paths_follow_adjacency(self, nvd_mcm):
        for path in simple_paths(nvd_mcm, 0, 4, frozenset(), 50):
            for a, b in zip(path, path[1:]):
                assert b in nvd_mcm.topology.neighbors(a)

    def test_paths_are_simple(self, nvd_mcm):
        for path in simple_paths(nvd_mcm, 0, 5, frozenset(), 100):
            assert len(set(path)) == len(path)

    def test_blocked_nodes_avoided(self, nvd_mcm):
        blocked = frozenset({1, 3})
        for path in simple_paths(nvd_mcm, 0, 2, blocked, 10):
            assert not set(path) & blocked

    def test_blocked_start_yields_nothing(self, nvd_mcm):
        assert simple_paths(nvd_mcm, 0, 2, frozenset({0}), 10) == []

    def test_limit_respected(self, nvd_mcm):
        assert len(simple_paths(nvd_mcm, 4, 3, frozenset(), 5)) == 5

    def test_node_rank_orders_expansion(self, het_mcm):
        # Prefer Shi nodes (1, 4, 7): from node 0, the first 2-node path
        # should go through node 1 rather than node 3.
        rank = {n: 0.0 if n in (1, 4, 7) else 1.0
                for n in range(het_mcm.num_chiplets)}
        paths = simple_paths(het_mcm, 0, 2, frozenset(), 10,
                             node_rank=rank)
        assert paths[0] == (0, 1)

    def test_impossible_length(self, nvd_mcm):
        assert simple_paths(nvd_mcm, 0, 10, frozenset(), 10) == []


class TestPlacements:
    def test_placements_are_disjoint(self, nvd_mcm):
        for placement in placements(nvd_mcm, [(0, 3), (1, 3)], BUDGET):
            nodes = [n for path in placement.values() for n in path]
            assert len(set(nodes)) == len(nodes)

    def test_placement_lengths_match_counts(self, nvd_mcm):
        for placement in placements(nvd_mcm, [(0, 2), (1, 4)], BUDGET):
            assert len(placement[0]) == 2
            assert len(placement[1]) == 4
            break

    def test_infeasible_total_yields_nothing(self, het_2x2):
        assert list(placements(het_2x2, [(0, 3), (1, 2)], BUDGET)) == []

    def test_full_occupancy_possible(self, het_2x2):
        results = list(placements(het_2x2, [(0, 2), (1, 2)], BUDGET))
        assert results
        for placement in results:
            assert len(set(placement[0]) | set(placement[1])) == 4

    def test_deterministic_given_seed(self, nvd_mcm):
        first = list(placements(nvd_mcm, [(0, 2), (1, 2)], BUDGET,
                                random.Random(3)))
        second = list(placements(nvd_mcm, [(0, 2), (1, 2)], BUDGET,
                                 random.Random(3)))
        assert first == second

    def test_node_ranks_put_affine_starts_first(self, het_mcm):
        # Model 0 prefers Shi nodes; its first placement should start there.
        ranks = {0: {n: (0.0 if n in (1, 4, 7) else 1.0)
                     for n in range(9)}}
        first = next(iter(placements(het_mcm, [(0, 1)], BUDGET,
                                     node_ranks=ranks)))
        assert first[0][0] in (1, 4, 7)

    def test_single_model_all_chiplets(self, nvd_mcm):
        results = list(placements(nvd_mcm, [(0, 9)], BUDGET))
        assert results
        assert all(len(p[0]) == 9 for p in results)
