"""Tests for the simulation layer: traces, replay, metrics."""

import dataclasses
import json

import pytest

from repro.api.request import ScheduleRequest
from repro.api.session import Session
from repro.core.budget import SearchBudget
from repro.errors import ConfigError
from repro.sim import (
    EVENT_KINDS,
    MODES,
    TenantEvent,
    Trace,
    TraceSpec,
    build_report,
    generate_trace,
    replay,
    replay_parity,
    strip_nonidentity,
)
from repro.sim.metrics import SimReport
from repro.workloads.scenarios import use_case_batches, use_case_models


def arrive(tick, tenant, model, batch, deadline_s=None):
    return TenantEvent(tick=tick, kind="arrive", tenant=tenant,
                       model=model, batch=batch, deadline_s=deadline_s)


def depart(tick, tenant):
    return TenantEvent(tick=tick, kind="depart", tenant=tenant)


class TestTenantEvent:
    def test_kinds_ordered_departs_first(self):
        assert EVENT_KINDS == ("depart", "arrive")
        assert depart(3, "a").sort_key() < arrive(3, "a", "eyecod", 1) \
            .sort_key()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown event kind"):
            TenantEvent(tick=0, kind="pause", tenant="a")

    @pytest.mark.parametrize("tick", [-1, 1.5, True])
    def test_bad_tick_rejected(self, tick):
        with pytest.raises(ConfigError, match="tick"):
            TenantEvent(tick=tick, kind="depart", tenant="a")

    def test_empty_tenant_rejected(self):
        with pytest.raises(ConfigError, match="tenant"):
            depart(0, "")

    def test_arrive_needs_workload(self):
        with pytest.raises(ConfigError, match="needs model and batch"):
            TenantEvent(tick=0, kind="arrive", tenant="a")

    def test_arrive_rejects_bad_batch_and_deadline(self):
        with pytest.raises(ConfigError, match="batch"):
            arrive(0, "a", "eyecod", 0)
        with pytest.raises(ConfigError, match="deadline_s"):
            arrive(0, "a", "eyecod", 1, deadline_s=0.0)

    def test_depart_rejects_workload_fields(self):
        with pytest.raises(ConfigError, match="must not carry"):
            TenantEvent(tick=0, kind="depart", tenant="a", batch=2)

    def test_round_trip(self):
        event = arrive(4, "eyecod#a", "eyecod", 8, deadline_s=0.25)
        assert TenantEvent.from_dict(event.to_dict()) == event
        bare = depart(5, "eyecod#a")
        assert TenantEvent.from_dict(bare.to_dict()) == bare
        assert "model" not in bare.to_dict()


class TestTrace:
    def test_round_trip(self):
        trace = Trace(name="t", use_case="arvr", events=(
            arrive(0, "a", "eyecod", 1, 0.1), depart(1, "a")))
        assert Trace.from_json(trace.to_json()) == trace

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError, match="name"):
            Trace(name="", events=())

    def test_out_of_order_rejected(self):
        with pytest.raises(ConfigError, match="canonical order"):
            Trace(name="t", events=(
                arrive(1, "a", "eyecod", 1), depart(0, "a")))

    def test_same_tick_arrive_before_depart_rejected(self):
        with pytest.raises(ConfigError, match="canonical order"):
            Trace(name="t", events=(
                arrive(0, "a", "eyecod", 1),
                arrive(1, "b", "eyecod", 1), depart(1, "a")))

    def test_arrive_while_active_rejected(self):
        with pytest.raises(ConfigError, match="already.*active"):
            Trace(name="t", events=(
                arrive(0, "a", "eyecod", 1), arrive(1, "a", "eyecod", 1)))

    def test_depart_inactive_rejected(self):
        with pytest.raises(ConfigError, match="without being.*active"):
            Trace(name="t", events=(depart(0, "a"),))

    def test_rearrival_same_workload_allowed(self):
        trace = Trace(name="t", events=(
            arrive(0, "a", "eyecod", 2, 0.1), depart(1, "a"),
            arrive(2, "a", "eyecod", 2, 0.1), depart(3, "a")))
        assert trace.tenants() == ("a",)
        assert trace.deadlines() == {"a": 0.1}

    def test_rearrival_changed_workload_rejected(self):
        with pytest.raises(ConfigError, match="different workload"):
            Trace(name="t", events=(
                arrive(0, "a", "eyecod", 2), depart(1, "a"),
                arrive(2, "a", "eyecod", 4)))

    def test_bad_kind_rejected(self):
        data = Trace(name="t", events=()).to_dict()
        data["kind"] = "schedule"
        with pytest.raises(ConfigError, match="expected kind"):
            Trace.from_dict(data)


class TestTraceSpec:
    def test_round_trip(self):
        spec = TraceSpec(family="uunifast", seed=9, tenants=3, horizon=8,
                         use_case="arvr", batches=(1, 2), models=("eyecod",),
                         utilization=0.75, deadline_range=(0.01, 0.2),
                         name="mine")
        assert TraceSpec.from_json(spec.to_json()) == spec

    def test_minimal_document_uses_defaults(self):
        spec = TraceSpec.from_dict(
            {"kind": "trace_spec", "version": 1, "family": "arrivals"})
        # absent deadline_range reads as best-effort (None is meaningful
        # on the wire, so there is no "unset" to default from).
        assert spec == TraceSpec(family="arrivals", deadline_range=None)

    def test_default_trace_name(self):
        assert TraceSpec(family="arrivals", seed=7, tenants=3) \
            .trace_name() == "sim:arrivals:datacenter:s7x3"
        assert TraceSpec(family="arrivals", name="x").trace_name() == "x"

    @pytest.mark.parametrize("kwargs,message", [
        (dict(family="poisson"), "unknown trace family"),
        (dict(family="arrivals", tenants=0), "tenants"),
        (dict(family="arrivals", horizon=1), "horizon"),
        (dict(family="arrivals", utilization=0.0), "utilization"),
        (dict(family="arrivals", utilization=1.5), "utilization"),
        (dict(family="arrivals", batches=()), "batches"),
        (dict(family="arrivals", batches=(0,)), "batches"),
        (dict(family="arrivals", deadline_range=(0.0, 1.0)),
         "deadline_range"),
        (dict(family="arrivals", deadline_range=(2.0, 1.0)),
         "deadline_range"),
    ])
    def test_validation(self, kwargs, message):
        with pytest.raises(ConfigError, match=message):
            TraceSpec(**kwargs)


class TestGenerateTrace:
    SPEC = TraceSpec(family="arrivals", seed=1, tenants=2, horizon=6,
                     use_case="arvr", deadline_range=(0.1, 0.1))

    def test_golden_snapshot(self):
        trace = generate_trace(self.SPEC)
        assert trace.name == "sim:arrivals:arvr:s1x2"
        assert [e.to_dict() for e in trace.events] == [
            {"tick": 0, "kind": "arrive", "tenant": "planercnn#t1",
             "model": "planercnn", "batch": 15, "deadline_s": 0.1},
            {"tick": 2, "kind": "depart", "tenant": "planercnn#t1"},
            {"tick": 2, "kind": "arrive", "tenant": "d2go#t0",
             "model": "d2go", "batch": 15, "deadline_s": 0.1},
            {"tick": 5, "kind": "depart", "tenant": "d2go#t0"},
        ]

    def test_byte_identical_regeneration(self):
        assert generate_trace(self.SPEC).to_json() \
            == generate_trace(self.SPEC).to_json()

    def test_seed_changes_trace(self):
        other = dataclasses.replace(self.SPEC, seed=2)
        assert generate_trace(other).events \
            != generate_trace(self.SPEC).events

    def test_growing_tenants_keeps_earlier_streams(self):
        spec5 = TraceSpec(family="arrivals", seed=3, tenants=5)
        spec3 = dataclasses.replace(spec5, tenants=3)
        small = {e for e in generate_trace(spec3).events}
        large = {e for e in generate_trace(spec5).events}
        assert small <= large

    def test_pools_respected(self):
        spec = TraceSpec(family="arrivals", seed=0, tenants=6,
                         models=("eyecod", "hand_sp"), batches=(2, 4))
        arrivals = [e for e in generate_trace(spec).events
                    if e.kind == "arrive"]
        assert {e.model for e in arrivals} <= {"eyecod", "hand_sp"}
        assert {e.batch for e in arrivals} <= {2, 4}

    def test_default_pools_are_the_use_case_tables(self):
        arrivals = [e for e in generate_trace(
            TraceSpec(family="arrivals", seed=0, tenants=8,
                      use_case="arvr")).events if e.kind == "arrive"]
        assert {e.model for e in arrivals} <= set(use_case_models("arvr"))
        assert {e.batch for e in arrivals} <= set(use_case_batches("arvr"))

    def test_unknown_model_pool_rejected(self):
        with pytest.raises(Exception, match="unknown model"):
            generate_trace(TraceSpec(family="arrivals",
                                     models=("edsr",)))

    def test_uunifast_batches_from_pool(self):
        spec = TraceSpec(family="uunifast", seed=2, tenants=4,
                         batches=(1, 2, 4, 8))
        arrivals = [e for e in generate_trace(spec).events
                    if e.kind == "arrive"]
        assert len(arrivals) == 4
        assert {e.batch for e in arrivals} <= {1, 2, 4, 8}

    def test_best_effort_family(self):
        trace = generate_trace(TraceSpec(family="arrivals", seed=0,
                                         tenants=3, deadline_range=None))
        assert all(e.deadline_s is None for e in trace.events)

    def test_every_tenant_has_one_lifecycle(self):
        trace = generate_trace(TraceSpec(family="uunifast", seed=5,
                                         tenants=4))
        kinds = {}
        for event in trace.events:
            kinds.setdefault(event.tenant, []).append(event.kind)
        assert all(k == ["arrive", "depart"] for k in kinds.values())


#: Tiny replay workload: three small AR/VR models, one recurring set
#: ({A, B} comes back when C departs -> a warm-session memo hit), an
#: absurd SLA that must miss, a generous one that must hold, one
#: best-effort tenant, and a trailing empty set.
TINY_TRACE = Trace(name="sim:test:tiny", use_case="arvr", events=tuple(
    sorted([
        arrive(0, "eyecod#a", "eyecod", 1, deadline_s=1e-9),
        arrive(1, "hand_sp#b", "hand_sp", 1, deadline_s=10.0),
        arrive(2, "emformer#c", "emformer", 1),
        depart(3, "emformer#c"),
        depart(4, "hand_sp#b"),
        depart(5, "eyecod#a"),
    ], key=TenantEvent.sort_key)))


#: Module-level (not the conftest fixture) so the module-scoped
#: replay fixture can use it.
TINY_BUDGET = SearchBudget(
    top_k_segmentations=2, max_segment_candidates=16, max_root_combos=4,
    max_paths_per_model=4, max_candidates_per_window=40, seed=1)


@pytest.fixture(scope="module")
def tiny_replay():
    warm, cold, parity = replay_parity(
        TINY_TRACE, template="het_sides_3x3", nsplits=2,
        budget=TINY_BUDGET)
    return warm, cold, parity


class TestReplay:
    def test_unknown_mode_rejected(self):
        assert MODES == ("warm", "cold")
        with pytest.raises(ConfigError, match="unknown replay mode"):
            replay(TINY_TRACE, mode="tepid")

    def test_one_outcome_per_event(self, tiny_replay):
        warm, cold, _ = tiny_replay
        assert len(warm) == len(cold) == len(TINY_TRACE.events)
        assert [o.event for o in warm] == list(TINY_TRACE.events)

    def test_warm_cold_parity(self, tiny_replay):
        _, _, parity = tiny_replay
        assert parity == [True] * len(TINY_TRACE.events)

    def test_empty_set_is_not_scheduled(self, tiny_replay):
        warm, _, _ = tiny_replay
        last = warm[-1]
        assert last.result is None and last.tenants == ()
        assert last.placements() == {}

    def test_tenants_in_sorted_scenario_order(self, tiny_replay):
        warm, _, _ = tiny_replay
        assert warm[2].tenants == \
            ("emformer#c", "eyecod#a", "hand_sp#b")
        assert warm[2].deadlines == (None, 1e-9, 10.0)

    def test_recurring_set_hits_the_warm_memo(self, tiny_replay):
        warm, cold, _ = tiny_replay
        # after emformer#c departs, {eyecod#a, hand_sp#b} recurs.
        assert warm[3].memo_hit and warm[3].num_segments_recosted == 0
        assert not any(o.memo_hit for o in cold)

    def test_warm_never_recosts_more(self, tiny_replay):
        warm, cold, _ = tiny_replay
        assert sum(o.num_segments_recosted for o in warm) \
            < sum(o.num_segments_recosted for o in cold)

    def test_placements_cover_active_tenants(self, tiny_replay):
        warm, _, _ = tiny_replay
        placements = warm[2].placements()
        assert sorted(placements) == list(warm[2].tenants)
        for signature in placements.values():
            assert signature  # every tenant got segments somewhere
            for window, start, stop, node in signature:
                assert 0 <= start <= stop and isinstance(node, int)

    def test_client_mode_matches_local(self, tiny_replay):
        class _LocalClient:
            """ServiceClient stand-in: submit -> job -> result."""

            def __init__(self):
                self.session = Session()

            def submit(self, request):
                result = self.session.submit(request)

                class _Job:
                    @staticmethod
                    def result():
                        return result
                return _Job()

        outcomes = replay(TINY_TRACE, template="het_sides_3x3",
                          nsplits=2, budget=TINY_BUDGET,
                          client=_LocalClient())
        warm, _, _ = tiny_replay
        for remote, local in zip(outcomes, warm):
            assert (remote.result is None) == (local.result is None)
            if remote.result is not None:
                assert remote.result.same_payload(local.result)
                assert remote.num_segments > 0
            assert not remote.memo_hit


class TestBuildReport:
    @pytest.fixture(scope="class")
    def report(self, tiny_replay):
        warm, _, _ = tiny_replay
        return build_report(TINY_TRACE, "warm", warm)

    def test_counts(self, report, tiny_replay):
        warm, _, _ = tiny_replay
        assert report.trace == TINY_TRACE.name
        assert report.mode == "warm"
        assert report.num_events == len(TINY_TRACE.events)
        assert report.num_scheduled == \
            sum(1 for o in warm if o.result is not None)
        assert report.memo_hits == sum(1 for o in warm if o.memo_hit)
        assert report.total_segments >= report.total_segments_recosted

    def test_sla_verdicts(self, report):
        by_tenant = {t.tenant: t for t in report.tenants}
        assert sorted(by_tenant) == \
            ["emformer#c", "eyecod#a", "hand_sp#b"]
        doomed = by_tenant["eyecod#a"]
        assert doomed.missed and doomed.min_slack_s < 0
        safe = by_tenant["hand_sp#b"]
        assert not safe.missed and safe.min_slack_s > 0
        effort = by_tenant["emformer#c"]
        assert not effort.missed and effort.min_slack_s is None
        assert report.deadline_miss_rate == pytest.approx(0.5)

    def test_worst_latency_is_the_max(self, report, tiny_replay):
        warm, _, _ = tiny_replay
        latencies = [
            o.result.metrics.model_latency(o.tenants.index("eyecod#a"))
            for o in warm
            if o.result is not None and "eyecod#a" in o.tenants]
        by_tenant = {t.tenant: t for t in report.tenants}
        assert by_tenant["eyecod#a"].worst_latency_s == max(latencies)
        assert by_tenant["eyecod#a"].events_active == len(latencies)

    def test_churn_is_a_fraction(self, report):
        assert 0.0 <= report.mean_churn <= 1.0

    def test_wall_time_accumulates(self, report):
        assert report.total_wall_s > 0
        assert report.mean_wall_s == pytest.approx(
            report.total_wall_s / report.num_scheduled)

    def test_render_mentions_the_verdicts(self, report):
        text = report.render()
        assert "MISS" in text and "best-effort" in text
        assert TINY_TRACE.name in text

    def test_round_trip(self, report):
        assert SimReport.from_json(report.to_json()) == report

    def test_strip_nonidentity_zeroes_wall_time_only(self, report):
        data = report.to_dict()
        cleaned = strip_nonidentity(data)
        assert cleaned["total_wall_s"] == 0.0
        assert cleaned["mean_wall_s"] == 0.0
        untouched = {k: v for k, v in data.items()
                     if k not in ("total_wall_s", "mean_wall_s")}
        assert untouched == {k: v for k, v in cleaned.items()
                             if k not in ("total_wall_s", "mean_wall_s")}
        assert data["total_wall_s"] > 0  # input not mutated

    def test_warm_and_cold_reports_agree_outside_perf(self, tiny_replay):
        warm, cold, _ = tiny_replay
        warm_doc = strip_nonidentity(
            build_report(TINY_TRACE, "x", warm).to_dict())
        cold_doc = strip_nonidentity(
            build_report(TINY_TRACE, "x", cold).to_dict())
        for key in ("deadline_miss_rate", "tenants", "mean_churn",
                    "num_scheduled"):
            assert warm_doc[key] == cold_doc[key]


class TestWarmSession:
    def request(self, **kwargs):
        scenario = generate_trace(
            TraceSpec(family="arrivals", seed=1, tenants=2, horizon=6,
                      use_case="arvr"))
        from repro.sim.replay import _ActiveSet
        active = _ActiveSet(scenario)
        for event in scenario.events:
            if event.kind == "arrive":
                active.apply(event)
        return ScheduleRequest.for_scenario(
            active.scenario(), template="het_sides_3x3", nsplits=2,
            budget=TINY_BUDGET, **kwargs)

    def test_warm_rerun_is_bit_identical_and_cheaper(self):
        request = self.request(memoize=False)
        session = Session(warm_caches=True)
        first = session.submit(request)
        second = session.submit(request)
        assert first is not second  # memoize=False: both really ran
        assert first.same_payload(second)
        assert second.perf.num_segments_recosted == 0  # fully warm
        assert first.perf.num_segments_recosted > 0
        # injected-cache perf stats are per-run deltas, not cumulative:
        # the rerun issued the same number of window lookups, all hits
        # this time (so the inner chain/segment tables went untouched).
        window_first = first.perf.cache["window"]
        window_second = second.perf.cache["window"]
        assert window_second.hits + window_second.misses \
            == window_first.hits + window_first.misses
        assert window_second.misses == 0 and window_second.hits > 0

    def test_cold_session_matches_warm_payload(self):
        request = self.request()
        warm = Session(warm_caches=True).submit(request)
        cold = Session().submit(request)
        assert warm.same_payload(cold)

    def test_warm_cache_keyed_per_scenario_and_template(self):
        session = Session(warm_caches=True)
        request = self.request()
        assert session._warm_cache(request) \
            is session._warm_cache(request)
        other_template = dataclasses.replace(request,
                                             template="het_2x2")
        assert session._warm_cache(other_template) \
            is not session._warm_cache(request)

    def test_no_warming_without_opt_in(self):
        request = self.request()
        assert Session()._warm_cache(request) is None
        warm_session = Session(warm_caches=True)
        uncached = dataclasses.replace(request, use_eval_cache=False)
        assert warm_session._warm_cache(uncached) is None

    def test_warm_cache_lru_cap(self, monkeypatch):
        import repro.api.session as session_module
        monkeypatch.setattr(session_module, "_EVAL_CACHE_CAP", 2)
        session = Session(warm_caches=True)
        request = self.request()
        first = session._warm_cache(request)
        for template in ("het_2x2", "het_cb_3x3"):
            session._warm_cache(
                dataclasses.replace(request, template=template))
        assert len(session._eval_caches) == 2
        assert session._warm_cache(request) is not first  # evicted


class TestPerfLogAccounting:
    def test_session_cap_counts_drops(self, monkeypatch):
        import repro.api.session as session_module
        from repro.perf import PerfReport
        monkeypatch.setattr(session_module, "_PERF_REPORTS_CAP", 3)
        session = Session()
        for _ in range(5):
            session._log_perf(PerfReport())
        assert len(session.perf_reports) == 3
        assert session.perf_reports_dropped == 2
        assert session.perf_log_position() == 5
        assert session.perf_summary().reports_dropped == 2

    def test_position_is_monotone_across_trimming(self, monkeypatch):
        import repro.api.session as session_module
        from repro.perf import PerfReport
        monkeypatch.setattr(session_module, "_PERF_REPORTS_CAP", 2)
        session = Session()
        positions = []
        for _ in range(6):
            session._log_perf(PerfReport())
            positions.append(session.perf_log_position())
        assert positions == sorted(positions) == list(range(1, 7))

    def test_tail_returns_most_recent(self):
        from repro.perf import PerfReport
        session = Session()
        for i in range(4):
            session._log_perf(PerfReport(num_evaluated=i))
        assert [p.num_evaluated
                for p in session.perf_reports_tail(2)] == [2, 3]
        assert session.perf_reports_tail(0) == []
        assert len(session.perf_reports_tail(99)) == 4

    def test_global_log_counts_drops(self, monkeypatch):
        import repro.perf as perf_module
        from repro.perf import (
            PerfReport,
            drain_perf_reports,
            global_reports_dropped,
            log_report,
        )
        monkeypatch.setattr(perf_module, "_GLOBAL_PERF_CAP", 2)
        drain_perf_reports()
        assert global_reports_dropped() == 0
        for _ in range(5):
            log_report(PerfReport())
        assert global_reports_dropped() == 3
        assert len(drain_perf_reports()) == 2
        assert global_reports_dropped() == 0  # drain resets the counter

    def test_aggregate_carries_drop_count(self):
        from repro.perf import PerfReport, aggregate_reports
        summary = aggregate_reports(
            [PerfReport(reports_dropped=2), PerfReport()],
            reports_dropped=3)
        assert summary.reports_dropped == 5
        assert "evicted" in summary.render()

    def test_report_round_trips_drop_count(self):
        from repro.api.wire import perf_from_dict
        from repro.perf import PerfReport
        report = PerfReport(reports_dropped=7)
        assert perf_from_dict(report.to_dict()).reports_dropped == 7
        legacy = report.to_dict()
        del legacy["reports_dropped"]
        assert perf_from_dict(legacy).reports_dropped == 0


class TestSimDeterminismContract:
    def test_trace_json_is_stable_under_reload(self):
        spec = TraceSpec(family="uunifast", seed=4, tenants=3,
                         use_case="arvr")
        text = generate_trace(spec).to_json()
        assert json.dumps(json.loads(text), indent=2, sort_keys=True) \
            == text
