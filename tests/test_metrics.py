"""Unit tests for the Sec. III-E schedule evaluator."""

import pytest

from repro.core.metrics import ScheduleEvaluator, _divisors
from repro.core.schedule import Schedule, Segment, WindowSchedule
from repro.errors import SchedulingError


def _single_window(*chains):
    return Schedule(windows=(WindowSchedule(index=0, chains=chains),))


@pytest.fixture
def evaluator(tiny_scenario, het_mcm, database):
    return ScheduleEvaluator(tiny_scenario, het_mcm, database)


class TestEvaluation:
    def test_standalone_style_schedule(self, evaluator, tiny_scenario):
        schedule = _single_window(
            (Segment(0, 0, 4, node=0),),
            (Segment(1, 0, 3, node=2),),
        )
        metrics = evaluator.evaluate(schedule)
        assert metrics.latency_s > 0
        assert metrics.energy_j > 0
        assert metrics.edp == pytest.approx(
            metrics.latency_s * metrics.energy_j)

    def test_window_latency_is_max_over_models(self, evaluator):
        schedule = _single_window(
            (Segment(0, 0, 4, node=0),),
            (Segment(1, 0, 3, node=2),),
        )
        window = evaluator.evaluate(schedule).windows[0]
        per_model = [m.latency_s for m in window.per_model]
        assert window.latency_s == pytest.approx(max(per_model))

    def test_window_energy_is_sum_over_models(self, evaluator):
        schedule = _single_window(
            (Segment(0, 0, 4, node=0),),
            (Segment(1, 0, 3, node=2),),
        )
        window = evaluator.evaluate(schedule).windows[0]
        assert window.energy_j == pytest.approx(
            sum(m.energy_j for m in window.per_model))

    def test_schedule_latency_sums_windows(self, evaluator):
        schedule = Schedule(windows=(
            WindowSchedule(index=0, chains=(
                (Segment(0, 0, 2, node=0),),
                (Segment(1, 0, 3, node=2),))),
            WindowSchedule(index=1, chains=(
                (Segment(0, 2, 4, node=0),),)),
        ))
        metrics = evaluator.evaluate(schedule)
        assert metrics.latency_s == pytest.approx(
            sum(w.latency_s for w in metrics.windows))

    def test_invalid_schedule_rejected_by_default(self, evaluator):
        partial = _single_window((Segment(0, 0, 2, node=0),),
                                 (Segment(1, 0, 3, node=2),))
        with pytest.raises(Exception):
            evaluator.evaluate(partial)
        # but window-level evaluation works standalone
        evaluator.evaluate_window(partial.windows[0])

    def test_unplaced_segment_rejected(self, evaluator):
        schedule = _single_window(
            (Segment(0, 0, 4),),
            (Segment(1, 0, 3, node=2),),
        )
        with pytest.raises(SchedulingError, match="unplaced"):
            evaluator.evaluate(schedule)

    def test_model_latency_accessor(self, evaluator):
        schedule = _single_window(
            (Segment(0, 0, 4, node=0),),
            (Segment(1, 0, 3, node=2),),
        )
        metrics = evaluator.evaluate(schedule)
        assert metrics.model_latency(0) \
            == metrics.windows[0].model_latency(0)
        assert metrics.windows[0].model_latency(9) == 0.0


class TestPipelining:
    def test_pipelined_chain_beats_serial_on_latency(
            self, evaluator, het_mcm):
        """A batched model split across chiplets must pipeline."""
        serial = _single_window(
            (Segment(0, 0, 4, node=0),),
            (Segment(1, 0, 3, node=2),),
        )
        pipelined = _single_window(
            (Segment(0, 0, 2, node=0), Segment(0, 2, 4, node=3)),
            (Segment(1, 0, 3, node=2),),
        )
        lat_serial = evaluator.evaluate(serial).windows[0].model_latency(0)
        lat_pipe = evaluator.evaluate(pipelined).windows[0].model_latency(0)
        assert lat_pipe < lat_serial

    def test_minibatch_divides_batch(self, evaluator):
        schedule = _single_window(
            (Segment(0, 0, 2, node=0), Segment(0, 2, 4, node=3)),
            (Segment(1, 0, 3, node=2),),
        )
        window = evaluator.evaluate(schedule).windows[0]
        for entry in window.per_model:
            batch = evaluator.scenario[entry.model].batch
            assert batch % entry.minibatch == 0
            assert entry.tile_factor >= 1

    def test_chain_comm_adds_energy(self, evaluator):
        serial = _single_window(
            (Segment(0, 0, 4, node=0),),
            (Segment(1, 0, 3, node=2),),
        )
        split = _single_window(
            (Segment(0, 0, 2, node=0), Segment(0, 2, 4, node=3)),
            (Segment(1, 0, 3, node=2),),
        )
        # Splitting introduces NoP transfers; compute energy may shift
        # between chiplet classes, so compare same-dataflow nodes (0, 3
        # are both NVDLA on het-sides).
        e_serial = evaluator.evaluate(serial).windows[0].per_model[0]
        e_split = evaluator.evaluate(split).windows[0].per_model[0]
        assert e_split.energy_j > 0
        assert e_split.segment_latencies_s != e_serial.segment_latencies_s


class TestPlacementSensitivity:
    def test_gemm_model_prefers_nvdla_chiplet(self, evaluator, het_mcm):
        """Model 1 (GEMM) on an NVDLA node beats a Shi node."""
        on_nvd = _single_window(
            (Segment(0, 0, 4, node=7),),
            (Segment(1, 0, 3, node=0),),  # node 0 = NVDLA
        )
        on_shi = _single_window(
            (Segment(0, 0, 4, node=7),),
            (Segment(1, 0, 3, node=1),),  # node 1 = Shi
        )
        lat_nvd = evaluator.evaluate(on_nvd).windows[0].model_latency(1)
        lat_shi = evaluator.evaluate(on_shi).windows[0].model_latency(1)
        assert lat_nvd < lat_shi

    def test_offchip_distance_affects_latency(
            self, tiny_scenario, nvd_mcm, database):
        """Center chiplets pay extra hops to reach DRAM."""
        evaluator = ScheduleEvaluator(tiny_scenario, nvd_mcm, database)
        corner = _single_window(
            (Segment(0, 0, 4, node=0),),
            (Segment(1, 0, 3, node=2),))
        center = _single_window(
            (Segment(0, 0, 4, node=4),),
            (Segment(1, 0, 3, node=2),))
        lat_corner = evaluator.evaluate(corner).windows[0].model_latency(0)
        lat_center = evaluator.evaluate(center).windows[0].model_latency(0)
        assert lat_corner <= lat_center


class TestDivisors:
    """The O(sqrt n) divisor enumeration used for mini-batch search."""

    def test_one(self):
        assert _divisors(1) == (1,)

    @pytest.mark.parametrize("prime", (2, 3, 5, 7, 97, 7919))
    def test_primes(self, prime):
        assert _divisors(prime) == (1, prime)

    @pytest.mark.parametrize("square", (4, 9, 16, 36, 144, 10201))
    def test_perfect_squares_no_duplicate_root(self, square):
        divisors = _divisors(square)
        assert len(divisors) == len(set(divisors))
        root = int(square ** 0.5)
        assert root in divisors

    @pytest.mark.parametrize("value", list(range(1, 200)) + [1024, 5040])
    def test_matches_naive_scan(self, value):
        naive = tuple(d for d in range(1, value + 1) if value % d == 0)
        assert _divisors(value) == naive
