"""Job value objects: state machine, event monotonicity, wire forms."""

from __future__ import annotations

import pytest

from repro.api import ErrorDocument, ScheduleRequest
from repro.errors import (
    ConfigError,
    DataflowError,
    HardwareError,
    ReproError,
    SchedulingError,
    SearchError,
    ServiceError,
    ValidationError,
    WorkloadError,
)
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobEvent,
    JobRecord,
)

REQUEST = ScheduleRequest(scenario_id=1, policy="standalone")


def _record(**kwargs) -> JobRecord:
    return JobRecord(job_id="job-000001", request=REQUEST, **kwargs)


class TestStateMachine:
    def test_happy_path(self):
        record = _record().transition(RUNNING, queue_s=0.5)
        record = record.transition(DONE, run_s=1.5)
        assert record.state == DONE
        assert record.terminal
        assert record.queue_s == 0.5 and record.run_s == 1.5
        assert [e.state for e in record.events] == [RUNNING, DONE]

    @pytest.mark.parametrize("state", [DONE, FAILED])
    def test_queued_cannot_skip_running(self, state):
        with pytest.raises(ServiceError, match="illegal transition"):
            _record().transition(state)

    def test_cancel_from_queued_and_running(self):
        assert _record().transition(CANCELLED).state == CANCELLED
        assert _record().transition(RUNNING) \
            .transition(CANCELLED).state == CANCELLED

    @pytest.mark.parametrize("terminal", sorted(TERMINAL_STATES))
    def test_terminal_states_are_final(self, terminal):
        if terminal == CANCELLED:
            record = _record().transition(CANCELLED)
        else:
            record = _record().transition(RUNNING).transition(
                terminal, error=ErrorDocument(code="search_error",
                                              message="x")
                if terminal == FAILED else None)
        for state in (QUEUED, RUNNING, DONE, FAILED, CANCELLED):
            with pytest.raises(ServiceError):
                record.transition(state)

    def test_transition_preserves_earlier_timings(self):
        record = _record().transition(RUNNING, queue_s=0.25)
        record = record.transition(DONE, run_s=2.0)
        assert record.queue_s == 0.25

    def test_unknown_state_rejected(self):
        with pytest.raises(ConfigError, match="unknown job state"):
            _record(state="EXPLODED")


class TestEventMonotonicity:
    def test_seq_strictly_increases_across_transitions(self):
        record = _record().transition(RUNNING).transition(DONE)
        seqs = [e.seq for e in record.events]
        assert seqs == sorted(set(seqs))

    def test_non_monotonic_events_rejected(self):
        events = (JobEvent(seq=1, state=QUEUED),
                  JobEvent(seq=1, state=RUNNING))
        with pytest.raises(ConfigError, match="strictly increasing"):
            _record(events=events)


class TestJobWire:
    def _full_record(self) -> JobRecord:
        record = _record(priority=3,
                         events=(JobEvent(seq=0, state=QUEUED),))
        record = record.transition(RUNNING, queue_s=0.125)
        return record.transition(
            FAILED, note="boom", run_s=1.75,
            error=ErrorDocument(code="search_error", message="no space",
                                field="budget"))

    def test_round_trip_exact(self):
        for record in (_record(), self._full_record()):
            assert JobRecord.from_dict(record.to_dict()) == record
            assert JobRecord.from_json(record.to_json()) == record

    def test_envelope_checked(self):
        data = self._full_record().to_dict()
        with pytest.raises(ConfigError, match="kind"):
            JobRecord.from_dict({**data, "kind": "schedule_request"})
        with pytest.raises(ConfigError, match="version"):
            JobRecord.from_dict({**data, "version": 99})
        with pytest.raises(ConfigError, match="malformed"):
            JobRecord.from_dict({"kind": "job", "version": 1})

    def test_event_round_trip(self):
        event = JobEvent(seq=4, state=RUNNING, note="started")
        assert JobEvent.from_dict(event.to_dict()) == event


class TestErrorDocument:
    @pytest.mark.parametrize("exc,code", [
        (WorkloadError("w"), "workload_error"),
        (HardwareError("h"), "hardware_error"),
        (DataflowError("d"), "dataflow_error"),
        (SchedulingError("s"), "scheduling_error"),
        (ValidationError("v"), "validation_error"),
        (SearchError("s"), "search_error"),
        (ConfigError("c"), "config_error"),
        (ServiceError("s"), "service_error"),
        (ReproError("r"), "repro_error"),
    ])
    def test_exception_to_code(self, exc, code):
        doc = ErrorDocument.from_exception(exc)
        assert doc.code == code
        assert doc.message == str(exc)
        # ...and back to the same exception type
        assert type(doc.exception()) is type(exc)

    def test_most_derived_class_wins(self):
        # ValidationError is a SchedulingError; the tighter code wins.
        assert ErrorDocument.from_exception(
            ValidationError("x")).code == "validation_error"

    def test_non_repro_exception_is_internal(self):
        doc = ErrorDocument.from_exception(ValueError("surprise"))
        assert doc.code == "internal_error"
        assert "ValueError" in doc.message
        assert isinstance(doc.exception(), ReproError)

    def test_service_condition_codes_map_to_service_error(self):
        for code in ("job_not_done", "job_cancelled", "not_found"):
            assert isinstance(ErrorDocument(code=code, message="m")
                              .exception(), ServiceError)

    def test_exception_carries_the_wire_code(self):
        exc = ErrorDocument(code="job_not_done", message="m").exception()
        assert exc.code == "job_not_done"
        assert ErrorDocument.from_exception(
            WorkloadError("w")).exception().code == "workload_error"

    def test_round_trip_with_field(self):
        doc = ErrorDocument(code="config_error", message="bad entry",
                            field="requests[2]")
        assert ErrorDocument.from_dict(doc.to_dict()) == doc
        assert ErrorDocument.from_json(doc.to_json()) == doc

    def test_envelope_checked(self):
        with pytest.raises(ConfigError, match="kind"):
            ErrorDocument.from_dict({"kind": "job", "version": 1})
        with pytest.raises(ConfigError, match="version"):
            ErrorDocument.from_dict({"kind": "error", "version": 0,
                                     "code": "c", "message": "m"})
