"""Fixture tests for the whole-program analysis layer (SCAR006-010).

Each program checker gets the same treatment as the per-file ones in
``test_analysis.py``: a minimal seeded violation it must catch, the
fixed version it must stay quiet on, and (where meaningful) a
``# scar: noqa[CODE]`` suppression.  The engine-level features --
skip-dir file discovery, the JSONL incremental cache and the
byte-identical determinism contract of ``lint_paths`` -- are covered
at the bottom.
"""

from __future__ import annotations

import json
import os
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    LintCache,
    LintReport,
    SourceFile,
    lint_paths,
    run_checkers,
    strip_nonidentity,
)
from repro.analysis.runner import iter_python_files
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]


def _source(text: str, module: str = "fixture",
            path: str = "fixture.py") -> SourceFile:
    return SourceFile(path, textwrap.dedent(text), module=module)


def _lint(*sources: SourceFile, select=None, root=None) -> LintReport:
    return run_checkers(list(sources), select=select,
                        root=root if root is not None else REPO_ROOT)


def _codes(report: LintReport) -> list[str]:
    return [finding.code for finding in report.findings]


# ---------------------------------------------------------------------------
# SCAR006: lock-order deadlock


class TestLockOrder:
    def test_opposite_nesting_order_fires(self):
        report = _lint(_source("""\
            import threading

            class Store:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """), select=["SCAR006"])
        assert _codes(report) == ["SCAR006"]
        assert "cycle" in report.findings[0].message

    def test_consistent_order_is_quiet(self):
        report = _lint(_source("""\
            import threading

            class Store:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def also_forward(self):
                    with self._a:
                        with self._b:
                            pass
            """), select=["SCAR006"])
        assert report.clean

    def test_self_deadlock_through_call_fires(self):
        report = _lint(_source("""\
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """), select=["SCAR006"])
        assert _codes(report) == ["SCAR006"]
        assert "re-acquired" in report.findings[0].message

    def test_rlock_reentry_is_quiet(self):
        report = _lint(_source("""\
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """), select=["SCAR006"])
        assert report.clean

    def test_cross_class_cycle_fires(self):
        report = _lint(_source("""\
            import threading

            class Left:
                def __init__(self, right: "Right"):
                    self._llock = threading.Lock()
                    self.right = right

                def go(self):
                    with self._llock:
                        self.right.poke()

            class Right:
                def __init__(self, left: "Left"):
                    self._rlock = threading.Lock()
                    self.left = left

                def poke(self):
                    with self._rlock:
                        pass

                def back(self):
                    with self._rlock:
                        self.left.go()
            """), select=["SCAR006"])
        assert "SCAR006" in _codes(report)
        assert any("cycle" in f.message for f in report.findings)


# ---------------------------------------------------------------------------
# SCAR007: RNG / wall-clock taint flow into engine calls

_SINK = """\
    def run(value):
        return value
    """


class TestTaintFlow:
    def _sink(self) -> SourceFile:
        return _source(_SINK, module="repro.engine.fakekern",
                       path="repro/engine/fakekern.py")

    def test_wall_clock_argument_fires(self):
        report = _lint(self._sink(), _source("""\
            import time
            from repro.engine.fakekern import run

            def kick():
                run(time.time())
            """, module="svc", path="svc.py"), select=["SCAR007"])
        assert _codes(report) == ["SCAR007"]

    def test_taint_through_helper_return_fires(self):
        report = _lint(self._sink(), _source("""\
            import time
            from repro.engine.fakekern import run

            def jitter():
                return time.time()

            def kick():
                run(jitter())
            """, module="svc", path="svc.py"), select=["SCAR007"])
        assert _codes(report) == ["SCAR007"]

    def test_seeded_random_is_clean(self):
        report = _lint(self._sink(), _source("""\
            import random
            from repro.engine.fakekern import run

            def kick():
                rng = random.Random(7)
                run(rng.random())
            """, module="svc", path="svc.py"), select=["SCAR007"])
        assert report.clean

    def test_non_sink_callee_is_quiet(self):
        report = _lint(
            _source(_SINK, module="svc.helpers", path="svc/helpers.py"),
            _source("""\
                import time
                from svc.helpers import run

                def kick():
                    run(time.time())
                """, module="svc.main", path="svc/main.py"),
            select=["SCAR007"])
        assert report.clean

    def test_noqa_suppresses(self):
        report = _lint(self._sink(), _source("""\
            import time
            from repro.engine.fakekern import run

            def kick():
                run(time.time())  # scar: noqa[SCAR007]
            """, module="svc", path="svc.py"), select=["SCAR007"])
        assert report.clean
        assert [f.code for f in report.suppressed] == ["SCAR007"]


# ---------------------------------------------------------------------------
# SCAR008: wire-schema drift against the golden file

_EMITTER = """\
    class Thing:
        def to_dict(self):
            return {"kind": "thing", "alpha": self.alpha,
                    "beta": self.beta}

        @classmethod
        def from_dict(cls, data):
            return cls(alpha=data["alpha"], beta=data["beta"])
    """


def _write_golden(root: Path, kinds: dict) -> None:
    target = root / "analysis" / "schemas.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    document = {"format": 1, "note": "test fixture", "kinds": kinds}
    target.write_text(json.dumps(document, indent=2, sort_keys=True)
                      + "\n", encoding="utf-8")


_THING_GOLDEN = {"thing": {"modules": ["repro.wirefix"],
                           "fields": ["alpha", "beta", "kind"],
                           "parses": ["alpha", "beta"]}}


class TestSchemaDrift:
    def _emitter(self) -> SourceFile:
        return _source(_EMITTER, module="repro.wirefix",
                       path="repro/wirefix.py")

    def test_missing_golden_fires(self, tmp_path):
        report = _lint(self._emitter(), select=["SCAR008"],
                       root=tmp_path)
        assert _codes(report) == ["SCAR008"]
        assert "missing" in report.findings[0].message

    def test_matching_golden_is_quiet(self, tmp_path):
        _write_golden(tmp_path, _THING_GOLDEN)
        report = _lint(self._emitter(), select=["SCAR008"],
                       root=tmp_path)
        assert report.clean

    def test_field_drift_fires(self, tmp_path):
        stale = {"thing": {"modules": ["repro.wirefix"],
                           "fields": ["alpha", "kind"],
                           "parses": ["alpha", "beta"]}}
        _write_golden(tmp_path, stale)
        report = _lint(self._emitter(), select=["SCAR008"],
                       root=tmp_path)
        assert _codes(report) == ["SCAR008"]
        assert "added: beta" in report.findings[0].message

    def test_new_kind_fires(self, tmp_path):
        _write_golden(tmp_path, {})
        report = _lint(self._emitter(), select=["SCAR008"],
                       root=tmp_path)
        assert _codes(report) == ["SCAR008"]
        assert "new wire kind 'thing'" in report.findings[0].message

    def test_stale_kind_fires_when_emitter_module_checked(
            self, tmp_path):
        kinds = dict(_THING_GOLDEN)
        kinds["ghost"] = {"modules": ["repro.wirefix"],
                          "fields": ["kind"], "parses": []}
        _write_golden(tmp_path, kinds)
        report = _lint(self._emitter(), select=["SCAR008"],
                       root=tmp_path)
        assert _codes(report) == ["SCAR008"]
        assert "'ghost'" in report.findings[0].message

    def test_stale_kind_skipped_on_partial_lint(self, tmp_path):
        kinds = dict(_THING_GOLDEN)
        kinds["ghost"] = {"modules": ["repro.elsewhere"],
                          "fields": ["kind"], "parses": []}
        _write_golden(tmp_path, kinds)
        report = _lint(self._emitter(), select=["SCAR008"],
                       root=tmp_path)
        assert report.clean


# ---------------------------------------------------------------------------
# SCAR009: dead exports, unreachable registrations, orphan noqa


class TestDeadSymbols:
    def _tests_stub(self, text: str = "import repro.util\n"
                    ) -> SourceFile:
        return _source(text, module="test_stub",
                       path="tests/test_stub.py")

    def test_dead_export_fires(self):
        report = _lint(_source("""\
            __all__ = ["helper", "unused"]

            def helper():
                return 1

            def unused():
                return 2
            """, module="repro.util", path="repro/util.py"),
            self._tests_stub("from repro.util import helper\n"),
            select=["SCAR009"])
        assert _codes(report) == ["SCAR009"]
        assert "'unused'" in report.findings[0].message

    def test_imported_export_is_quiet(self):
        report = _lint(_source("""\
            __all__ = ["helper"]

            def helper():
                return 1
            """, module="repro.util", path="repro/util.py"),
            self._tests_stub("from repro.util import helper\n"),
            select=["SCAR009"])
        assert report.clean

    def test_reexport_chain_keeps_symbol_alive(self):
        package = _source("""\
            from repro.pkg.impl import helper

            __all__ = ["helper"]
            """, module="repro.pkg", path="repro/pkg/__init__.py")
        impl = _source("""\
            __all__ = ["helper"]

            def helper():
                return 1
            """, module="repro.pkg.impl", path="repro/pkg/impl.py")
        consumer = self._tests_stub(
            "from repro.pkg import helper\n")
        report = _lint(package, impl, consumer, select=["SCAR009"])
        assert report.clean

    def test_without_test_module_liveness_is_skipped(self):
        report = _lint(_source("""\
            __all__ = ["unused"]

            def unused():
                return 2
            """, module="repro.util", path="repro/util.py"),
            select=["SCAR009"])
        assert report.clean

    def test_unreachable_registration_fires(self):
        cli = _source("names = ['baseline']\n", module="repro.cli",
                      path="repro/cli.py")
        plugin = _source("""\
            from repro.registry import register_policy

            @register_policy("ghost")
            class GhostPolicy:
                pass
            """, module="repro.plug", path="repro/plug.py")
        report = _lint(cli, plugin, self._tests_stub(),
                       select=["SCAR009"])
        codes = _codes(report)
        assert "SCAR009" in codes
        assert any("'ghost'" in f.message for f in report.findings)

    def test_registration_named_in_cli_is_quiet(self):
        cli = _source("names = ['ghost']\n", module="repro.cli",
                      path="repro/cli.py")
        plugin = _source("""\
            from repro.registry import register_policy

            @register_policy("ghost")
            class GhostPolicy:
                pass
            """, module="repro.plug", path="repro/plug.py")
        report = _lint(cli, plugin, self._tests_stub(),
                       select=["SCAR009"])
        assert report.clean

    def test_orphan_noqa_fires(self):
        report = _lint(_source("""\
            def plain():  # scar: noqa[SCAR010]
                return 1
            """, module="repro.util", path="repro/util.py"),
            select=["SCAR009", "SCAR010"])
        assert _codes(report) == ["SCAR009"]
        assert "orphan suppression" in report.findings[0].message

    def test_orphan_judgement_needs_all_codes_enabled(self):
        report = _lint(_source("""\
            def plain():  # scar: noqa[SCAR010]
                return 1
            """, module="repro.util", path="repro/util.py"),
            select=["SCAR009"])
        assert report.clean

    def test_working_noqa_is_not_an_orphan(self):
        report = _lint(_source("""\
            import time
            from repro.engine.fakekern import run

            def kick():
                run(time.time())  # scar: noqa[SCAR007]
            """, module="svc", path="svc.py"),
            _source(_SINK, module="repro.engine.fakekern",
                    path="repro/engine/fakekern.py"),
            select=["SCAR007", "SCAR009"])
        assert report.clean


# ---------------------------------------------------------------------------
# SCAR010: hot-path allocation discipline


class TestHotPath:
    def test_dict_display_in_innermost_loop_fires(self):
        report = _lint(_source("""\
            # scar: hot
            def score(rows):
                out = []
                for row in rows:
                    out.append({"row": row})
                return out
            """), select=["SCAR010"])
        assert _codes(report) == ["SCAR010"]
        assert "dict construction" in report.findings[0].message

    def test_without_pragma_is_quiet(self):
        report = _lint(_source("""\
            def score(rows):
                out = []
                for row in rows:
                    out.append({"row": row})
                return out
            """), select=["SCAR010"])
        assert report.clean

    def test_outer_loop_allocations_are_ignored(self):
        report = _lint(_source("""\
            # scar: hot
            def score(grid):
                for row in grid:
                    buckets = {"row": row}
                    while buckets:
                        buckets.popitem()
            """), select=["SCAR010"])
        assert report.clean

    def test_fstring_in_innermost_loop_fires(self):
        report = _lint(_source("""\
            # scar: hot
            def render(rows):
                parts = []
                for row in rows:
                    parts.append(f"row={row}")
                return parts
            """), select=["SCAR010"])
        assert _codes(report) == ["SCAR010"]
        assert "f-string" in report.findings[0].message

    def test_repeated_deep_chain_fires_once(self):
        report = _lint(_source("""\
            # scar: hot
            def total(self_like, rows):
                acc = 0
                for row in rows:
                    acc += self_like.store.data[row]
                    acc -= self_like.store.data[0]
                return acc
            """), select=["SCAR010"])
        assert _codes(report) == ["SCAR010"]
        assert "self_like.store.data" in report.findings[0].message

    def test_hoisted_chain_is_quiet(self):
        report = _lint(_source("""\
            # scar: hot
            def total(self_like, rows):
                data = self_like.store.data
                acc = 0
                for row in rows:
                    acc += data[row]
                    acc -= data[0]
                return acc
            """), select=["SCAR010"])
        assert report.clean

    def test_empty_accumulator_reset_is_allowed(self):
        report = _lint(_source("""\
            # scar: hot
            def drain(rows, flush):
                batch = []
                for row in rows:
                    batch.append(row)
                    if len(batch) > 8:
                        flush(batch)
                        batch = []
            """), select=["SCAR010"])
        assert report.clean

    def test_noqa_suppresses(self):
        report = _lint(_source("""\
            # scar: hot
            def score(rows):
                out = []
                for row in rows:
                    out.append({"row": row})  # scar: noqa[SCAR010]
                return out
            """), select=["SCAR010"])
        assert report.clean
        assert [f.code for f in report.suppressed] == ["SCAR010"]


# ---------------------------------------------------------------------------
# file discovery


class TestIterPythonFiles:
    def _tree(self, tmp_path: Path) -> Path:
        root = tmp_path / "pkg"
        for rel in ("a.py", "sub/b.py", ".venv/lib/x.py",
                    "venv/y.py", "build/z.py", "dist/w.py",
                    ".eggs/e.py", "demo.egg-info/i.py",
                    "sub/__pycache__/c.py", "notes.txt"):
            target = root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text("x = 1\n", encoding="utf-8")
        return root

    def test_skip_dirs_filtered_at_any_depth(self, tmp_path):
        root = self._tree(tmp_path)
        names = [p.name for p in iter_python_files([root])]
        assert names == ["a.py", "b.py"]

    def test_explicit_file_arguments_pass_through(self, tmp_path):
        root = self._tree(tmp_path)
        files = iter_python_files([root / "a.py", root / "sub" / "b.py"])
        assert [p.name for p in files] == ["a.py", "b.py"]

    def test_result_is_sorted_regardless_of_input_order(self, tmp_path):
        root = self._tree(tmp_path)
        forward = iter_python_files([root / "a.py",
                                     root / "sub" / "b.py"])
        backward = iter_python_files([root / "sub" / "b.py",
                                      root / "a.py"])
        assert forward == backward

    def test_symlink_spellings_deduplicate(self, tmp_path):
        root = self._tree(tmp_path)
        link = tmp_path / "alias"
        try:
            os.symlink(root, link)
        except OSError:  # pragma: no cover - platform without symlinks
            pytest.skip("symlinks unavailable")
        files = iter_python_files([root, link])
        assert [p.name for p in files] == ["a.py", "b.py"]


# ---------------------------------------------------------------------------
# incremental cache


class TestLintCache:
    def test_last_record_wins(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        with LintCache(path) as cache:
            cache.record({"path": "a.py", "hash": "old"})
            cache.record({"path": "a.py", "hash": "new"})
        entries = LintCache(path).load()
        assert entries["a.py"]["hash"] == "new"

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        with LintCache(path) as cache:
            cache.record({"path": "a.py", "hash": "ok"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"path": "b.py", "hash": "tor')
        cache = LintCache(path)
        entries = cache.load()
        assert set(entries) == {"a.py"}
        assert cache.corrupt_lines == 1

    def test_foreign_format_records_are_skipped(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"path": "a.py", "format": 999}\n')
        entries = LintCache(path).load()
        assert entries == {}

    def test_missing_file_loads_empty(self, tmp_path):
        assert LintCache(tmp_path / "absent.jsonl").load() == {}


# ---------------------------------------------------------------------------
# lint_paths determinism + incrementality


def _write_tree(tmp_path: Path) -> Path:
    root = tmp_path / "proj"
    pkg = root / "repro"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "alpha.py").write_text(textwrap.dedent("""\
        def helper():
            return 1
        """), encoding="utf-8")
    (pkg / "beta.py").write_text(textwrap.dedent("""\
        from repro.alpha import helper

        def twice():
            return helper() + helper()
        """), encoding="utf-8")
    return root


def _identity(report: LintReport) -> str:
    return json.dumps(strip_nonidentity(report.to_dict()),
                      sort_keys=True)


class TestLintPathsDeterminism:
    def test_report_identical_across_path_order(self, tmp_path):
        root = _write_tree(tmp_path)
        alpha = root / "repro" / "alpha.py"
        beta = root / "repro" / "beta.py"
        forward = lint_paths([alpha, beta], root=root)
        backward = lint_paths([beta, alpha], root=root)
        assert _identity(forward) == _identity(backward)

    def test_report_identical_across_jobs(self, tmp_path):
        root = _write_tree(tmp_path)
        serial = lint_paths([root], root=root, jobs=1)
        fanned = lint_paths([root], root=root, jobs=2)
        assert serial.jobs == 1 and fanned.jobs == 2
        assert _identity(serial) == _identity(fanned)

    def test_report_identical_warm_vs_cold(self, tmp_path):
        root = _write_tree(tmp_path)
        cache = tmp_path / "cache.jsonl"
        cold = lint_paths([root], root=root, cache_path=cache)
        warm = lint_paths([root], root=root, cache_path=cache)
        assert cold.cache_misses == 3 and cold.cache_hits == 0
        assert warm.cache_hits == 3 and warm.cache_misses == 0
        assert _identity(cold) == _identity(warm)

    def test_touch_invalidates_file_and_direct_importers(
            self, tmp_path):
        root = _write_tree(tmp_path)
        cache = tmp_path / "cache.jsonl"
        lint_paths([root], root=root, cache_path=cache)
        alpha = root / "repro" / "alpha.py"
        alpha.write_text(alpha.read_text(encoding="utf-8")
                         + "\nEXTRA = 2\n", encoding="utf-8")
        warm = lint_paths([root], root=root, cache_path=cache)
        # alpha (changed) + beta (direct importer); __init__ untouched.
        assert warm.cache_misses == 2
        assert warm.cache_hits == 1

    def test_report_v2_round_trips(self, tmp_path):
        root = _write_tree(tmp_path)
        report = lint_paths([root], root=root, jobs=1)
        clone = LintReport.from_dict(report.to_dict())
        assert clone.to_dict() == report.to_dict()
        assert clone.jobs == 1
        stripped = strip_nonidentity(report.to_dict())
        assert stripped["jobs"] == 0
        assert stripped["cache"] == {"hits": 0, "misses": 0}
        assert all(v == 0.0 for v in stripped["timings"].values())


# ---------------------------------------------------------------------------
# CLI surface added with the engine


class TestCliEngineFlags:
    def test_output_writes_wire_document(self, tmp_path, capsys):
        root = _write_tree(tmp_path)
        out = tmp_path / "report.json"
        rc = main(["lint", str(root), "--output", str(out)])
        assert rc == 0
        report = LintReport.from_dict(
            json.loads(out.read_text(encoding="utf-8")))
        assert report.clean
        assert "lint report written" in capsys.readouterr().out

    def test_output_write_failure_is_an_error_document(
            self, tmp_path, capsys):
        root = _write_tree(tmp_path)
        rc = main(["lint", str(root), "--format", "json",
                   "--output", str(tmp_path)])  # a directory: OSError
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "error"

    def test_stats_prints_cache_and_timings(self, tmp_path, capsys):
        root = _write_tree(tmp_path)
        rc = main(["lint", str(root), "--stats"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cache:" in out and "jobs: 1" in out
        assert "SCAR006:" in out

    def test_github_format_annotates_findings(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "engine" / "hot.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = random.random()\n",
                       encoding="utf-8")
        rc = main(["lint", str(tmp_path), "--format", "github"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=SCAR002" in out

    def test_jobs_flag_runs_parallel(self, tmp_path, capsys):
        root = _write_tree(tmp_path)
        rc = main(["lint", str(root), "--jobs", "2"])
        assert rc == 0
        assert "0 findings" in capsys.readouterr().out

    def test_cache_flag_warms_across_invocations(self, tmp_path,
                                                 capsys):
        root = _write_tree(tmp_path)
        cache = tmp_path / "cache.jsonl"
        main(["lint", str(root), "--cache", str(cache)])
        rc = main(["lint", str(root), "--cache", str(cache),
                   "--stats"])
        assert rc == 0
        assert "3 hits, 0 misses" in capsys.readouterr().out

    def test_update_schemas_writes_golden_and_passes(
            self, tmp_path, capsys, monkeypatch):
        root = _write_tree(tmp_path)
        wire = root / "repro" / "wire.py"
        wire.write_text(textwrap.dedent("""\
            def to_dict():
                return {"kind": "fixture_doc", "value": 1}
            """), encoding="utf-8")
        monkeypatch.chdir(root)
        rc = main(["lint", str(root), "--select", "SCAR008",
                   "--update-schemas"])
        assert rc == 0
        golden = json.loads((root / "analysis" / "schemas.json")
                            .read_text(encoding="utf-8"))
        assert "fixture_doc" in golden["kinds"]

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.startswith("scar ")
