"""Unit tests for config-file round-trips."""

import pytest

from repro.config import (
    load_json,
    mcm_from_dict,
    mcm_to_dict,
    save_json,
    scenario_from_dict,
    scenario_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.core.schedule import Schedule, Segment, WindowSchedule
from repro.errors import ConfigError
from repro.workloads.scenarios import scenario


class TestMCMRoundTrip:
    def test_round_trip_preserves_everything(self, het_mcm):
        rebuilt = mcm_from_dict(mcm_to_dict(het_mcm))
        assert rebuilt == het_mcm

    def test_triangular_round_trip(self):
        from repro.mcm import templates
        mcm = templates.build("het_t")
        assert mcm_from_dict(mcm_to_dict(mcm)) == mcm

    def test_malformed_rejected(self):
        with pytest.raises(ConfigError):
            mcm_from_dict({"name": "x"})


class TestScenarioRoundTrip:
    def test_zoo_reference_round_trip(self):
        sc = scenario(1)
        rebuilt = scenario_from_dict(scenario_to_dict(sc))
        assert rebuilt.model_names == sc.model_names
        assert rebuilt.total_layers == sc.total_layers
        assert [i.batch for i in rebuilt] == [i.batch for i in sc]

    def test_inline_layers_round_trip(self, tiny_scenario):
        data = scenario_to_dict(tiny_scenario, inline_layers=True)
        rebuilt = scenario_from_dict(data)
        assert rebuilt[0].model.layers == tiny_scenario[0].model.layers

    def test_malformed_rejected(self):
        with pytest.raises(ConfigError):
            scenario_from_dict({"name": "x"})

    def test_unknown_model_is_config_error(self):
        """Regression: the unknown-zoo-model path used to leak a raw
        WorkloadError instead of the malformed-config contract."""
        with pytest.raises(ConfigError, match="mynet"):
            scenario_from_dict({"name": "x", "models": [
                {"model": "mynet", "batch": 1}]})

    @pytest.mark.parametrize("batch", [2.5, True, "3"])
    def test_non_int_batch_is_config_error(self, batch):
        """Float/bool batches must be rejected at the wire boundary."""
        with pytest.raises(ConfigError, match="batch"):
            scenario_from_dict({"name": "x", "models": [
                {"model": "resnet50", "batch": batch}]})

    def test_custom_model_auto_inlines(self, tiny_scenario):
        """Regression: a compact document referencing non-zoo models used
        to be emitted and then fail to load; custom models now inline
        automatically and the round-trip is exact."""
        data = scenario_to_dict(tiny_scenario)
        for entry in data["models"]:
            assert "layers" in entry  # tinyconv/tinygemm are not zoo models
        assert scenario_from_dict(data) == tiny_scenario

    def test_zoo_model_stays_compact(self):
        data = scenario_to_dict(scenario(1))
        assert all("layers" not in entry for entry in data["models"])

    def test_instance_names_round_trip(self):
        from repro.workloads import replicated

        sc = replicated("eyecod", (30, 60, 60), use_case="arvr")
        data = scenario_to_dict(sc)
        names = [entry.get("name") for entry in data["models"]]
        assert names == [None, "eyecod#2", "eyecod#3"]
        rebuilt = scenario_from_dict(data)
        assert rebuilt == sc
        assert rebuilt.model_names == ("eyecod", "eyecod#2", "eyecod#3")


class TestScheduleRoundTrip:
    def test_round_trip(self):
        schedule = Schedule(windows=(
            WindowSchedule(index=0, chains=(
                (Segment(0, 0, 2, node=1), Segment(0, 2, 4, node=2)),
                (Segment(1, 0, 3, node=0),))),
            WindowSchedule(index=1, chains=(
                (Segment(1, 3, 5, node=4),),)),
        ))
        rebuilt = schedule_from_dict(schedule_to_dict(schedule))
        assert rebuilt == schedule

    def test_malformed_rejected(self):
        with pytest.raises(ConfigError):
            schedule_from_dict({})


class TestFileIO:
    def test_save_and_load(self, tmp_path, het_mcm):
        path = tmp_path / "mcm.json"
        save_json(mcm_to_dict(het_mcm), path)
        assert mcm_from_dict(load_json(path)) == het_mcm

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            load_json(tmp_path / "missing.json")

    def test_load_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigError):
            load_json(bad)
