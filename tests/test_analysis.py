"""Tests for the ``scar lint`` static-analysis framework.

Each checker gets three fixture-snippet cases: a seeded violation the
checker must catch (true positive), a conforming snippet it must stay
quiet on (true negative), and a ``# scar: noqa[CODE]``-suppressed
violation.  On top of that a whole-tree smoke test asserts the shipped
``src/`` tree lints clean -- the invariant CI gates on.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Checker,
    Finding,
    LintReport,
    SourceFile,
    build_checkers,
    checker_codes,
    lint_paths,
    module_name_for,
    register_checker,
    run_checkers,
)
from repro.cli import main
from repro.errors import AnalysisError

REPO_ROOT = Path(__file__).resolve().parents[1]

ALL_CODES = ("SCAR001", "SCAR002", "SCAR003", "SCAR004", "SCAR005",
             "SCAR006", "SCAR007", "SCAR008", "SCAR009", "SCAR010")


def _source(text: str, module: str = "fixture",
            path: str = "fixture.py") -> SourceFile:
    return SourceFile(path, textwrap.dedent(text), module=module)


def _lint(*sources: SourceFile, select=None, root=None) -> LintReport:
    return run_checkers(list(sources), select=select,
                        root=root if root is not None else REPO_ROOT)


def _codes(report: LintReport) -> list[str]:
    return [finding.code for finding in report.findings]


# ---------------------------------------------------------------------------
# framework


class TestFramework:
    def test_all_builtin_checkers_registered(self):
        assert checker_codes() == ALL_CODES

    def test_unknown_select_code_rejected(self):
        with pytest.raises(AnalysisError, match="SCAR999"):
            build_checkers(select=["SCAR999"])
        with pytest.raises(AnalysisError, match="SCAR999"):
            build_checkers(ignore=["SCAR999"])

    def test_select_and_ignore_filter(self):
        only = build_checkers(select=["SCAR002"])
        assert [c.code for c in only] == ["SCAR002"]
        rest = build_checkers(ignore=["SCAR002"])
        assert "SCAR002" not in [c.code for c in rest]

    def test_register_checker_rejects_bad_code(self):
        class Nameless(Checker):
            code = "BOGUS1"

        with pytest.raises(AnalysisError, match="SCARnnn"):
            register_checker(Nameless)

    def test_register_checker_rejects_duplicate_code(self):
        class Clash(Checker):
            code = "SCAR001"

        with pytest.raises(AnalysisError, match="already registered"):
            register_checker(Clash)

    def test_module_name_for(self):
        assert module_name_for(
            "src/repro/service/http.py") == "repro.service.http"
        assert module_name_for(
            "src/repro/engine/__init__.py") == "repro.engine"
        assert module_name_for("somewhere/else.py") == "else"

    def test_unparsable_source_is_an_analysis_error(self):
        bad = _source("def broken(:\n")
        with pytest.raises(AnalysisError, match="cannot parse"):
            bad.tree

    def test_missing_path_is_an_analysis_error(self):
        with pytest.raises(AnalysisError, match="no such file"):
            lint_paths(["definitely/not/here"])

    def test_noqa_parses_multiple_codes(self):
        src = _source("x = 1  # scar: noqa[SCAR001, SCAR005]\n")
        assert src.noqa_codes(1) == {"SCAR001", "SCAR005"}
        assert src.noqa_codes(2) == frozenset()

    def test_finding_render_shape(self):
        finding = Finding(code="SCAR001", message="boom",
                          path="a.py", line=3, col=4)
        assert finding.render() == "a.py:3:4: SCAR001 boom"


# ---------------------------------------------------------------------------
# SCAR001: lock discipline

_GUARDED_CLASS = """\
    import threading

    class Svc:
        def __init__(self):
            self._lock = threading.Lock()
            self._jobs = {}  # guarded by: _lock

        def bad(self):
            return len(self._jobs)

        def good(self):
            with self._lock:
                return len(self._jobs)

        def tally_locked(self):
            return len(self._jobs)
"""


class TestLockDiscipline:
    def test_true_positive_unlocked_access(self):
        report = _lint(_source(_GUARDED_CLASS, module="repro.service.x"),
                       select=["SCAR001"])
        assert _codes(report) == ["SCAR001"]
        message = report.findings[0].message
        assert "_jobs" in message and "Svc.bad" in message

    def test_true_negative_with_lock_and_locked_suffix(self):
        clean = _GUARDED_CLASS.replace(
            "        def bad(self):\n"
            "            return len(self._jobs)\n\n", "")
        report = _lint(_source(clean, module="repro.service.x"),
                       select=["SCAR001"])
        assert report.clean

    def test_noqa_suppresses(self):
        noisy = _GUARDED_CLASS.replace(
            "return len(self._jobs)\n\n        def good",
            "return len(self._jobs)  # scar: noqa[SCAR001]\n\n"
            "        def good")
        report = _lint(_source(noisy, module="repro.service.x"),
                       select=["SCAR001"])
        assert report.clean
        assert [f.code for f in report.suppressed] == ["SCAR001"]

    def test_module_guarded_registry(self):
        snippet = """\
            _GUARDED = {"_cache"}

            class Holder:
                def peek(self):
                    return self._cache

                def read(self):
                    with self._lock:
                        return self._cache
        """
        report = _lint(_source(snippet, module="other.module"),
                       select=["SCAR001"])
        assert _codes(report) == ["SCAR001"]
        assert "Holder.peek" in report.findings[0].message

    def test_module_guarded_dict_names_the_lock(self):
        snippet = """\
            _GUARDED = {"_cache": "_mutex"}

            class Holder:
                def wrong_lock(self):
                    with self._lock:
                        return self._cache
        """
        report = _lint(_source(snippet, module="other.module"),
                       select=["SCAR001"])
        assert _codes(report) == ["SCAR001"]
        assert "_mutex" in report.findings[0].message

    def test_closure_does_not_inherit_lock(self):
        snippet = """\
            class Svc:
                def __init__(self):
                    self._jobs = {}  # guarded by: _lock

                def sneaky(self):
                    with self._lock:
                        def later():
                            return self._jobs
                        return later
        """
        report = _lint(_source(snippet, module="repro.service.x"),
                       select=["SCAR001"])
        assert _codes(report) == ["SCAR001"]

    def test_out_of_scope_module_without_guards_is_skipped(self):
        snippet = """\
            class Free:
                def __init__(self):
                    self._jobs = {}

                def touch(self):
                    return self._jobs
        """
        report = _lint(_source(snippet, module="other.module"),
                       select=["SCAR001"])
        assert report.clean


# ---------------------------------------------------------------------------
# SCAR002: determinism

_NONDET = """\
    import random
    import time

    def jitter():
        return random.random() + time.time()

    def walk():
        for item in {"a", "b"}:
            yield item
"""


class TestDeterminism:
    def test_true_positive_each_source(self):
        report = _lint(_source(_NONDET, module="repro.engine.x"),
                       select=["SCAR002"])
        assert _codes(report) == ["SCAR002"] * 3
        rendered = report.render()
        assert "random.random" in rendered
        assert "time.time" in rendered
        assert "set literal" in rendered

    def test_from_imports_flagged(self):
        snippet = """\
            from random import choice
            from time import time
        """
        report = _lint(_source(snippet, module="repro.sweep.x"),
                       select=["SCAR002"])
        assert _codes(report) == ["SCAR002", "SCAR002"]

    def test_datetime_now_flagged(self):
        snippet = """\
            import datetime

            def stamp():
                return datetime.datetime.now()
        """
        report = _lint(
            _source(snippet, module="repro.workloads.generator"),
            select=["SCAR002"])
        assert _codes(report) == ["SCAR002"]

    def test_set_comprehension_iteration_flagged(self):
        snippet = "order = [x for x in {'a', 'b', 'c'}]\n"
        report = _lint(_source(snippet, module="repro.engine.x"),
                       select=["SCAR002"])
        assert _codes(report) == ["SCAR002"]

    def test_true_negative_sanctioned_constructs(self):
        snippet = """\
            import random
            import time

            def seeded(seed):
                rng = random.Random(seed)
                start = time.monotonic()
                for item in sorted({"a", "b"}):
                    rng.shuffle([item])
                return time.perf_counter() - start
        """
        report = _lint(_source(snippet, module="repro.engine.x"),
                       select=["SCAR002"])
        assert report.clean

    def test_out_of_scope_module_exempt(self):
        report = _lint(_source(_NONDET, module="repro.cli"),
                       select=["SCAR002"])
        assert report.clean

    def test_noqa_suppresses(self):
        noisy = _NONDET.replace(
            "return random.random() + time.time()",
            "return random.random() + time.time()"
            "  # scar: noqa[SCAR002]")
        report = _lint(_source(noisy, module="repro.engine.x"),
                       select=["SCAR002"])
        assert _codes(report) == ["SCAR002"]  # only the set literal
        assert len(report.suppressed) == 2


# ---------------------------------------------------------------------------
# SCAR003: wire envelope

_GOOD_DOC = """\
    import json
    from repro.api.wire import check_envelope, loads_document

    class Doc:
        def to_dict(self):
            return {"kind": "doc", "version": 1}

        @classmethod
        def from_dict(cls, data):
            check_envelope(data, "doc")
            return cls()

        def to_json(self):
            return json.dumps(self.to_dict())

        @classmethod
        def from_json(cls, text):
            return cls.from_dict(loads_document(text, "doc"))
"""


class TestWireEnvelope:
    def test_true_negative_conforming_document(self):
        report = _lint(_source(_GOOD_DOC), select=["SCAR003"])
        assert report.clean

    def test_bare_json_loads_flagged(self):
        bad = _GOOD_DOC.replace("loads_document(text, \"doc\")",
                                "json.loads(text)")
        report = _lint(_source(bad), select=["SCAR003"])
        assert _codes(report) == ["SCAR003"]
        assert "json.loads" in report.findings[0].message

    def test_missing_from_dict_flagged(self):
        snippet = """\
            from repro.api.wire import loads_document

            class Doc:
                @classmethod
                def from_json(cls, text):
                    loads_document(text, "doc")
                    return cls()
        """
        report = _lint(_source(snippet), select=["SCAR003"])
        assert _codes(report) == ["SCAR003"]
        assert "no from_dict" in report.findings[0].message

    def test_from_dict_without_check_envelope_flagged(self):
        bad = _GOOD_DOC.replace("check_envelope(data, \"doc\")\n", "")
        report = _lint(_source(bad), select=["SCAR003"])
        assert _codes(report) == ["SCAR003"]
        assert "check_envelope" in report.findings[0].message

    def test_to_dict_without_kind_flagged(self):
        bad = _GOOD_DOC.replace('{"kind": "doc", "version": 1}',
                                '{"version": 1}')
        report = _lint(_source(bad), select=["SCAR003"])
        assert _codes(report) == ["SCAR003"]
        assert "kind" in report.findings[0].message

    def test_nested_payload_without_from_json_exempt(self):
        snippet = """\
            class Point:
                def to_dict(self):
                    return {"x": 1}

                @classmethod
                def from_dict(cls, data):
                    return cls()
        """
        report = _lint(_source(snippet), select=["SCAR003"])
        assert report.clean

    def test_noqa_suppresses(self):
        snippet = """\
            import json
            from repro.api.wire import check_envelope

            class Doc:
                def to_dict(self):
                    return {"kind": "doc"}

                @classmethod
                def from_dict(cls, data):
                    check_envelope(data, "doc")
                    return cls()

                @classmethod
                def from_json(cls, text):
                    data = json.loads(text)  # scar: noqa[SCAR003]
                    return cls.from_dict(data)
        """
        report = _lint(_source(snippet), select=["SCAR003"])
        assert report.clean
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# SCAR004: error-code mapping

_ERRORS_FIXTURE = """\
class ReproError(Exception):
    pass

class ConfigError(ReproError):
    pass

class ServiceError(ReproError):
    pass
"""

_WIRE_FIXTURE = """\
_ERROR_CODES = (
    (ConfigError, "config_error"),
    (ServiceError, "service_error"),
    (ReproError, "repro_error"),
)

_CODE_TO_EXCEPTION = {
    "config_error": ConfigError,
    "service_error": ServiceError,
    "repro_error": ReproError,
}
"""

_HTTP_FIXTURE = """\
def _status_for(exc):
    if isinstance(exc, ConfigError):
        return 400
    return 500

class Handler:
    def fail(self):
        self._send_error_doc(400, "config_error", "bad")
"""


def _errmap_sources(errors=_ERRORS_FIXTURE, wire=_WIRE_FIXTURE,
                    http=_HTTP_FIXTURE):
    return (
        _source(errors, module="repro.errors", path="errors.py"),
        _source(wire, module="repro.api.wire", path="wire.py"),
        _source(http, module="repro.service.http", path="http.py"),
    )


class TestErrorCodeMapping:
    def test_true_negative_closed_mapping(self):
        report = _lint(*_errmap_sources(), select=["SCAR004"])
        assert report.clean

    def test_unmapped_exception_flagged(self):
        errors = _ERRORS_FIXTURE + textwrap.dedent("""\

            class LonelyError(ReproError):
                pass
        """)
        report = _lint(*_errmap_sources(errors=errors),
                       select=["SCAR004"])
        assert _codes(report) == ["SCAR004"]
        assert "LonelyError" in report.findings[0].message

    def test_orphan_code_flagged(self):
        wire = _WIRE_FIXTURE.replace(
            '(ReproError, "repro_error"),',
            '(ReproError, "repro_error"),\n'
            '    (GhostError, "ghost_error"),')
        report = _lint(*_errmap_sources(wire=wire), select=["SCAR004"])
        assert _codes(report) == ["SCAR004"]
        assert "GhostError" in report.findings[0].message

    def test_base_before_derived_flagged(self):
        wire = _WIRE_FIXTURE.replace(
            '    (ConfigError, "config_error"),\n'
            '    (ServiceError, "service_error"),\n'
            '    (ReproError, "repro_error"),',
            '    (ReproError, "repro_error"),\n'
            '    (ConfigError, "config_error"),\n'
            '    (ServiceError, "service_error"),')
        report = _lint(*_errmap_sources(wire=wire), select=["SCAR004"])
        assert _codes(report) == ["SCAR004", "SCAR004"]
        assert "shadowed" in report.findings[0].message

    def test_reverse_map_to_unknown_class_flagged(self):
        wire = _WIRE_FIXTURE.replace(
            '"repro_error": ReproError,',
            '"repro_error": ReproError,\n    "odd": NotAClass,')
        report = _lint(*_errmap_sources(wire=wire), select=["SCAR004"])
        assert _codes(report) == ["SCAR004"]
        assert "NotAClass" in report.findings[0].message

    def test_http_unresolvable_code_flagged(self):
        http = _HTTP_FIXTURE.replace('"config_error"', '"mystery_code"')
        report = _lint(*_errmap_sources(http=http), select=["SCAR004"])
        assert _codes(report) == ["SCAR004"]
        assert "mystery_code" in report.findings[0].message

    def test_status_for_unknown_class_flagged(self):
        http = _HTTP_FIXTURE.replace("ConfigError", "MadeUpError")
        report = _lint(*_errmap_sources(http=http), select=["SCAR004"])
        assert _codes(report) == ["SCAR004"]
        assert "MadeUpError" in report.findings[0].message

    def test_skipped_when_wire_module_absent(self):
        errors = _ERRORS_FIXTURE + textwrap.dedent("""\

            class LonelyError(ReproError):
                pass
        """)
        report = _lint(
            _source(errors, module="repro.errors", path="errors.py"),
            select=["SCAR004"])
        assert report.clean

    def test_noqa_suppresses(self):
        wire = _WIRE_FIXTURE.replace(
            '(ReproError, "repro_error"),',
            '(ReproError, "repro_error"),\n'
            '    (GhostError, "ghost_error"),  # scar: noqa[SCAR004]')
        report = _lint(*_errmap_sources(wire=wire), select=["SCAR004"])
        assert report.clean
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# SCAR005: registry drift

_REGISTRATION = """\
    @register_policy("fancy")
    class FancyPolicy:
        pass
"""

_CLI_WITH_CHOICES = """\
    def build_parser():
        choices = DEFAULT_REGISTRY.names()
        return choices
"""


class TestRegistryDrift:
    def _run(self, tmp_path, *, registration=_REGISTRATION,
             cli=_CLI_WITH_CHOICES, docs="the fancy policy"):
        if docs is not None:
            (tmp_path / "README.md").write_text(docs, encoding="utf-8")
        sources = [
            _source(registration, module="repro.api.policies",
                    path="policies.py"),
        ]
        if cli is not None:
            sources.append(_source(cli, module="repro.cli",
                                   path="cli.py"))
        return _lint(*sources, select=["SCAR005"], root=tmp_path)

    def test_true_negative_reachable_and_documented(self, tmp_path):
        assert self._run(tmp_path).clean

    def test_undocumented_name_flagged(self, tmp_path):
        report = self._run(tmp_path, docs="no mention here")
        assert _codes(report) == ["SCAR005"]
        assert "'fancy'" in report.findings[0].message
        assert "README" in report.findings[0].message

    def test_word_boundary_match(self, tmp_path):
        # "fancyful" must not count as documenting "fancy".
        report = self._run(tmp_path, docs="a fancyful aside")
        assert _codes(report) == ["SCAR005"]

    def test_cli_without_choices_expr_flagged(self, tmp_path):
        report = self._run(
            tmp_path, cli="def build_parser():\n    return None\n")
        assert _codes(report) == ["SCAR005"]
        assert "not reachable from the CLI" in \
            report.findings[0].message

    def test_skipped_without_cli_or_docs(self, tmp_path):
        assert self._run(tmp_path, cli=None, docs=None).clean

    def test_noqa_suppresses(self, tmp_path):
        registration = _REGISTRATION.replace(
            '@register_policy("fancy")',
            '@register_policy("fancy")  # scar: noqa[SCAR005]')
        report = self._run(tmp_path, registration=registration,
                           docs="undocumented on purpose")
        assert report.clean
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# whole-tree smoke + CLI


class TestWholeTree:
    def test_src_tree_is_clean(self):
        report = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        assert report.clean, report.render()
        assert report.checked_files > 50
        # The acceptance bar: SCAR001..SCAR004 hold with zero
        # suppressions anywhere in the shipped tree.
        gated = [f for f in report.suppressed if f.code != "SCAR005"]
        assert gated == []

    def test_report_counts_and_summary(self):
        finding = Finding(code="SCAR002", message="m", path="p.py",
                          line=1)
        report = LintReport(findings=(finding, finding),
                            checked_files=3,
                            codes=("SCAR002",))
        assert report.counts() == {"SCAR002": 2}
        assert report.summary_line() == \
            "2 findings (2 SCAR002) in 3 files; 0 suppressed"


class TestCliLint:
    def test_clean_tree_exits_zero(self, capsys):
        rc = main(["lint", str(REPO_ROOT / "src"), "--select",
                   "SCAR001,SCAR002"])
        assert rc == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "engine" / "hot.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = random.random()\n",
                       encoding="utf-8")
        rc = main(["lint", str(tmp_path)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "SCAR002" in out

    def test_json_format_is_a_wire_document(self, capsys):
        rc = main(["lint", str(REPO_ROOT / "src" / "repro" /
                               "analysis"), "--format", "json"])
        assert rc == 0
        report = LintReport.from_json(capsys.readouterr().out)
        assert report.clean
        assert report.codes == ALL_CODES

    def test_unknown_code_exits_two(self, capsys):
        rc = main(["lint", "--select", "SCAR999"])
        assert rc == 2
        assert "SCAR999" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        rc = main(["lint", "no/such/dir"])
        assert rc == 2
