"""Shared helpers for the repro.service test suites.

One definition of the parity contract and the event-gated test policy,
imported by both ``test_service_scheduler.py`` (in-process) and
``test_service_http.py`` (over a live server), so the two suites cannot
drift apart.
"""

from __future__ import annotations

import threading

from repro.api import PolicyOutcome, ScheduleRequest, SchedulerRegistry
from repro.core.baselines import StandaloneScheduler

#: Every built-in policy; the parity suites run all of them.
POLICIES = ("standalone", "nn_baton", "scar", "evolutionary")


def request_for(tiny_scenario, small_budget, policy,
                **overrides) -> ScheduleRequest:
    """A quick request over the tiny fixture workload."""
    overrides.setdefault("template", "het_sides_3x3")
    return ScheduleRequest.for_scenario(
        tiny_scenario, policy=policy, budget=small_budget, nsplits=1,
        **overrides)


def replicated_request(small_budget, policy="scar",
                       **overrides) -> ScheduleRequest:
    """A quick multi-tenant request: two tenants of one zoo model.

    The generated-workload shape (``model#k`` instance names, see
    :func:`repro.workloads.replicated`), so the parity suites also
    cover scenarios the Table III set cannot express."""
    from repro.workloads import replicated

    overrides.setdefault("template", "het_sides_3x3")
    return ScheduleRequest.for_scenario(
        replicated("eyecod", (30, 60), use_case="arvr"), policy=policy,
        budget=small_budget, nsplits=1, **overrides)


def assert_equivalent(a, b):
    """Result equality minus ``raw`` and the nondeterministic perf wall
    times — the service determinism contract.  The granular asserts give
    readable failures; the final ``same_payload`` check keeps this
    helper honest if the contract ever gains a field."""
    assert a.request == b.request
    assert a.schedule == b.schedule
    assert a.metrics == b.metrics
    assert a.window_candidates == b.window_candidates
    assert a.num_evaluated == b.num_evaluated
    assert a.same_payload(b)


def gated_registry():
    """A registry whose 'gated' policy blocks until released.

    Returns ``(registry, started, release, order)``: ``started`` fires
    when a run enters the policy, ``release`` lets runs proceed, and
    ``order`` logs each run's ``prov_limit`` so tests can observe
    execution order.  Makes queue occupancy deterministic for
    cancellation/priority tests.
    """
    started = threading.Event()
    release = threading.Event()
    order: list[int] = []
    registry = SchedulerRegistry()

    @registry.register("gated")
    def _gated(ctx):
        order.append(ctx.request.prov_limit)
        started.set()
        assert release.wait(timeout=60)
        outcome = StandaloneScheduler(ctx.mcm, ctx.database) \
            .schedule(ctx.scenario)
        return PolicyOutcome(schedule=outcome.schedule,
                             metrics=outcome.metrics)

    return registry, started, release, order
