"""Unit tests for schedule analysis (breakdowns and Gantt rendering)."""

import pytest

from repro.core.analysis import analyze_schedule, gantt
from repro.core.metrics import ScheduleEvaluator
from repro.core.schedule import Schedule, Segment, WindowSchedule


@pytest.fixture
def evaluator(tiny_scenario, het_mcm, database):
    return ScheduleEvaluator(tiny_scenario, het_mcm, database)


@pytest.fixture
def schedule():
    return Schedule(windows=(
        WindowSchedule(index=0, chains=(
            (Segment(0, 0, 2, node=1), Segment(0, 2, 4, node=4)),
            (Segment(1, 0, 3, node=0),))),
    ))


class TestAnalysis:
    def test_traffic_breakdown_accounts_weights(self, schedule,
                                                tiny_scenario, evaluator):
        report = analyze_schedule(schedule, tiny_scenario, evaluator)
        expected_weights = sum(inst.model.total_weight_bytes
                               for inst in tiny_scenario)
        assert report.traffic.offchip_weight_bytes \
            == pytest.approx(expected_weights)

    def test_nop_traffic_only_for_split_chains(self, tiny_scenario,
                                               evaluator):
        unsplit = Schedule(windows=(WindowSchedule(index=0, chains=(
            (Segment(0, 0, 4, node=1),),
            (Segment(1, 0, 3, node=0),))),))
        report = analyze_schedule(unsplit, tiny_scenario, evaluator)
        assert report.traffic.nop_bytes == 0.0
        assert 0.0 <= report.traffic.on_package_fraction <= 1.0

    def test_split_chain_has_nop_traffic(self, schedule, tiny_scenario,
                                         evaluator):
        report = analyze_schedule(schedule, tiny_scenario, evaluator)
        boundary = tiny_scenario[0].layer(1)  # layer 1 output crosses
        assert report.traffic.nop_bytes \
            == pytest.approx(boundary.output_bytes)

    def test_utilization_covers_all_chiplets(self, schedule,
                                             tiny_scenario, evaluator):
        report = analyze_schedule(schedule, tiny_scenario, evaluator)
        assert len(report.utilization) == evaluator.mcm.num_chiplets
        used = {u.node for u in report.utilization if u.windows_active}
        assert used == {0, 1, 4}
        idle = [u for u in report.utilization if not u.windows_active]
        assert all(u.busy_s == 0.0 for u in idle)

    def test_energy_split_sums_to_total(self, schedule, tiny_scenario,
                                        evaluator):
        report = analyze_schedule(schedule, tiny_scenario, evaluator)
        assert report.compute_energy_j > 0
        assert report.comm_energy_j >= 0
        assert report.compute_energy_j + report.comm_energy_j \
            <= report.metrics.energy_j * 1.001

    def test_mean_busy_fraction_bounded(self, schedule, tiny_scenario,
                                        evaluator):
        report = analyze_schedule(schedule, tiny_scenario, evaluator)
        assert 0.0 < report.mean_busy_fraction

    def test_render(self, schedule, tiny_scenario, evaluator):
        text = analyze_schedule(schedule, tiny_scenario,
                                evaluator).render()
        assert "on-package" in text and "busy" in text


class TestGantt:
    def test_rows_per_chiplet(self, schedule, tiny_scenario, evaluator):
        chart = gantt(schedule, tiny_scenario, evaluator)
        lines = chart.splitlines()
        assert len(lines) == evaluator.mcm.num_chiplets + 1  # + legend

    def test_markers_match_models(self, schedule, tiny_scenario,
                                  evaluator):
        chart = gantt(schedule, tiny_scenario, evaluator)
        lines = chart.splitlines()
        assert "t" in lines[1]  # tinyconv on c1
        assert "t" in lines[0]  # tinygemm on c0 (both start with 't')
        assert "legend" in lines[-1]

    def test_idle_chiplets_dotted(self, schedule, tiny_scenario,
                                  evaluator):
        chart = gantt(schedule, tiny_scenario, evaluator)
        # Node 8 hosts nothing.
        row8 = chart.splitlines()[8]
        assert set(row8.split("|")[1]) == {"."}
