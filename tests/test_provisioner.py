"""Unit tests for the PROV engine (Eq. 2 and exhaustive compositions)."""

import pytest

from repro.core.packing import WindowAssignment
from repro.core.provisioner import exhaustive_allocations, uniform_allocation
from repro.errors import SchedulingError


def _window(*ranges):
    return WindowAssignment(index=0, ranges=ranges)


class TestUniformRule:
    def test_proportional_split(self):
        window = _window((0, 0, 10), (1, 0, 10))
        alloc = uniform_allocation(window, {0: 3.0, 1: 1.0}, 8)
        assert alloc == {0: 6, 1: 2}

    def test_every_model_gets_at_least_one(self):
        window = _window((0, 0, 10), (1, 0, 10))
        alloc = uniform_allocation(window, {0: 100.0, 1: 0.001}, 9)
        assert alloc[1] >= 1

    def test_allocation_capped_by_layer_count(self):
        window = _window((0, 0, 2), (1, 0, 10))
        alloc = uniform_allocation(window, {0: 10.0, 1: 1.0}, 9)
        assert alloc[0] <= 2

    def test_heuristic2_cap(self):
        window = _window((0, 0, 20), (1, 0, 20))
        alloc = uniform_allocation(window, {0: 1.0, 1: 1.0}, 9,
                                   max_nodes_per_model=2)
        assert all(v <= 2 for v in alloc.values())

    def test_total_never_exceeds_chiplets(self):
        window = _window((0, 0, 9), (1, 0, 9), (2, 0, 9))
        for shares in ({0: 1, 1: 1, 2: 1}, {0: 5, 1: 3, 2: 1}):
            alloc = uniform_allocation(window, shares, 9)
            assert sum(alloc.values()) <= 9

    def test_zero_shares_fall_back_to_one_each(self):
        window = _window((0, 0, 5), (1, 0, 5))
        alloc = uniform_allocation(window, {0: 0.0, 1: 0.0}, 9)
        assert alloc == {0: 1, 1: 1}

    def test_too_many_models_rejected(self):
        window = _window((0, 0, 5), (1, 0, 5), (2, 0, 5))
        with pytest.raises(SchedulingError):
            uniform_allocation(window, {0: 1, 1: 1, 2: 1}, 2)


class TestExhaustive:
    def test_all_compositions_valid(self):
        window = _window((0, 0, 5), (1, 0, 5))
        allocations = list(exhaustive_allocations(window, 4))
        assert allocations  # non-empty
        for alloc in allocations:
            assert all(v >= 1 for v in alloc.values())
            assert sum(alloc.values()) <= 4

    def test_covers_full_composition_count(self):
        window = _window((0, 0, 9), (1, 0, 9))
        # compositions with n0, n1 >= 1 and n0+n1 <= 4:
        # (1,1)(1,2)(1,3)(2,1)(2,2)(3,1) = 6
        assert len(list(exhaustive_allocations(window, 4))) == 6

    def test_limit_respected(self):
        window = _window((0, 0, 9), (1, 0, 9))
        assert len(list(exhaustive_allocations(window, 9, limit=3))) == 3

    def test_caps_respected(self):
        window = _window((0, 0, 2), (1, 0, 9))
        for alloc in exhaustive_allocations(window, 9,
                                            max_nodes_per_model=3):
            assert alloc[0] <= 2
            assert alloc[1] <= 3

    def test_uniform_is_within_exhaustive_space(self):
        window = _window((0, 0, 9), (1, 0, 9))
        uniform = uniform_allocation(window, {0: 2.0, 1: 1.0}, 6)
        space = list(exhaustive_allocations(window, 6))
        assert uniform in space
