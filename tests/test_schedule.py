"""Unit tests for the schedule IR and Theorem 1/2 validation."""

import pytest

from repro.core.schedule import Schedule, Segment, WindowSchedule
from repro.errors import SchedulingError, ValidationError
from repro.workloads.layer import conv
from repro.workloads.model import Model, ModelInstance, Scenario


@pytest.fixture
def two_model_scenario():
    def make(name, n):
        return Model(name=name, layers=tuple(
            conv(f"l{i}", c=4, k=4, y=4, x=4) for i in range(n)))
    return Scenario(name="s", instances=(
        ModelInstance(make("a", 4)), ModelInstance(make("b", 2))))


class TestSegment:
    def test_basic_properties(self):
        seg = Segment(model=0, start=2, stop=5, node=3)
        assert seg.num_layers == 3
        assert list(seg.layer_indices()) == [2, 3, 4]

    def test_empty_range_rejected(self):
        with pytest.raises(SchedulingError):
            Segment(model=0, start=3, stop=3)

    def test_negative_model_rejected(self):
        with pytest.raises(SchedulingError):
            Segment(model=-1, start=0, stop=1)

    def test_placed(self):
        seg = Segment(model=0, start=0, stop=1)
        assert seg.node is None
        assert seg.placed(4).node == 4


class TestWindowSchedule:
    def test_chain_contiguity_enforced(self):
        with pytest.raises(ValidationError):
            WindowSchedule(index=0, chains=((
                Segment(0, 0, 2, node=0), Segment(0, 3, 4, node=1)),))

    def test_chain_single_model_enforced(self):
        with pytest.raises(SchedulingError):
            WindowSchedule(index=0, chains=((
                Segment(0, 0, 2, node=0), Segment(1, 2, 3, node=1)),))

    def test_empty_chain_rejected(self):
        with pytest.raises(SchedulingError):
            WindowSchedule(index=0, chains=((),))

    def test_accessors(self):
        window = WindowSchedule(index=0, chains=(
            (Segment(0, 0, 2, node=0), Segment(0, 2, 4, node=1)),
            (Segment(1, 0, 2, node=5),),
        ))
        assert window.models == (0, 1)
        assert window.layer_range(0) == (0, 4)
        assert window.nodes_used() == (0, 1, 5)
        assert window.total_layers == 6
        assert len(window.chain_for(1)) == 1
        with pytest.raises(SchedulingError):
            window.chain_for(2)


class TestScheduleValidation:
    def _full_schedule(self):
        return Schedule(windows=(
            WindowSchedule(index=0, chains=(
                (Segment(0, 0, 2, node=0),),
                (Segment(1, 0, 2, node=1),),
            )),
            WindowSchedule(index=1, chains=(
                (Segment(0, 2, 4, node=0),),
            )),
        ))

    def test_valid_schedule_passes(self, two_model_scenario):
        self._full_schedule().validate(two_model_scenario)

    def test_window_indices_must_be_sequential(self):
        with pytest.raises(SchedulingError):
            Schedule(windows=(
                WindowSchedule(index=1, chains=((Segment(0, 0, 1, 0),),)),
            ))

    def test_empty_schedule_rejected(self):
        with pytest.raises(SchedulingError):
            Schedule(windows=())

    def test_coverage_gap_detected(self, two_model_scenario):
        schedule = Schedule(windows=(
            WindowSchedule(index=0, chains=(
                (Segment(0, 0, 3, node=0),),
                (Segment(1, 0, 2, node=1),),
            )),
        ))
        with pytest.raises(ValidationError, match="Theorem 2"):
            schedule.validate(two_model_scenario)

    def test_out_of_order_windows_detected(self, two_model_scenario):
        schedule = Schedule(windows=(
            WindowSchedule(index=0, chains=(
                (Segment(0, 2, 4, node=0),),
                (Segment(1, 0, 2, node=1),),
            )),
            WindowSchedule(index=1, chains=((Segment(0, 0, 2, node=0),),)),
        ))
        with pytest.raises(ValidationError):
            schedule.validate(two_model_scenario)

    def test_node_exclusivity_within_window(self, two_model_scenario):
        schedule = Schedule(windows=(
            WindowSchedule(index=0, chains=(
                (Segment(0, 0, 4, node=0),),
                (Segment(1, 0, 2, node=0),),
            )),
        ))
        with pytest.raises(ValidationError, match="shared"):
            schedule.validate(two_model_scenario)

    def test_unknown_model_detected(self, two_model_scenario):
        schedule = Schedule(windows=(
            WindowSchedule(index=0, chains=((Segment(5, 0, 1, node=0),),)),
        ))
        with pytest.raises(ValidationError):
            schedule.validate(two_model_scenario)

    def test_describe_mentions_models(self, two_model_scenario):
        text = self._full_schedule().describe(two_model_scenario)
        assert "a" in text and "window 1" in text
