"""Unit tests for the evolutionary SEG search (Sec. V-D)."""

import random

import pytest

from repro.core.budget import SearchBudget
from repro.core.evolutionary import (
    EvolutionarySegSearch,
    GAConfig,
    _mutate_cuts,
    _random_cuts,
)
from repro.core.metrics import ScheduleEvaluator
from repro.core.packing import WindowAssignment
from repro.core.scoring import edp_objective


@pytest.fixture
def window():
    return WindowAssignment(index=0, ranges=((0, 0, 4), (1, 0, 3)))


@pytest.fixture
def search(window, tiny_scenario, het_mcm, database, small_budget):
    evaluator = ScheduleEvaluator(tiny_scenario, het_mcm, database)
    return EvolutionarySegSearch(
        window, {0: 2, 1: 2}, evaluator, edp_objective(), small_budget,
        config=GAConfig(population_size=4, generations=2))


class TestGeneOperators:
    def test_random_cuts_valid(self):
        rng = random.Random(0)
        for _ in range(50):
            cuts = _random_cuts(rng, 5, 15, max_segments=4)
            assert len(cuts) <= 3
            assert all(5 < c < 15 for c in cuts)
            assert list(cuts) == sorted(set(cuts))

    def test_random_cuts_single_layer(self):
        assert _random_cuts(random.Random(0), 3, 4, 4) == ()

    def test_mutation_stays_valid(self):
        rng = random.Random(1)
        cuts = (7,)
        for _ in range(50):
            cuts = _mutate_cuts(rng, cuts, 5, 10, max_segments=3)
            assert len(cuts) <= 2
            assert all(5 < c < 10 for c in cuts)
            assert list(cuts) == sorted(set(cuts))

    def test_mutation_no_legal_move_is_identity(self):
        # Single layer: no positions, no cuts -> unchanged.
        assert _mutate_cuts(random.Random(0), (), 0, 1, 1) == ()


class TestGA:
    def test_run_returns_feasible_candidate(self, search, tiny_scenario):
        best = search.run()
        assert best.score > 0
        best.window.chain_for(0)
        best.window.chain_for(1)

    def test_run_deterministic(self, window, tiny_scenario, het_mcm,
                               database, small_budget):
        def run_once():
            evaluator = ScheduleEvaluator(tiny_scenario, het_mcm, database)
            return EvolutionarySegSearch(
                window, {0: 2, 1: 2}, evaluator, edp_objective(),
                small_budget,
                config=GAConfig(population_size=4, generations=1)).run()
        assert run_once().score == pytest.approx(run_once().score)

    def test_evaluated_population_collected(self, search):
        search.run()
        assert len(search.evaluated) >= 1

    def test_seeds_enter_initial_population(self, window, tiny_scenario,
                                            het_mcm, database,
                                            small_budget):
        evaluator = ScheduleEvaluator(tiny_scenario, het_mcm, database)
        search = EvolutionarySegSearch(
            window, {0: 2, 1: 2}, evaluator, edp_objective(), small_budget,
            config=GAConfig(population_size=4, generations=0),
            seeds={0: [(2,)], 1: [()]})
        population = search._initial_population()
        assert population[0] == {0: (2,), 1: ()}

    def test_respects_alloc_bounds(self, search):
        best = search.run()
        for chain in best.window.chains:
            assert len(chain) <= 2

    def test_fitness_memo_reports_hits(self, search):
        search.run()
        stats = search.evaluator.cache.stats["fitness"]
        assert stats.lookups >= 4  # at least one full population scored
        assert stats.misses >= 1

    def test_fitness_budget_uses_slice_helper(self, search, small_budget):
        evals = 4 * (2 + 1)  # population_size * (generations + 1)
        assert search._fitness_budget == small_budget.fitness_slice(evals)


class TestSchedulerReproducibility:
    """Same SearchBudget.seed => identical search outcome, even parallel."""

    def _schedule(self, scenario, mcm, seed, jobs=1):
        from repro.core.scar import SCARScheduler
        budget = SearchBudget(top_k_segmentations=2,
                              max_segment_candidates=16,
                              max_root_combos=4, max_paths_per_model=4,
                              max_candidates_per_window=40, seed=seed)
        return SCARScheduler(mcm, nsplits=1, budget=budget,
                             seg_search="evolutionary",
                             jobs=jobs).schedule(scenario)

    def test_same_seed_identical_runs(self, tiny_scenario, het_mcm):
        a = self._schedule(tiny_scenario, het_mcm, seed=3)
        b = self._schedule(tiny_scenario, het_mcm, seed=3)
        assert a.num_evaluated == b.num_evaluated
        assert a.schedule == b.schedule
        assert a.metrics == b.metrics

    def test_same_seed_identical_under_jobs(self, tiny_scenario, het_mcm):
        serial = self._schedule(tiny_scenario, het_mcm, seed=3)
        parallel = self._schedule(tiny_scenario, het_mcm, seed=3, jobs=2)
        assert serial.num_evaluated == parallel.num_evaluated
        assert serial.schedule == parallel.schedule
        assert serial.metrics == parallel.metrics

    def test_different_seed_may_differ_but_is_valid(self, tiny_scenario,
                                                    het_mcm):
        result = self._schedule(tiny_scenario, het_mcm, seed=11)
        result.schedule.validate(tiny_scenario)
