"""Unit tests for Algorithm 1 (greedy layer packing) and window plans."""

import pytest

from repro.core.packing import (
    PackingPlan,
    WindowAssignment,
    expected_layer_energies,
    expected_layer_latencies,
    greedy_pack,
    uniform_pack,
)
from repro.dataflow.database import LayerCostDatabase
from repro.errors import SchedulingError


class TestExpectedCosts:
    def test_expectation_weighted_by_composition(
            self, tiny_scenario, het_mcm, database):
        expected = expected_layer_latencies(tiny_scenario, het_mcm,
                                            database)
        classes = {c.dataflow: c for c in het_mcm.chiplet_classes()}
        layer = tiny_scenario[0].layer(0)
        manual = (6 / 9) * database.latency_s(layer, classes["nvdla"]) \
            + (3 / 9) * database.latency_s(layer, classes["shidiannao"])
        assert expected[0][0] == pytest.approx(manual)

    def test_homogeneous_expectation_is_plain_latency(
            self, tiny_scenario, nvd_mcm, database):
        expected = expected_layer_latencies(tiny_scenario, nvd_mcm,
                                            database)
        layer = tiny_scenario[1].layer(2)
        assert expected[1][2] == pytest.approx(
            database.latency_s(layer, nvd_mcm.chiplet(0)))

    def test_energy_expectation_positive(self, tiny_scenario, het_mcm,
                                         database):
        expected = expected_layer_energies(tiny_scenario, het_mcm, database)
        assert all(v > 0 for row in expected for v in row)


class TestGreedyPack:
    def _expected(self, scenario, mcm, database):
        return expected_layer_latencies(scenario, mcm, database)

    def test_plan_is_valid_partition(self, tiny_scenario, het_mcm,
                                     database):
        expected = self._expected(tiny_scenario, het_mcm, database)
        for nsplits in (0, 1, 2, 3):
            plan = greedy_pack(tiny_scenario, expected, nsplits)
            plan.validate(tiny_scenario)
            assert plan.num_windows <= nsplits + 1

    def test_nsplits_zero_single_window(self, tiny_scenario, het_mcm,
                                        database):
        expected = self._expected(tiny_scenario, het_mcm, database)
        plan = greedy_pack(tiny_scenario, expected, 0)
        assert plan.num_windows == 1
        assert plan.windows[0].total_layers == tiny_scenario.total_layers

    def test_negative_nsplits_rejected(self, tiny_scenario, het_mcm,
                                       database):
        expected = self._expected(tiny_scenario, het_mcm, database)
        with pytest.raises(SchedulingError):
            greedy_pack(tiny_scenario, expected, -1)

    def test_cheap_model_finishes_early(self):
        """A model far cheaper than the horizon lands in early windows."""
        from repro.workloads.layer import conv
        from repro.workloads.model import Model, ModelInstance, Scenario
        big = Model(name="big", layers=tuple(
            conv(f"b{i}", c=64, k=64, y=64, x=64) for i in range(8)))
        small = Model(name="small", layers=tuple(
            conv(f"s{i}", c=4, k=4, y=4, x=4) for i in range(4)))
        sc = Scenario(name="s", instances=(
            ModelInstance(big, 1), ModelInstance(small, 1)))
        # Simple synthetic expectations: big layers 1.0, small 0.001.
        expected = [[1.0] * 8, [0.001] * 4]
        plan = greedy_pack(sc, expected, 3)
        first = plan.windows[0]
        assert first.range_for(1) == (0, 4)  # whole small model in W0

    def test_deferred_layer_moves_to_next_window(self):
        from repro.workloads.layer import conv
        from repro.workloads.model import Model, ModelInstance, Scenario
        model = Model(name="m", layers=tuple(
            conv(f"l{i}", c=4, k=4, y=4, x=4) for i in range(4)))
        sc = Scenario(name="s", instances=(ModelInstance(model, 1),))
        # Horizon = 4.0, 2 windows of 2.0 each: layers 0.9+0.9 fit W0,
        # then 1.5 exceeds remaining slack and defers.
        expected = [[0.9, 0.9, 1.5, 0.7]]
        plan = greedy_pack(sc, expected, 1)
        assert plan.windows[0].range_for(0) == (0, 2)
        assert plan.windows[1].range_for(0) == (2, 4)


class TestUniformPack:
    def test_equal_layer_counts(self, tiny_scenario):
        plan = uniform_pack(tiny_scenario, 1)
        plan.validate(tiny_scenario)
        w0 = plan.windows[0].range_for(0)
        w1 = plan.windows[1].range_for(0)
        assert (w0[1] - w0[0]) == 2 and (w1[1] - w1[0]) == 2

    def test_remainder_goes_to_early_windows(self, tiny_scenario):
        plan = uniform_pack(tiny_scenario, 2)  # 4 layers over 3 windows
        sizes = [plan.windows[i].range_for(0) for i in range(3)]
        counts = [s[1] - s[0] for s in sizes]
        assert counts == [2, 1, 1]

    def test_more_windows_than_layers(self, tiny_scenario):
        plan = uniform_pack(tiny_scenario, 9)
        plan.validate(tiny_scenario)


class TestWindowAssignment:
    def test_range_lookup(self):
        window = WindowAssignment(index=0, ranges=((0, 0, 3), (2, 1, 4)))
        assert window.range_for(0) == (0, 3)
        assert window.range_for(2) == (1, 4)
        assert window.range_for(1) is None
        assert window.models == (0, 2)
        assert window.total_layers == 6

    def test_plan_validation_catches_gap(self, tiny_scenario):
        plan = PackingPlan(windows=(
            WindowAssignment(index=0, ranges=((0, 0, 4), (1, 1, 3))),))
        with pytest.raises(SchedulingError):
            plan.validate(tiny_scenario)
