"""Integration tests for the SCAR scheduler facade."""

import pytest

from repro.core.budget import SearchBudget
from repro.core.scar import SCARScheduler
from repro.core.scoring import edp_objective, latency_objective
from repro.errors import SearchError


@pytest.fixture
def budget():
    return SearchBudget(top_k_segmentations=2, max_segment_candidates=16,
                        max_root_combos=4, max_paths_per_model=4,
                        max_candidates_per_window=48, seed=0)


class TestSchedulerBasics:
    def test_produces_valid_schedule(self, tiny_scenario, het_mcm, budget):
        result = SCARScheduler(het_mcm, nsplits=1,
                               budget=budget).schedule(tiny_scenario)
        result.schedule.validate(tiny_scenario)
        assert result.metrics.latency_s > 0
        assert result.num_evaluated > 0

    def test_invalid_modes_rejected(self, het_mcm):
        with pytest.raises(SearchError):
            SCARScheduler(het_mcm, packing="magic")
        with pytest.raises(SearchError):
            SCARScheduler(het_mcm, provisioning="magic")
        with pytest.raises(SearchError):
            SCARScheduler(het_mcm, seg_search="magic")

    def test_deterministic(self, tiny_scenario, het_mcm, budget):
        a = SCARScheduler(het_mcm, nsplits=1,
                          budget=budget).schedule(tiny_scenario)
        b = SCARScheduler(het_mcm, nsplits=1,
                          budget=budget).schedule(tiny_scenario)
        assert a.metrics.edp == pytest.approx(b.metrics.edp)
        assert a.schedule == b.schedule

    def test_nsplits_zero_single_window(self, tiny_scenario, het_mcm,
                                        budget):
        result = SCARScheduler(het_mcm, nsplits=0,
                               budget=budget).schedule(tiny_scenario)
        assert result.schedule.num_windows == 1

    def test_candidate_points_nonempty(self, tiny_scenario, het_mcm,
                                       budget):
        result = SCARScheduler(het_mcm, nsplits=1,
                               budget=budget).schedule(tiny_scenario)
        points = result.candidate_points()
        assert points
        assert all(lat > 0 and en > 0 for lat, en in points)

    def test_objective_latency_no_worse_than_edp_on_latency(
            self, tiny_scenario, het_mcm, budget):
        lat = SCARScheduler(het_mcm, nsplits=1, budget=budget,
                            objective=latency_objective()) \
            .schedule(tiny_scenario)
        edp = SCARScheduler(het_mcm, nsplits=1, budget=budget,
                            objective=edp_objective()) \
            .schedule(tiny_scenario)
        assert lat.metrics.latency_s <= edp.metrics.latency_s * 1.05


class TestSchedulerModes:
    def test_uniform_packing_mode(self, tiny_scenario, het_mcm, budget):
        result = SCARScheduler(het_mcm, nsplits=1, budget=budget,
                               packing="uniform").schedule(tiny_scenario)
        result.schedule.validate(tiny_scenario)

    def test_exhaustive_provisioning(self, tiny_scenario, het_mcm, budget):
        uniform = SCARScheduler(het_mcm, nsplits=0, budget=budget) \
            .schedule(tiny_scenario)
        exhaustive = SCARScheduler(het_mcm, nsplits=0, budget=budget,
                                   provisioning="exhaustive",
                                   prov_limit=12).schedule(tiny_scenario)
        exhaustive.schedule.validate(tiny_scenario)
        # Exhaustive explores a superset of allocations, so with the same
        # per-allocation budget it should not be significantly worse.
        assert exhaustive.metrics.edp <= uniform.metrics.edp * 1.5

    def test_heuristic2_cap(self, tiny_scenario, het_mcm, budget):
        result = SCARScheduler(het_mcm, nsplits=0, budget=budget,
                               max_nodes_per_model=1) \
            .schedule(tiny_scenario)
        for window in result.schedule.windows:
            for chain in window.chains:
                assert len(chain) == 1

    def test_evolutionary_seg_search(self, tiny_scenario, het_mcm, budget):
        from repro.core.evolutionary import GAConfig
        result = SCARScheduler(
            het_mcm, nsplits=0, budget=budget, seg_search="evolutionary",
            ga_config=GAConfig(population_size=4, generations=1)) \
            .schedule(tiny_scenario)
        result.schedule.validate(tiny_scenario)


class TestParallelSearch:
    """jobs>1 must be bit-identical to the serial path."""

    def test_invalid_jobs_rejected(self, het_mcm):
        with pytest.raises(SearchError):
            SCARScheduler(het_mcm, jobs=0)

    def test_jobs2_bit_identical(self, tiny_scenario, het_mcm, budget):
        serial = SCARScheduler(het_mcm, nsplits=1, budget=budget) \
            .schedule(tiny_scenario)
        parallel = SCARScheduler(het_mcm, nsplits=1, budget=budget,
                                 jobs=2).schedule(tiny_scenario)
        assert parallel.metrics == serial.metrics
        assert parallel.schedule == serial.schedule
        assert parallel.num_evaluated == serial.num_evaluated
        assert parallel.window_candidates == serial.window_candidates

    def test_jobs2_exhaustive_prov_bit_identical(self, tiny_scenario,
                                                 het_mcm, budget):
        kwargs = dict(nsplits=1, budget=budget,
                      provisioning="exhaustive", prov_limit=12)
        serial = SCARScheduler(het_mcm, **kwargs).schedule(tiny_scenario)
        parallel = SCARScheduler(het_mcm, jobs=3, **kwargs) \
            .schedule(tiny_scenario)
        assert parallel.metrics == serial.metrics
        assert parallel.schedule == serial.schedule
        assert parallel.num_evaluated == serial.num_evaluated

    def test_perf_report_attached(self, tiny_scenario, het_mcm, budget):
        result = SCARScheduler(het_mcm, nsplits=1, budget=budget,
                               jobs=2).schedule(tiny_scenario)
        assert result.perf is not None
        assert result.perf.jobs == 2
        assert result.perf.num_evaluated == result.num_evaluated
        assert result.perf.wall_s > 0
        compute = result.perf.cache_table("compute")
        assert compute.lookups > 0
        # The whole point of the cache: repeated sub-chains hit.
        assert compute.hit_rate > 0.5


class TestHeterogeneityExploitation:
    def test_het_beats_worst_homogeneous(self, tiny_scenario, budget):
        """SCAR on het hardware must beat the worse homogeneous option."""
        from repro.mcm import templates
        results = {}
        for name in ("simba_nvd_3x3", "simba_shi_3x3", "het_sides_3x3"):
            mcm = templates.build(name)
            results[name] = SCARScheduler(mcm, nsplits=1, budget=budget) \
                .schedule(tiny_scenario).metrics.edp
        worst_homog = max(results["simba_nvd_3x3"],
                          results["simba_shi_3x3"])
        assert results["het_sides_3x3"] < worst_homog

    def test_affine_placement_on_het(self, tiny_scenario, het_mcm, budget):
        """The GEMM model's layers should land on NVDLA chiplets."""
        result = SCARScheduler(het_mcm, nsplits=0,
                               budget=budget).schedule(tiny_scenario)
        nvd_nodes = set(het_mcm.nodes_with_dataflow("nvdla"))
        gemm_nodes = {seg.node for w in result.schedule.windows
                      for chain in w.chains for seg in chain
                      if seg.model == 1}
        assert gemm_nodes <= nvd_nodes
