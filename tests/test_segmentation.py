"""Unit tests for the SEG engine (Heuristic 1 and candidates)."""

import math

import pytest

from repro.core.budget import SearchBudget
from repro.core.segmentation import (
    enumerate_cut_candidates,
    proxy_pipeline_score,
    rank_segmentations,
    segments_from_cuts,
)
from repro.errors import SearchError


BUDGET = SearchBudget(top_k_segmentations=3, max_segment_candidates=64,
                      seed=0)


class TestSegmentsFromCuts:
    def test_no_cuts(self):
        assert segments_from_cuts(0, 5, ()) == ((0, 5),)

    def test_two_cuts(self):
        assert segments_from_cuts(0, 6, (2, 4)) \
            == ((0, 2), (2, 4), (4, 6))

    def test_offset_range(self):
        assert segments_from_cuts(10, 14, (12,)) == ((10, 12), (12, 14))


class TestCandidateEnumeration:
    def test_always_contains_no_cut(self):
        candidates = enumerate_cut_candidates(0, 8, 3, [1.0] * 8, BUDGET)
        assert () in candidates

    def test_exhaustive_when_small(self):
        candidates = enumerate_cut_candidates(0, 5, 2, [1.0] * 5, BUDGET)
        # 1 (no cut) + C(4,1) single-cut options
        assert len(candidates) == 1 + 4

    def test_respects_budget_cap(self):
        tight = SearchBudget(top_k_segmentations=3,
                             max_segment_candidates=10, seed=0)
        candidates = enumerate_cut_candidates(0, 30, 5, [1.0] * 30, tight)
        assert len(candidates) <= 10

    def test_cuts_inside_range_and_sorted(self):
        candidates = enumerate_cut_candidates(10, 20, 4, [1.0] * 10, BUDGET)
        for cuts in candidates:
            assert all(10 < c < 20 for c in cuts)
            assert list(cuts) == sorted(set(cuts))

    def test_max_segments_respected(self):
        candidates = enumerate_cut_candidates(0, 10, 3, [1.0] * 10, BUDGET)
        assert all(len(cuts) <= 2 for cuts in candidates)

    def test_empty_range_rejected(self):
        with pytest.raises(SearchError):
            enumerate_cut_candidates(5, 5, 2, [], BUDGET)

    def test_single_layer_only_no_cut(self):
        assert enumerate_cut_candidates(0, 1, 3, [1.0], BUDGET) == [()]

    def test_balanced_candidate_balances_weight(self):
        weights = [1.0, 1.0, 1.0, 1.0, 4.0, 4.0]
        candidates = enumerate_cut_candidates(0, 6, 2, weights, BUDGET)
        two_seg = [c for c in candidates if len(c) == 1]
        # The balanced candidate is generated first among 2-segment cuts
        # and splits near the weight midpoint (total 12 -> cut at 4.. or 5).
        assert two_seg[0][0] in (4, 5)


class TestProxyScore:
    def test_no_cut_score_is_serial_latency(self):
        expected = [1.0, 2.0, 3.0]
        score = proxy_pipeline_score(0, 3, (), expected, batch=1,
                                     boundary_bytes=[0.0] * 3,
                                     nop_gbps=100.0)
        assert score == pytest.approx(6.0)

    def test_batched_pipeline_prefers_balanced_cut(self):
        expected = [1.0] * 4
        balanced = proxy_pipeline_score(0, 4, (2,), expected, batch=8,
                                        boundary_bytes=[0.0] * 4,
                                        nop_gbps=100.0)
        skewed = proxy_pipeline_score(0, 4, (1,), expected, batch=8,
                                      boundary_bytes=[0.0] * 4,
                                      nop_gbps=100.0)
        assert balanced < skewed

    def test_comm_penalty_discourages_cuts(self):
        expected = [1.0] * 4
        heavy_boundary = [1e12] * 4
        cut = proxy_pipeline_score(0, 4, (2,), expected, batch=4,
                                   boundary_bytes=heavy_boundary,
                                   nop_gbps=100.0)
        no_cut = proxy_pipeline_score(0, 4, (), expected, batch=4,
                                      boundary_bytes=heavy_boundary,
                                      nop_gbps=100.0)
        assert no_cut < cut


class TestRanking:
    def test_returns_top_k(self):
        ranked = rank_segmentations(0, 10, 4, [1.0] * 10, batch=4,
                                    boundary_bytes=[10.0] * 10,
                                    nop_gbps=100.0, budget=BUDGET)
        assert len(ranked) == BUDGET.top_k_segmentations
        scores = [r.score for r in ranked]
        assert scores == sorted(scores)

    def test_batched_model_top_candidate_is_multi_segment(self):
        ranked = rank_segmentations(0, 8, 4, [1.0] * 8, batch=16,
                                    boundary_bytes=[1.0] * 8,
                                    nop_gbps=100.0, budget=BUDGET)
        assert len(ranked[0].cuts) >= 1

    def test_deterministic(self):
        args = dict(start=0, stop=12, max_segments=3,
                    per_layer_expected_s=[1.0] * 12, batch=2,
                    boundary_bytes=[5.0] * 12, nop_gbps=100.0,
                    budget=BUDGET)
        first = rank_segmentations(**args)
        second = rank_segmentations(**args)
        assert [r.cuts for r in first] == [r.cuts for r in second]
