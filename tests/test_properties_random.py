"""Seeded stdlib-``random`` property tests for packing/segmentation/cache.

Complements the hypothesis suite in ``test_properties.py`` with
plain-``random`` randomized invariants (no extra dependencies, fully
deterministic under the fixed seeds):

* greedy/uniform packing assigns every layer of every model to exactly
  one window, with windows contiguous and ordered;
* ``segments_from_cuts`` partitions ``[start, stop)`` exactly;
* a cached and an uncached evaluator agree bit-for-bit on hundreds of
  randomized window schedules (the evalcache correctness property);
* the delta-costing :class:`repro.engine.CandidateEvaluator` agrees
  bit-for-bit with full re-evaluation over long randomized cut-mutation
  walks (the delta-evaluation correctness property).
"""

from __future__ import annotations

import random

from repro.core.evalcache import EvalCache
from repro.core.metrics import ScheduleEvaluator
from repro.core.packing import greedy_pack, uniform_pack
from repro.core.schedule import Segment, WindowSchedule
from repro.core.segmentation import segments_from_cuts
from repro.engine import CandidateEvaluator
from repro.workloads.layer import conv
from repro.workloads.model import Model, ModelInstance, Scenario


def _random_scenario(rng: random.Random) -> Scenario:
    instances = []
    for m in range(rng.randint(1, 4)):
        layers = tuple(
            conv(f"l{m}_{j}", c=rng.randint(1, 8), k=rng.randint(1, 8),
                 y=4, x=4, r=3)
            for j in range(rng.randint(1, 12)))
        instances.append(ModelInstance(Model(name=f"m{m}", layers=layers),
                                       rng.randint(1, 4)))
    return Scenario(name="rand", instances=tuple(instances))


class TestPackingInvariants:
    def test_every_layer_in_exactly_one_window(self):
        rng = random.Random(12345)
        for _ in range(50):
            scenario = _random_scenario(rng)
            nsplits = rng.randint(0, 5)
            if rng.random() < 0.5:
                expected = [[rng.uniform(0.01, 10.0)
                             for _ in instance.layers()]
                            for instance in scenario]
                plan = greedy_pack(scenario, expected, nsplits)
            else:
                plan = uniform_pack(scenario, nsplits)

            seen: dict[int, list[int]] = {
                m: [] for m in range(len(scenario))}
            for window in plan.windows:
                for model, start, stop in window.ranges:
                    seen[model].extend(range(start, stop))
            for model, layers in seen.items():
                # Exactly once, in order, covering the whole model.
                assert layers == list(
                    range(scenario[model].num_layers))

    def test_windows_contiguous_and_ordered(self):
        rng = random.Random(999)
        for _ in range(50):
            scenario = _random_scenario(rng)
            expected = [[rng.uniform(0.01, 10.0)
                         for _ in instance.layers()]
                        for instance in scenario]
            plan = greedy_pack(scenario, expected, rng.randint(0, 5))
            assert [w.index for w in plan.windows] \
                == list(range(plan.num_windows))
            cursors = [0] * len(scenario)
            for window in plan.windows:
                for model, start, stop in window.ranges:
                    assert start == cursors[model]
                    assert stop > start
                    cursors[model] = stop


class TestSegmentsFromCuts:
    def test_exact_partition(self):
        rng = random.Random(4242)
        for _ in range(300):
            start = rng.randint(0, 40)
            stop = start + rng.randint(1, 30)
            positions = list(range(start + 1, stop))
            rng.shuffle(positions)
            cuts = tuple(sorted(
                positions[:rng.randint(0, len(positions))]))
            ranges = segments_from_cuts(start, stop, cuts)
            # Reassembling the sub-ranges gives back [start, stop).
            covered = [i for s, e in ranges for i in range(s, e)]
            assert covered == list(range(start, stop))
            assert all(e > s for s, e in ranges)
            assert len(ranges) == len(cuts) + 1


class TestCachedVsUncached:
    def _random_window(self, rng: random.Random, scenario: Scenario,
                       num_nodes: int) -> WindowSchedule:
        node_pool = list(range(num_nodes))
        rng.shuffle(node_pool)
        chains = []
        for model, instance in enumerate(scenario):
            stop = instance.num_layers
            positions = list(range(1, stop))
            rng.shuffle(positions)
            max_cuts = min(len(positions), 2)
            cuts = sorted(positions[:rng.randint(0, max_cuts)])
            bounds = [0, *cuts, stop]
            chain = tuple(
                Segment(model=model, start=bounds[i], stop=bounds[i + 1],
                        node=node_pool.pop())
                for i in range(len(bounds) - 1))
            chains.append(chain)
        return WindowSchedule(index=0, chains=tuple(chains))

    def test_cache_agrees_on_200_random_schedules(self, tiny_scenario,
                                                  het_mcm, database):
        cached = ScheduleEvaluator(tiny_scenario, het_mcm, database,
                                   cache=EvalCache())
        uncached = ScheduleEvaluator(tiny_scenario, het_mcm, database,
                                     cache=EvalCache(enabled=False))
        rng = random.Random(7)
        for _ in range(200):
            window = self._random_window(rng, tiny_scenario,
                                         het_mcm.num_chiplets)
            assert cached.evaluate_window(window) \
                == uncached.evaluate_window(window)
        # The shared cache must actually have been exercised.
        stats = cached.cache.stats
        assert stats["compute"].hits > 0
        assert stats["static"].hits > 0
        assert uncached.cache.stats["compute"].hits == 0


class TestDeltaEvaluationParity:
    """Incremental re-costing == full re-evaluation, bit for bit.

    Walks a GA-like mutation chain: each step re-cuts *one* model of the
    previous window (the exact move the delta-evaluation fast path
    targets) and occasionally re-places chains entirely.  At every step
    the delta evaluator must agree with a from-scratch evaluator, and
    over the whole walk the chain memo must have actually saved work.
    """

    def _mutate(self, rng: random.Random, scenario: Scenario,
                window: WindowSchedule, num_nodes: int) -> WindowSchedule:
        chains = list(window.chains)
        model = rng.randrange(len(chains))
        stop = scenario[model].num_layers
        positions = list(range(1, stop))
        rng.shuffle(positions)
        cuts = sorted(positions[:rng.randint(0, min(len(positions), 2))])
        bounds = [0, *cuts, stop]
        # Nodes not used by the *other* chains are free for this one.
        taken = {seg.node for i, chain in enumerate(chains)
                 for seg in chain if i != model}
        free = [n for n in range(num_nodes) if n not in taken]
        rng.shuffle(free)
        chains[model] = tuple(
            Segment(model=model, start=bounds[i], stop=bounds[i + 1],
                    node=free[i])
            for i in range(len(bounds) - 1))
        return WindowSchedule(index=0, chains=tuple(chains))

    def test_mutation_walk_agrees_bit_for_bit(self, tiny_scenario,
                                              het_mcm, database):
        delta = CandidateEvaluator(tiny_scenario, het_mcm, database)
        full = CandidateEvaluator(tiny_scenario, het_mcm, database,
                                  cache=EvalCache(enabled=False),
                                  delta=False)
        rng = random.Random(31337)
        window = TestCachedVsUncached()._random_window(
            rng, tiny_scenario, het_mcm.num_chiplets)
        for _ in range(150):
            window = self._mutate(rng, tiny_scenario, window,
                                  het_mcm.num_chiplets)
            assert delta.evaluate_window(window) \
                == full.evaluate_window(window)
        # Full evaluation re-costs every segment every time ...
        assert full.stats.num_segments_recosted == full.stats.num_segments
        # ... while the mutation walk must have let the delta evaluator
        # reuse unchanged sibling chains.
        assert delta.stats.num_segments_recosted \
            < delta.stats.num_segments
        assert delta.cache.stats["chain"].hits > 0


class TestGeneratorProperties:
    """Randomized determinism/round-trip invariants of the scenario
    generator: same seed => identical scenario, tenant-unique instance
    names, exact wire round-trip, pools respected."""

    def test_random_mix_determinism_and_roundtrip(self):
        from repro.config import scenario_from_dict, scenario_to_dict
        from repro.workloads.generator import random_mix
        from repro.workloads.scenarios import (
            use_case_batches,
            use_case_models,
        )

        rng = random.Random(1234)
        for _ in range(50):
            seed = rng.randrange(10 ** 6)
            tenants = rng.randint(1, 8)
            use_case = rng.choice(["datacenter", "arvr"])
            a = random_mix(seed, tenants=tenants, use_case=use_case)
            assert a == random_mix(seed, tenants=tenants,
                                   use_case=use_case)
            assert scenario_from_dict(scenario_to_dict(a)) == a
            assert len(set(a.model_names)) == tenants
            models = set(use_case_models(use_case))
            batches = set(use_case_batches(use_case))
            for inst in a:
                assert inst.model.name in models
                assert inst.batch in batches

    def test_replicated_roundtrip(self):
        from repro.config import scenario_from_dict, scenario_to_dict
        from repro.workloads.generator import replicated
        from repro.workloads.scenarios import use_case_models

        rng = random.Random(99)
        for _ in range(25):
            use_case = rng.choice(["datacenter", "arvr"])
            model = rng.choice(use_case_models(use_case))
            batches = tuple(rng.randint(1, 64)
                            for _ in range(rng.randint(1, 6)))
            sc = replicated(model, batches, use_case=use_case)
            assert sc == replicated(model, batches, use_case=use_case)
            assert scenario_from_dict(scenario_to_dict(sc)) == sc
            assert len(set(sc.model_names)) == len(batches)
