"""Unit tests for optimization objectives (Definition 10)."""

import pytest

from repro.core.scoring import (
    Objective,
    OptTarget,
    edp_objective,
    energy_objective,
    latency_objective,
    objective_by_name,
)
from repro.errors import SearchError


class TestBuiltins:
    def test_latency(self):
        assert latency_objective().score_values(2.0, 5.0) == 2.0

    def test_energy(self):
        assert energy_objective().score_values(2.0, 5.0) == 5.0

    def test_edp(self):
        assert edp_objective().score_values(2.0, 5.0) == 10.0

    def test_names(self):
        assert latency_objective().name == "latency"
        assert edp_objective().name == "edp"

    def test_by_name(self):
        assert objective_by_name("energy").target is OptTarget.ENERGY
        with pytest.raises(SearchError):
            objective_by_name("power")


class TestCustomAndBounds:
    def test_custom_metric(self):
        obj = Objective(custom=lambda lat, en: lat + 10 * en)
        assert obj.score_values(1.0, 2.0) == 21.0
        assert obj.name == "custom"

    def test_latency_bound_invalidates(self):
        """Sec. VI: EDP search lower-bounded by a latency constraint."""
        obj = Objective(target=OptTarget.EDP, latency_bound_s=1.0)
        assert obj.score_values(0.5, 2.0) == 1.0
        assert obj.score_values(1.5, 0.1) == float("inf")

    def test_score_schedule_metrics(self, tiny_scenario, het_mcm,
                                    database):
        from repro.core.metrics import ScheduleEvaluator
        from repro.core.schedule import Schedule, Segment, WindowSchedule
        schedule = Schedule(windows=(WindowSchedule(index=0, chains=(
            (Segment(0, 0, 4, node=0),),
            (Segment(1, 0, 3, node=2),))),))
        metrics = ScheduleEvaluator(tiny_scenario, het_mcm,
                                    database).evaluate(schedule)
        assert edp_objective().score(metrics) == pytest.approx(metrics.edp)
        assert edp_objective().score_window(metrics.windows[0]) \
            == pytest.approx(metrics.windows[0].latency_s
                             * metrics.windows[0].energy_j)
