"""Unit tests for the unified search-engine layer (:mod:`repro.engine`).

Covers the four engine pieces the schedulers now share: the
delta-costing :class:`CandidateEvaluator`, the :class:`WindowSearch`
strategy (beam knob), the pluggable execution backends and the
provisioning/candidate plumbing -- plus the LRU bound on
:class:`EvalCache` and the request/session threading of the new knobs.
"""

from __future__ import annotations

import pytest

from repro.api import ScheduleRequest, Session
from repro.core.evalcache import EvalCache
from repro.core.metrics import ScheduleEvaluator
from repro.core.packing import WindowAssignment
from repro.core.provisioner import uniform_allocation
from repro.core.scar import SCARScheduler
from repro.core.schedule import Segment, WindowSchedule
from repro.core.scoring import edp_objective
from repro.core.sched_engine import search_window
from repro.core.segmentation import RankedSegmentation
from repro.engine import (
    CandidateEvaluator,
    EvaluatorStats,
    ProcessBackend,
    SerialBackend,
    WindowSearch,
    assemble_candidate_points,
    backend_names,
    chain_delta_key,
    register_backend,
    resolve_backend,
    window_allocations,
    window_shares,
)
from repro.errors import ConfigError, SearchError


@pytest.fixture
def window():
    return WindowAssignment(index=0, ranges=((0, 0, 4), (1, 0, 3)))


def _ranked(cuts_by_model):
    return {m: [RankedSegmentation(cuts=c, score=float(i))
                for i, c in enumerate(cuts)]
            for m, cuts in cuts_by_model.items()}


def _window_schedule(cuts0, nodes0, node1):
    """Two-chain window: model 0 split at ``cuts0``, model 1 unsplit."""
    bounds = [0, *cuts0, 4]
    chain0 = tuple(
        Segment(model=0, start=bounds[i], stop=bounds[i + 1],
                node=nodes0[i])
        for i in range(len(bounds) - 1))
    return WindowSchedule(index=0, chains=(
        chain0, (Segment(model=1, start=0, stop=3, node=node1),)))


class TestCandidateEvaluator:
    def test_is_a_schedule_evaluator(self, tiny_scenario, het_mcm,
                                     database):
        evaluator = CandidateEvaluator(tiny_scenario, het_mcm, database)
        assert isinstance(evaluator, ScheduleEvaluator)

    def test_matches_plain_evaluator_bit_for_bit(self, tiny_scenario,
                                                 het_mcm, database):
        plain = ScheduleEvaluator(tiny_scenario, het_mcm, database)
        delta = CandidateEvaluator(tiny_scenario, het_mcm, database)
        for cuts, nodes in (((), (0,)),
                            ((2,), (0, 3)), ((1,), (3, 6)),
                            ((1, 2), (0, 3, 6))):
            ws = _window_schedule(cuts, nodes, 2)
            assert delta.evaluate_window(ws) == plain.evaluate_window(ws)

    def test_unchanged_chain_is_not_recosted(self, tiny_scenario,
                                             het_mcm, database):
        """Moving model 0's cut must not re-cost model 1's chain."""
        evaluator = CandidateEvaluator(tiny_scenario, het_mcm, database)
        evaluator.evaluate_window(_window_schedule((2,), (0, 3), 2))
        first = evaluator.stats.num_segments_recosted
        assert first == evaluator.stats.num_segments == 3
        # Same placement, different cut for model 0: chain 0 re-costs,
        # chain 1 (identical structure, no congestion change on its
        # links) is served from the chain memo.
        evaluator.evaluate_window(_window_schedule((1,), (0, 3), 2))
        assert evaluator.stats.num_segments == 6
        assert evaluator.stats.num_segments_recosted == first + 2
        assert evaluator.cache.stats["chain"].hits == 1

    def test_window_memo_hits_do_not_count_segments(self, tiny_scenario,
                                                    het_mcm, database):
        evaluator = CandidateEvaluator(tiny_scenario, het_mcm, database)
        ws = _window_schedule((2,), (0, 3), 2)
        evaluator.evaluate_window(ws)
        seen = evaluator.stats.num_segments
        evaluator.evaluate_window(ws)  # whole-window memo hit
        assert evaluator.stats.num_segments == seen

    def test_delta_off_recosts_everything(self, tiny_scenario, het_mcm,
                                          database):
        evaluator = CandidateEvaluator(tiny_scenario, het_mcm, database,
                                       delta=False)
        evaluator.evaluate_window(_window_schedule((2,), (0, 3), 2))
        evaluator.evaluate_window(_window_schedule((1,), (0, 3), 2))
        assert evaluator.stats.num_segments_recosted \
            == evaluator.stats.num_segments == 6
        assert "chain" not in evaluator.cache.stats

    def test_disabled_cache_still_bit_identical(self, tiny_scenario,
                                                het_mcm, database):
        cached = CandidateEvaluator(tiny_scenario, het_mcm, database)
        uncached = CandidateEvaluator(tiny_scenario, het_mcm, database,
                                      cache=EvalCache(enabled=False))
        ws = _window_schedule((1, 2), (0, 3, 6), 2)
        assert cached.evaluate_window(ws) == uncached.evaluate_window(ws)

    def test_stats_delta_and_merge(self):
        stats = EvaluatorStats(num_segments=10, num_segments_recosted=4)
        before = stats.snapshot()
        stats.num_segments += 5
        stats.num_segments_recosted += 1
        delta = stats.delta(before)
        assert delta == EvaluatorStats(5, 1)
        merged = EvaluatorStats()
        merged.merge(delta)
        merged.merge(delta)
        assert merged == EvaluatorStats(10, 2)
        assert stats.reuse_rate == pytest.approx(1 - 5 / 15)
        assert EvaluatorStats().reuse_rate == 0.0


class TestChainDeltaKey:
    def test_distinguishes_placement_and_cuts(self):
        congestion: dict[tuple, float] = {}
        a = chain_delta_key((Segment(0, 0, 2, node=0),), congestion)
        b = chain_delta_key((Segment(0, 0, 2, node=1),), congestion)
        c = chain_delta_key((Segment(0, 0, 3, node=0),), congestion)
        assert len({a, b, c}) == 3
        assert a == chain_delta_key((Segment(0, 0, 2, node=0),), {})

    def test_reads_only_own_congestion(self):
        chain = (Segment(0, 0, 2, node=0), Segment(0, 2, 4, node=1))
        base = chain_delta_key(chain, {})
        # A factor on an unrelated link must not change the key ...
        assert base == chain_delta_key(chain, {(2, 5): 3.0})
        # ... while factors on the chain's own links must.
        assert base != chain_delta_key(chain, {(0, 1): 2.0})
        assert base != chain_delta_key(chain, {(None, 0): 2.0})
        assert base != chain_delta_key(chain, {(1, None): 2.0})


class TestWindowSearch:
    def test_default_is_exhaustive_and_bit_identical(
            self, window, tiny_scenario, het_mcm, database, small_budget):
        evaluator = CandidateEvaluator(tiny_scenario, het_mcm, database)
        ranked = _ranked({0: [(), (2,)], 1: [(), (1,)]})
        strategy = WindowSearch()
        assert strategy.exhaustive
        collected_a: list = []
        collected_b: list = []
        a = strategy.run(window, ranked, evaluator, edp_objective(),
                         small_budget, collect=collected_a)
        b = search_window(window, ranked, evaluator, edp_objective(),
                          small_budget, collect=collected_b)
        assert a == b
        assert collected_a == collected_b

    def test_beam_prunes_segmentation_combos(
            self, window, tiny_scenario, het_mcm, database, small_budget):
        evaluator = CandidateEvaluator(tiny_scenario, het_mcm, database)
        ranked = _ranked({0: [(), (2,)], 1: [(), (1,)]})
        collected: list = []
        best = WindowSearch(beam=1).run(window, ranked, evaluator,
                                        edp_objective(), small_budget,
                                        collect=collected)
        assert best.score == min(c.score for c in collected)
        # Only the best proxy-scored combo survives: every evaluated
        # candidate uses the rank-0 cuts of both models (no cuts).
        for candidate in collected:
            assert all(len(chain) == 1
                       for chain in candidate.window.chains)

    def test_beam_validation(self):
        with pytest.raises(SearchError):
            WindowSearch(beam=0)
        with pytest.raises(SearchError):
            search_window(None, {}, None, None, None, beam=-1)


class TestBackends:
    def test_resolution_infers_from_jobs(self):
        assert isinstance(resolve_backend(None, 1), SerialBackend)
        process = resolve_backend(None, 4)
        assert isinstance(process, ProcessBackend)
        assert process.jobs == 4
        assert isinstance(resolve_backend("serial", 8), SerialBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SearchError, match="unknown execution backend"):
            resolve_backend("gpu", 1)

    def test_builtin_names_registered(self):
        assert set(backend_names()) >= {"serial", "process"}

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SearchError):
            register_backend("serial")(lambda jobs: SerialBackend())

    def test_process_backend_bit_identical_to_serial(
            self, tiny_scenario, het_mcm, small_budget):
        serial = SCARScheduler(het_mcm, nsplits=1, budget=small_budget,
                               backend="serial").schedule(tiny_scenario)
        pooled = SCARScheduler(het_mcm, nsplits=1, budget=small_budget,
                               backend="process",
                               jobs=2).schedule(tiny_scenario)
        assert pooled.metrics == serial.metrics
        assert pooled.schedule == serial.schedule
        assert pooled.num_evaluated == serial.num_evaluated
        # Worker delta counters merged back (perf is informational and,
        # like cache hit counts, not bit-pinned across backends: the
        # parent re-evaluates the winning windows itself in pooled mode).
        assert pooled.perf.num_segments > 0
        assert 0 < pooled.perf.num_segments_recosted \
            <= pooled.perf.num_segments

    def test_scheduler_rejects_unknown_backend(self, het_mcm):
        with pytest.raises(SearchError):
            SCARScheduler(het_mcm, backend="quantum")

    def test_perf_reports_backend_parallelism_not_configured_jobs(
            self, tiny_scenario, het_mcm, small_budget):
        """An explicit serial backend overriding jobs=N reports jobs=1."""
        result = SCARScheduler(het_mcm, nsplits=1, budget=small_budget,
                               backend="serial",
                               jobs=8).schedule(tiny_scenario)
        assert result.perf.jobs == 1
        pooled = SCARScheduler(het_mcm, nsplits=1, budget=small_budget,
                               jobs=2).schedule(tiny_scenario)
        assert pooled.perf.jobs == 2


class TestProvisioningPlumbing:
    def test_uniform_mode_matches_core_rule(self, window):
        shares = {0: 2.0, 1: 1.0}
        allocations = window_allocations(window, shares, mode="uniform",
                                         num_chiplets=9)
        assert allocations == [uniform_allocation(window, shares, 9)]

    def test_exhaustive_mode_enumerates_with_limit(self, window):
        allocations = window_allocations(window, {}, mode="exhaustive",
                                         num_chiplets=4, limit=3)
        assert len(allocations) == 3
        assert all(sum(a.values()) <= 4 for a in allocations)

    def test_unknown_mode_rejected(self, window):
        with pytest.raises(SearchError, match="provisioning"):
            window_allocations(window, {}, mode="magic", num_chiplets=9)

    def test_shares_strip_latency_bound(self, window, tiny_scenario):
        from dataclasses import replace

        expected = [[1.0] * 4, [1.0] * 3]
        bounded = replace(edp_objective(), latency_bound_s=1e-9)
        shares = window_shares(bounded, window, expected, expected)
        # Without the strip, every share would be inf.
        assert all(s != float("inf") for s in shares.values())


class TestCandidatePoints:
    def test_fallback_when_no_population(self):
        assert assemble_candidate_points((), fallback=(1.0, 2.0)) \
            == [(1.0, 2.0)]

    def test_wire_and_core_flavours_agree(self):
        from repro.api.wire import CandidatePoint

        class _Metrics:
            def __init__(self, lat, en):
                self.latency_s, self.energy_j = lat, en

        class _Full:
            def __init__(self, score, lat, en):
                self.score, self.metrics = score, _Metrics(lat, en)

        full = [[_Full(2.0, 4.0, 5.0), _Full(1.0, 2.0, 3.0)]]
        flat = [[CandidatePoint(score=2.0, latency_s=4.0, energy_j=5.0),
                 CandidatePoint(score=1.0, latency_s=2.0, energy_j=3.0)]]
        assert assemble_candidate_points(full, fallback=(0.0, 0.0)) \
            == assemble_candidate_points(flat, fallback=(0.0, 0.0)) \
            == [(2.0, 3.0), (4.0, 5.0)]


class TestEvalCacheLRU:
    def test_eviction_at_cap(self):
        cache = EvalCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.lookup("t", key, lambda: key)
        assert cache.size("t") == 2
        assert cache.stats["t"].evictions == 1
        # "a" was evicted: looking it up again recomputes (a miss) ...
        calls = []
        cache.lookup("t", "a", lambda: calls.append(1))
        assert calls
        # ... which in turn evicts "b" (LRU order).
        assert cache.stats["t"].evictions == 2
        cache.lookup("t", "c", lambda: pytest.fail("c was evicted"))

    def test_lru_touch_on_hit(self):
        cache = EvalCache(max_entries=2)
        cache.lookup("t", "a", lambda: 1)
        cache.lookup("t", "b", lambda: 2)
        cache.lookup("t", "a", lambda: 1)  # touch: "b" is now oldest
        cache.lookup("t", "c", lambda: 3)
        cache.lookup("t", "a", lambda: pytest.fail("a was evicted"))
        assert cache.stats["t"].evictions == 1

    def test_snapshot_carries_evictions(self):
        cache = EvalCache(max_entries=1)
        cache.lookup("t", "a", lambda: 1)
        cache.lookup("t", "b", lambda: 2)
        snap = cache.snapshot()
        assert snap["t"].evictions == 1
        snap["t"].evictions = 99
        assert cache.stats["t"].evictions == 1  # it is a copy

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            EvalCache(max_entries=0)

    def test_unbounded_mode(self):
        cache = EvalCache(max_entries=None)
        for i in range(100):
            cache.lookup("t", i, lambda: i)
        assert cache.size("t") == 100
        assert cache.stats["t"].evictions == 0


class TestRequestThreading:
    def test_backend_and_beam_round_trip(self):
        request = ScheduleRequest(scenario_id=4, backend="process",
                                  beam=3)
        rebuilt = ScheduleRequest.from_dict(request.to_dict())
        assert rebuilt == request
        assert rebuilt.backend == "process" and rebuilt.beam == 3

    def test_legacy_documents_without_engine_fields_parse(self):
        data = ScheduleRequest(scenario_id=4).to_dict()
        del data["backend"], data["beam"]
        rebuilt = ScheduleRequest.from_dict(data)
        assert rebuilt.backend is None and rebuilt.beam is None

    def test_validation(self):
        with pytest.raises(ConfigError, match="backend"):
            ScheduleRequest(scenario_id=4, backend="quantum")
        with pytest.raises(ConfigError, match="beam"):
            ScheduleRequest(scenario_id=4, beam=0)
        with pytest.raises(ConfigError, match="backend"):
            Session(backend="quantum")

    def test_cache_key_separates_beam(self):
        base = ScheduleRequest(scenario_id=4)
        assert base.cache_key() \
            != base.replace(beam=2).cache_key()

    def test_session_backend_bit_identical_to_serial(
            self, tiny_scenario, small_budget):
        """A session-wide process backend changes no result bit."""
        request = ScheduleRequest.for_scenario(
            tiny_scenario, nsplits=1, budget=small_budget)
        serial = Session().submit(request)
        pooled = Session(backend="process").submit(
            request.replace(jobs=2))
        assert pooled.schedule == serial.schedule
        assert pooled.metrics == serial.metrics
        assert pooled.window_candidates == serial.window_candidates