"""Tests for the sweep orchestration layer (repro.sweep)."""

import json

import pytest

from repro.api import ScheduleRequest, Session, scenario_spec
from repro.core.budget import SearchBudget
from repro.errors import ConfigError
from repro.sweep import (
    ResultStore,
    SweepSpec,
    run_requests,
    run_sweep,
    sweep_report,
    sweep_status,
)


@pytest.fixture
def tiny_spec(tiny_scenario, small_budget) -> SweepSpec:
    """A 1x2x... grid over the tiny fixture workload (4 cells)."""
    return SweepSpec(scenarios=(scenario_spec(tiny_scenario),),
                     templates=("het_sides_3x3",),
                     policies=("scar", "standalone"),
                     nsplits=(1, 2),
                     budget=small_budget)


class TestSweepSpec:
    def test_grid_expansion_order_and_size(self, tiny_spec):
        requests = tiny_spec.requests()
        assert len(requests) == tiny_spec.size == 4
        assert [(r.policy, r.nsplits) for r in requests] == [
            ("scar", 1), ("scar", 2), ("standalone", 1),
            ("standalone", 2)]
        assert all(isinstance(r, ScheduleRequest) for r in requests)

    def test_wire_round_trip(self, tiny_spec):
        rebuilt = SweepSpec.from_json(tiny_spec.to_json())
        assert rebuilt == tiny_spec
        assert [r.cache_key() for r in rebuilt.requests()] \
            == [r.cache_key() for r in tiny_spec.requests()]

    def test_table3_ids_and_inline_specs_mix(self, tiny_scenario):
        spec = SweepSpec(scenarios=(1, scenario_spec(tiny_scenario)))
        requests = spec.requests()
        assert requests[0].scenario_id == 1
        assert requests[1].scenario_spec is not None

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            SweepSpec(scenarios=())

    def test_scalar_axis_rejected(self, tiny_scenario):
        with pytest.raises(ConfigError):
            SweepSpec(scenarios=1)

    def test_bad_scenario_entry_rejected(self):
        with pytest.raises(ConfigError):
            SweepSpec(scenarios=("sc1",))

    def test_bad_envelope_rejected(self):
        with pytest.raises(ConfigError):
            SweepSpec.from_dict({"kind": "something_else", "version": 1})


class TestResultStore:
    def test_round_trip(self, tmp_path, tiny_spec):
        store = ResultStore(tmp_path / "s.jsonl")
        outcome = run_sweep(tiny_spec, store=store)
        key = tiny_spec.requests()[0].cache_key()
        reloaded = ResultStore(tmp_path / "s.jsonl")
        assert len(reloaded) == 4
        assert reloaded.get(key).same_payload(outcome.results[key])

    def test_missing_file_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "missing.jsonl")
        assert len(store) == 0 and store.get("nope") is None

    def test_torn_final_line_is_tolerated(self, tmp_path, tiny_spec):
        """An unterminated tail is pending -- either a writer died
        mid-append (torn) or another replica is mid-append right now --
        so it is neither loaded nor counted corrupt until a newline
        lands."""
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        run_sweep(tiny_spec, store=store)
        with path.open("a") as handle:
            handle.write('{"kind": "sweep_cell", "key": "x", "resu')
        reloaded = ResultStore(path)
        assert len(reloaded) == 4
        assert reloaded.corrupt_lines == 0
        # Once terminated, the line is consumed -- and it is garbage.
        with path.open("a") as handle:
            handle.write("\n")
        assert reloaded.refresh() == 0
        assert len(reloaded) == 4
        assert reloaded.corrupt_lines == 1

    def test_refresh_sees_other_replicas_appends(self, tmp_path,
                                                 tiny_spec):
        """Two store objects on one path: records by one become visible
        to the other after refresh() (the cross-replica cache path)."""
        path = tmp_path / "s.jsonl"
        mine = ResultStore(path)
        theirs = ResultStore(path)
        outcome = run_sweep(tiny_spec, store=mine)
        key = tiny_spec.requests()[0].cache_key()
        assert key not in theirs  # opened before the campaign ran
        assert theirs.refresh() == 4
        assert len(theirs) == 4
        assert theirs.get(key).same_payload(outcome.results[key])
        assert theirs.refresh() == 0  # nothing new: offset caught up

    def test_record_adopts_concurrent_append_without_duplicating(
            self, tmp_path, tiny_spec):
        """record() refreshes first, so a cell another replica finished
        in the meantime is adopted instead of appended twice."""
        path = tmp_path / "s.jsonl"
        mine = ResultStore(path)
        theirs = ResultStore(path)
        outcome = run_sweep(tiny_spec, store=theirs)
        result = next(iter(outcome.results.values()))
        before = path.read_text()
        mine.record(result)
        assert path.read_text() == before
        assert len(mine) == 4

    def test_unparsable_stored_result_is_recomputed(self, tmp_path,
                                                    tiny_spec):
        """A cell whose stored payload no longer parses (wire-version
        bump, mangled mid-file) is recomputed and re-recorded, not a
        campaign abort."""
        path = tmp_path / "s.jsonl"
        run_sweep(tiny_spec, store=ResultStore(path))
        key = tiny_spec.requests()[0].cache_key()
        lines = path.read_text().splitlines()
        doc = json.loads(lines[0])
        assert doc["key"] == key
        doc["result"]["version"] = 999  # future wire version
        path.write_text("\n".join([json.dumps(doc)] + lines[1:]) + "\n")
        store = ResultStore(path)
        outcome = run_sweep(tiny_spec, store=store)
        assert outcome.computed == 1 and outcome.skipped == 3
        assert store.corrupt_lines == 1
        # The recomputed cell was re-recorded; a fresh rerun skips all.
        again = run_sweep(tiny_spec, store=ResultStore(path))
        assert again.computed == 0 and again.skipped == 4

    def test_record_is_idempotent(self, tmp_path, tiny_spec):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        outcome = run_sweep(tiny_spec, store=store)
        result = next(iter(outcome.results.values()))
        before = path.read_text()
        store.record(result)
        assert path.read_text() == before


class TestRunSweep:
    def test_first_run_computes_everything(self, tmp_path, tiny_spec):
        outcome = run_sweep(tiny_spec,
                            store=ResultStore(tmp_path / "s.jsonl"))
        assert outcome.computed == 4
        assert outcome.skipped == 0 and outcome.failed == 0
        assert all(result is not None
                   for result in outcome.ordered_results())

    def test_resume_skips_everything_bit_identically(self, tmp_path,
                                                     tiny_spec):
        path = tmp_path / "s.jsonl"
        first = run_sweep(tiny_spec, store=ResultStore(path))
        second = run_sweep(tiny_spec, store=ResultStore(path))
        assert second.computed == 0 and second.skipped == 4
        # Segment-eval counters stay flat: nothing was recomputed.
        assert second.perf.num_segments == 0
        for a, b in zip(first.ordered_results(),
                        second.ordered_results()):
            assert a.same_payload(b)

    def test_partial_store_resumes_only_missing_cells(self, tmp_path,
                                                      tiny_spec):
        path = tmp_path / "s.jsonl"
        requests = tiny_spec.requests()
        run_requests(requests[:2], store=ResultStore(path))
        outcome = run_sweep(tiny_spec, store=ResultStore(path))
        assert outcome.skipped == 2 and outcome.computed == 2

    def test_workers_are_bit_identical_to_serial(self, tiny_spec):
        serial = run_sweep(tiny_spec)
        pooled = run_sweep(tiny_spec, workers=3)
        for a, b in zip(serial.ordered_results(),
                        pooled.ordered_results()):
            assert a.same_payload(b)

    def test_no_store_recomputes(self, tiny_spec):
        outcome = run_sweep(tiny_spec)
        assert outcome.computed == 4 and outcome.skipped == 0

    def test_duplicate_cells_compute_once(self, tiny_scenario,
                                          small_budget):
        spec = scenario_spec(tiny_scenario)
        request = ScheduleRequest(scenario_spec=spec, nsplits=1,
                                  budget=small_budget)
        outcome = run_requests([request, request])
        assert outcome.computed == 2  # both grid cells resolved...
        assert len(outcome.results) == 1  # ...by one unique run

    def test_failed_cell_is_collected_not_raised(self, tiny_scenario,
                                                 small_budget):
        good = ScheduleRequest(scenario_spec=scenario_spec(tiny_scenario),
                               nsplits=1, budget=small_budget)
        bad = good.replace(template="no_such_template")
        outcome = run_requests([good, bad])
        assert outcome.failed == 1
        assert outcome.result_for(good) is not None
        assert outcome.result_for(bad) is None
        error = outcome.failures[bad.cache_key()]
        assert error.code == "config_error"

    def test_failed_cell_not_stored_and_retried(self, tmp_path,
                                                tiny_scenario,
                                                small_budget):
        store = ResultStore(tmp_path / "s.jsonl")
        bad = ScheduleRequest(scenario_spec=scenario_spec(tiny_scenario),
                              nsplits=1, budget=small_budget,
                              template="no_such_template")
        run_requests([bad], store=store)
        assert len(store) == 0
        retry = run_requests([bad], store=ResultStore(tmp_path / "s.jsonl"))
        assert retry.skipped == 0 and retry.failed == 1

    def test_shared_session_memoizes_across_sweeps(self, tiny_spec):
        session = Session()
        first = run_sweep(tiny_spec, session=session)
        assert first.perf.num_segments > 0
        again = run_sweep(tiny_spec, session=session)
        # The session memo serves every cell, and outcome.perf covers
        # this run only -- so its counters are flat even though the
        # shared session's lifetime log is not.
        assert again.perf.num_segments == 0
        assert session.perf_summary().num_segments \
            == first.perf.num_segments

    def test_result_at_raises_the_cell_error(self, tiny_scenario,
                                             small_budget):
        good = ScheduleRequest(scenario_spec=scenario_spec(tiny_scenario),
                               nsplits=1, budget=small_budget)
        bad = good.replace(template="no_such_template")
        outcome = run_requests([good, bad])
        assert outcome.result_at(0).same_payload(
            outcome.ordered_results()[0])
        with pytest.raises(ConfigError):
            outcome.result_at(1)


class TestSweepReport:
    def test_render_mentions_cells_and_best(self, tiny_spec):
        outcome = run_sweep(tiny_spec)
        text = sweep_report(outcome).render()
        assert "4 computed" in text
        assert "best EDP per scenario" in text
        assert "scar" in text and "standalone" in text

    def test_document_shape(self, tmp_path, tiny_spec):
        path = tmp_path / "s.jsonl"
        run_sweep(tiny_spec, store=ResultStore(path))
        outcome = run_sweep(tiny_spec, store=ResultStore(path))
        doc = sweep_report(outcome).to_document()
        assert doc["kind"] == "sweep_report"
        assert doc["cells"] == 4 and doc["computed"] == 0
        assert doc["skipped"] == 4 and doc["num_segments"] == 0
        assert json.loads(json.dumps(doc)) == doc  # JSON-serializable

    def test_failure_rows_carry_error(self, tiny_scenario, small_budget):
        bad = ScheduleRequest(scenario_spec=scenario_spec(tiny_scenario),
                              nsplits=1, budget=small_budget,
                              template="no_such_template")
        outcome = run_requests([bad])
        doc = sweep_report(outcome).to_document()
        assert doc["rows"][0]["error"]["code"] == "config_error"
        assert "config_error" in sweep_report(outcome).render()


class TestSweepStatus:
    def test_no_store_means_all_pending(self, tiny_spec):
        status = sweep_status(tiny_spec, None)
        assert status.total == tiny_spec.size == 4
        assert status.finished == ()
        assert len(status.pending) == 4
        assert not status.complete and status.extra == 0

    def test_partial_store_partitions_the_grid(self, tmp_path,
                                               tiny_spec):
        path = tmp_path / "s.jsonl"
        requests = tiny_spec.requests()
        run_requests(requests[:3], store=ResultStore(path))
        status = sweep_status(tiny_spec, ResultStore(path))
        assert [r.cache_key() for r in status.finished] \
            == [r.cache_key() for r in requests[:3]]
        assert [r.cache_key() for r in status.pending] \
            == [r.cache_key() for r in requests[3:]]
        assert not status.complete

    def test_complete_campaign(self, tmp_path, tiny_spec):
        path = tmp_path / "s.jsonl"
        run_sweep(tiny_spec, store=ResultStore(path))
        status = sweep_status(tiny_spec, ResultStore(path))
        assert status.complete and len(status.finished) == 4
        assert "campaign complete" in status.render()

    def test_extra_entries_counted_not_claimed(self, tmp_path,
                                               tiny_spec, tiny_scenario,
                                               small_budget):
        path = tmp_path / "s.jsonl"
        stranger = ScheduleRequest(
            scenario_spec=scenario_spec(tiny_scenario), nsplits=3,
            budget=small_budget)
        assert stranger.cache_key() not in \
            {r.cache_key() for r in tiny_spec.requests()}
        run_requests([stranger], store=ResultStore(path))
        status = sweep_status(tiny_spec, ResultStore(path))
        assert status.extra == 1
        assert len(status.pending) == 4
        assert "unrelated store entries" in status.render()

    def test_sees_another_writers_progress(self, tmp_path, tiny_spec):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)  # opened before the other writer runs
        run_requests(tiny_spec.requests()[:1], store=ResultStore(path))
        status = sweep_status(tiny_spec, store)
        assert len(status.finished) == 1  # refresh() picked it up

    def test_document_shape(self, tmp_path, tiny_spec):
        path = tmp_path / "s.jsonl"
        run_requests(tiny_spec.requests()[:2], store=ResultStore(path))
        doc = sweep_status(tiny_spec, ResultStore(path)).to_document()
        assert doc["kind"] == "sweep_status"
        assert doc["cells"] == 4 and doc["finished"] == 2
        assert doc["pending"] == 2 and not doc["complete"]
        assert [row["key"] for row in doc["pending_rows"]] \
            == [r.cache_key() for r in tiny_spec.requests()[2:]]
        assert json.loads(json.dumps(doc)) == doc

    def test_render_lists_pending_cells(self, tiny_spec):
        text = sweep_status(tiny_spec, None).render()
        assert "0/4 cells finished" in text
        assert text.count("pending:") == 4
        assert "standalone" in text
