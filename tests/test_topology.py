"""Unit tests for NoP topologies and routing."""

import pytest

from repro.errors import HardwareError
from repro.mcm.topology import Topology, mesh, triangular


class TestGeometry:
    def test_positions_row_major(self):
        topo = mesh(3, 3)
        assert topo.position(0) == (0, 0)
        assert topo.position(5) == (1, 2)
        assert topo.node_at(2, 1) == 7

    def test_out_of_range_rejected(self):
        topo = mesh(2, 2)
        with pytest.raises(HardwareError):
            topo.position(4)
        with pytest.raises(HardwareError):
            topo.node_at(2, 0)

    def test_invalid_dims_rejected(self):
        with pytest.raises(HardwareError):
            Topology(rows=0, cols=3)
        with pytest.raises(HardwareError):
            Topology(rows=2, cols=2, kind="torus")

    def test_mesh_edge_count(self):
        # r*(c-1) + c*(r-1) for a mesh
        assert len(mesh(3, 3).edges()) == 12
        assert len(mesh(6, 6).edges()) == 60

    def test_triangular_adds_diagonals(self):
        assert len(triangular(3, 3).edges()) == 12 + 4

    def test_neighbors(self):
        topo = mesh(3, 3)
        assert topo.neighbors(4) == (1, 3, 5, 7)
        assert topo.neighbors(0) == (1, 3)

    def test_triangular_center_neighbors_include_diagonals(self):
        topo = triangular(3, 3)
        assert 8 in topo.neighbors(4)
        assert 0 in topo.neighbors(4)


class TestRouting:
    def test_self_route_empty(self):
        assert mesh(3, 3).route(2, 2) == ()
        assert mesh(3, 3).hops(2, 2) == 0

    def test_xy_route_goes_x_first(self):
        topo = mesh(3, 3)
        route = topo.route(0, 8)
        assert route == ((0, 1), (1, 2), (2, 5), (5, 8))

    def test_mesh_hops_are_manhattan(self):
        topo = mesh(4, 4)
        for src in range(16):
            for dst in range(16):
                (r1, c1), (r2, c2) = topo.position(src), topo.position(dst)
                assert topo.hops(src, dst) == abs(r1 - r2) + abs(c1 - c2)

    def test_route_links_are_adjacent(self):
        topo = triangular(3, 3)
        for src in range(9):
            for dst in range(9):
                for a, b in topo.route(src, dst):
                    assert b in topo.neighbors(a)

    def test_triangular_shortcut(self):
        # Diagonal gives 0 -> 4 in one hop (mesh needs two).
        assert triangular(3, 3).hops(0, 4) == 1
        assert mesh(3, 3).hops(0, 4) == 2

    def test_triangular_routes_deterministic(self):
        topo = triangular(3, 3)
        assert topo.route(0, 8) == topo.route(0, 8)

    def test_route_connects_endpoints(self):
        topo = triangular(3, 3)
        route = topo.route(2, 6)
        assert route[0][0] == 2 and route[-1][1] == 6
