"""End-to-end integration sweeps across all scenarios and templates."""

import pytest

from repro.config import mcm_from_dict, mcm_to_dict
from repro.core import (
    QUICK_BUDGET,
    SCARScheduler,
    ScheduleEvaluator,
    StandaloneScheduler,
    analyze_schedule,
)
from repro.dataflow import LayerCostDatabase
from repro.mcm import templates
from repro.workloads import scenario, scenario_ids


@pytest.mark.parametrize("scenario_id", scenario_ids())
def test_standalone_schedules_every_scenario(scenario_id):
    """Every Table III scenario evaluates end-to-end on 3x3 hardware."""
    sc = scenario(scenario_id)
    mcm = templates.build("simba_nvd_3x3", sc.use_case)
    result = StandaloneScheduler(mcm).schedule(sc)
    result.schedule.validate(sc)
    assert result.metrics.latency_s > 0
    assert result.metrics.energy_j > 0
    # One chain per model, all in one concurrent window.
    assert len(result.schedule.windows[0].chains) == len(sc)


@pytest.mark.parametrize("template", templates.template_names())
def test_every_template_round_trips_and_evaluates(template):
    """All Fig. 6 organizations serialize and host a schedule."""
    mcm = templates.build(template)
    assert mcm_from_dict(mcm_to_dict(mcm)) == mcm
    sc = scenario(1)
    if mcm.num_chiplets < len(sc):
        pytest.skip("package smaller than scenario")
    result = StandaloneScheduler(mcm).schedule(sc)
    assert result.metrics.edp > 0


def test_scar_full_stack_with_analysis():
    """SCAR + evaluator + analyzer agree on one realistic run."""
    sc = scenario(2)
    mcm = templates.build("het_sides_3x3")
    database = LayerCostDatabase(clock_hz=mcm.clock_hz)
    result = SCARScheduler(mcm, nsplits=1, budget=QUICK_BUDGET,
                           database=database).schedule(sc)
    evaluator = ScheduleEvaluator(sc, mcm, database)
    re_eval = evaluator.evaluate(result.schedule)
    assert re_eval.latency_s == pytest.approx(result.metrics.latency_s)
    assert re_eval.energy_j == pytest.approx(result.metrics.energy_j)

    report = analyze_schedule(result.schedule, sc, evaluator)
    assert report.traffic.total_bytes > 0
    # All weights must come from DRAM at least once.
    min_weights = sum(inst.model.total_weight_bytes for inst in sc)
    assert report.traffic.offchip_weight_bytes >= min_weights * 0.999
    assert 0.0 < report.mean_busy_fraction <= 1.0


def test_scar_beats_nn_baton_on_every_datacenter_scenario():
    """The Fig. 2 claim generalized: SCAR >= NN-baton-style everywhere."""
    from repro.core import NNBatonScheduler
    mcm = templates.build("het_sides_3x3")
    database = LayerCostDatabase(clock_hz=mcm.clock_hz)
    for scenario_id in (1, 2):
        sc = scenario(scenario_id)
        nn = NNBatonScheduler(mcm, database=database).schedule(sc)
        scar = SCARScheduler(mcm, nsplits=1, budget=QUICK_BUDGET,
                             database=database).schedule(sc)
        assert scar.metrics.edp < nn.metrics.edp


def test_cost_database_shared_across_engines_stays_consistent():
    """A shared database returns identical costs across consumers."""
    sc = scenario(1)
    mcm = templates.build("simba_nvd_3x3")
    database = LayerCostDatabase(clock_hz=mcm.clock_hz)
    layer = sc[0].layer(0)
    chiplet = mcm.chiplet(0)
    before = database.cost(layer, chiplet)
    SCARScheduler(mcm, nsplits=0, budget=QUICK_BUDGET,
                  database=database).schedule(sc)
    assert database.cost(layer, chiplet) is before
