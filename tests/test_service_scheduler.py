"""SchedulerService: parity with Session.submit, lifecycle, perf stats."""

from __future__ import annotations

import threading

import pytest

from repro.api import ScheduleRequest, Session
from repro.errors import (
    ConfigError,
    JobNotFoundError,
    ServiceError,
    WorkloadError,
)
from repro.perf import TimingSummary
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    RUNNING,
    SchedulerService,
)
from service_helpers import (
    POLICIES,
    assert_equivalent,
    gated_registry,
    replicated_request,
    request_for,
)


class TestParity:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_every_policy_matches_session_submit(self, tiny_scenario,
                                                 small_budget, workers):
        requests = [request_for(tiny_scenario, small_budget, policy)
                    for policy in POLICIES]
        reference = [Session().submit(r) for r in requests]
        with SchedulerService(workers=workers) as service:
            handles = service.submit_many(requests)
            results = [h.result(timeout=600) for h in handles]
        for got, want in zip(results, reference):
            assert_equivalent(got, want)

    def test_replicated_tenants_match_session_submit(self, small_budget):
        """The multi-tenant (model#k) shape holds the same contract."""
        requests = [replicated_request(small_budget, policy)
                    for policy in POLICIES]
        reference = [Session().submit(r) for r in requests]
        with SchedulerService(workers=3) as service:
            handles = service.submit_many(requests)
            results = [h.result(timeout=600) for h in handles]
        for got, want in zip(results, reference):
            assert_equivalent(got, want)

    def test_parity_survives_lru_eviction(self, tiny_scenario,
                                          small_budget):
        """A job re-run after its memo entry was evicted is bit-equal."""
        a = request_for(tiny_scenario, small_budget, "standalone")
        b = request_for(tiny_scenario, small_budget, "nn_baton")
        with SchedulerService(Session(max_memo=1),
                              workers=1) as service:
            first = service.submit(a).result(timeout=300)
            service.submit(b).result(timeout=300)  # evicts a
            again = service.submit(a).result(timeout=300)
        assert first is not again  # recomputed, not served from memo
        assert_equivalent(first, again)

    def test_jobs_share_the_session_memo(self, tiny_scenario,
                                         small_budget):
        request = request_for(tiny_scenario, small_budget, "standalone")
        with SchedulerService(workers=1) as service:
            first = service.submit(request).result(timeout=300)
            second = service.submit(request).result(timeout=300)
        assert second is first  # same memo entry as Session.submit


class TestLifecycle:
    @pytest.fixture
    def gated_service(self, tiny_scenario, small_budget):
        """A 1-worker service over the shared event-gated policy, making
        queue occupancy deterministic for cancellation tests."""
        registry, started, release, order = gated_registry()
        service = SchedulerService(Session(registry), workers=1)
        gated = ScheduleRequest.for_scenario(
            tiny_scenario, template="het_sides_3x3", policy="gated",
            budget=small_budget, nsplits=1)
        yield service, gated, started, release, order
        release.set()
        service.close()

    def test_cancel_queued_job(self, gated_service):
        service, gated, started, release, order = gated_service
        running = service.submit(gated)
        assert started.wait(timeout=60)
        queued = service.submit(gated.replace(prov_limit=63))
        record = queued.cancel()
        assert record.state == CANCELLED
        assert record.queue_s is not None and record.run_s is None
        with pytest.raises(ServiceError, match="cancelled"):
            service.result(queued.job_id)
        release.set()
        assert running.result(timeout=300).metrics.latency_s > 0

    def test_cancel_running_job_is_cooperative(self, gated_service):
        service, gated, started, release, order = gated_service
        handle = service.submit(gated)
        assert started.wait(timeout=60)
        record = handle.cancel()
        assert record.state == RUNNING  # flag only; still running
        release.set()
        final = handle.wait(timeout=300)
        assert final.state == CANCELLED
        assert final.run_s is not None
        with pytest.raises(ServiceError, match="cancelled"):
            handle.result()

    def test_cancel_is_idempotent_on_terminal_jobs(self, gated_service):
        service, gated, started, release, order = gated_service
        handle = service.submit(gated)
        release.set()
        handle.wait(timeout=300)
        assert handle.cancel().state == DONE  # no-op, record unchanged

    def test_priority_orders_the_backlog(self, gated_service):
        service, gated, started, release, order = gated_service
        service.submit(gated.replace(prov_limit=10))  # occupies worker
        assert started.wait(timeout=60)
        service.submit(gated.replace(prov_limit=30), priority=5)
        service.submit(gated.replace(prov_limit=20), priority=1)
        last = service.submit(gated.replace(prov_limit=40), priority=9)
        release.set()
        last.wait(timeout=300)
        assert order == [10, 20, 30, 40]  # backlog ran by priority

    def test_failed_job_carries_error_document(self, small_budget):
        bad = ScheduleRequest(scenario_id=99, policy="standalone",
                              budget=small_budget, nsplits=1)
        with SchedulerService(workers=1) as service:
            handle = service.submit(bad)
            record = handle.wait(timeout=300)
            assert record.state == FAILED
            assert record.error is not None
            assert record.error.code == "workload_error"
            with pytest.raises(WorkloadError, match="unknown scenario"):
                handle.result()

    def test_submit_after_close_rejected(self, tiny_scenario,
                                         small_budget):
        service = SchedulerService(workers=1)
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            service.submit(request_for(tiny_scenario, small_budget,
                                       "standalone"))

    def test_batch_after_close_queues_nothing(self, tiny_scenario,
                                              small_budget):
        """Batches are all-or-nothing against shutdown."""
        service = SchedulerService(workers=1)
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            service.submit_many([
                request_for(tiny_scenario, small_budget, "standalone"),
                request_for(tiny_scenario, small_budget, "nn_baton"),
            ])
        assert service.jobs() == []

    def test_close_drains_queued_jobs(self, tiny_scenario, small_budget):
        service = SchedulerService(workers=1)
        handles = service.submit_many([
            request_for(tiny_scenario, small_budget, "standalone"),
            request_for(tiny_scenario, small_budget, "nn_baton"),
        ])
        service.close()  # drains, then joins
        assert all(h.record().state == DONE for h in handles)

    def test_unknown_job_id_rejected(self):
        with SchedulerService(workers=1) as service:
            with pytest.raises(JobNotFoundError, match="unknown job id"):
                service.job("job-999999")

    def test_retain_evicts_oldest_terminal_jobs(self, tiny_scenario,
                                                small_budget):
        requests = [
            request_for(tiny_scenario, small_budget, "standalone"),
            request_for(tiny_scenario, small_budget, "nn_baton"),
            request_for(tiny_scenario, small_budget, "standalone",
                        template="simba_nvd_3x3"),
        ]
        with SchedulerService(workers=1, retain=1) as service:
            handles = [service.submit(r) for r in requests]
            # One worker runs FIFO: when the last job is terminal, the
            # earlier ones were, too (and were evicted past the cap).
            handles[-1].wait(timeout=300)
            # Only the newest terminal job survives.
            assert [r.job_id for r in service.jobs()] == \
                [handles[-1].job_id]
            assert handles[-1].result().metrics.latency_s > 0
            with pytest.raises(JobNotFoundError):
                service.job(handles[0].job_id)  # by-id access is gone
            # the open handle still knows its final state
            assert handles[0].record().state == DONE

    def test_retain_never_evicts_live_jobs(self, gated_service):
        service, gated, started, release, order = gated_service
        service.retain = 1  # tighten the cap on the fixture's service
        running = service.submit(gated)
        assert started.wait(timeout=60)
        cancelled = service.submit(gated.replace(prov_limit=63))
        cancelled.cancel()  # one terminal job: exactly at the cap
        # the RUNNING job is untouchable regardless of the cap
        assert running.job_id in {r.job_id for r in service.jobs()}
        release.set()
        # on completion the DONE job is newest; the cancelled one goes
        assert running.result(timeout=300).metrics.latency_s > 0
        with pytest.raises(JobNotFoundError):
            service.job(cancelled.job_id)  # by-id access is gone
        assert cancelled.record().state == CANCELLED  # handle fallback

    def test_bad_retain_rejected(self):
        with pytest.raises(ConfigError, match="retain"):
            SchedulerService(workers=1, retain=0)

    def test_eviction_prefers_retrieved_results(self, tiny_scenario,
                                                small_budget):
        """An already-fetched result is sacrificed before an unfetched
        one, even when the unfetched job is older."""
        a = request_for(tiny_scenario, small_budget, "standalone")
        b = request_for(tiny_scenario, small_budget, "nn_baton")
        c = request_for(tiny_scenario, small_budget, "standalone",
                        template="simba_nvd_3x3")
        with SchedulerService(workers=1, retain=2) as service:
            ha = service.submit(a)
            ha.wait(timeout=300)  # a terminal, NOT retrieved by id
            hb = service.submit(b)
            hb.wait(timeout=300)
            service.result(hb.job_id)  # b retrieved
            service.submit(c).result(timeout=300)  # over cap: evict b
            remaining = {r.job_id for r in service.jobs()}
            assert ha.job_id in remaining  # unretrieved a survived
            assert hb.job_id not in remaining
            assert service.result(ha.job_id).metrics.latency_s > 0

    def test_handle_result_survives_eviction(self, tiny_scenario,
                                             small_budget):
        """An open handle never loses its result to the retain cap."""
        a = request_for(tiny_scenario, small_budget, "standalone")
        b = request_for(tiny_scenario, small_budget, "nn_baton")
        with SchedulerService(workers=1, retain=1) as service:
            first = service.submit(a)
            second = service.submit(b)
            second.wait(timeout=300)  # finishing b evicts a's record
            with pytest.raises(JobNotFoundError):
                service.result(first.job_id)  # by-id: window semantics
            # ...but the handle kept its completion slot
            assert first.result(timeout=300).metrics.latency_s > 0
            assert first.record().state == DONE

    def test_close_cancel_pending_skips_the_backlog(self, gated_service):
        """Prompt shutdown (the `scar serve` Ctrl-C path): queued jobs
        cancel instead of draining; the running one still finishes."""
        service, gated, started, release, order = gated_service
        running = service.submit(gated)
        assert started.wait(timeout=60)
        backlog = [service.submit(gated.replace(prov_limit=63 - i))
                   for i in range(3)]
        # Close while the worker is still gated: the backlog cancels
        # before it could ever be popped, with no race on release.
        closer = threading.Thread(
            target=lambda: service.close(cancel_pending=True))
        closer.start()
        for handle in backlog:
            assert handle.wait(timeout=60).state == CANCELLED
        release.set()
        closer.join(timeout=60)
        assert not closer.is_alive()
        assert running.record().state == DONE
        assert order == [64]  # the backlog never ran

    def test_wait_timeout_raises(self, gated_service):
        service, gated, started, release, order = gated_service
        handle = service.submit(gated)
        with pytest.raises(ServiceError, match="still"):
            handle.wait(timeout=0.05)
        release.set()

    def test_bad_workers_rejected(self):
        with pytest.raises(ConfigError, match="workers"):
            SchedulerService(workers=0)


class TestPerfSummary:
    def test_counts_states_and_aggregates_timings(self, tiny_scenario,
                                                  small_budget):
        good = request_for(tiny_scenario, small_budget, "scar")
        bad = ScheduleRequest(scenario_id=99, policy="standalone",
                              budget=small_budget, nsplits=1)
        with SchedulerService(workers=2) as service:
            for handle in service.submit_many([good, bad]):
                handle.wait(timeout=600)
            summary = service.perf_summary()
        assert summary["jobs"]["total"] == 2
        assert summary["jobs"][DONE] == 1
        assert summary["jobs"][FAILED] == 1
        assert summary["queue"]["count"] == 2
        assert summary["run"]["count"] == 2
        assert summary["run"]["total_s"] > 0
        # the SCAR run's perf report landed in the wrapped session
        assert summary["session"]["num_evaluated"] > 0


class TestTimingSummary:
    def test_accumulates(self):
        summary = TimingSummary.from_samples([1.0, 3.0, 2.0])
        assert summary.count == 3
        assert summary.total_s == 6.0
        assert summary.mean_s == 2.0
        assert summary.max_s == 3.0

    def test_empty(self):
        summary = TimingSummary()
        assert summary.mean_s == 0.0
        assert summary.to_dict() == {"count": 0, "total_s": 0.0,
                                     "mean_s": 0.0, "max_s": 0.0}

    def test_merge_is_associative(self):
        a = TimingSummary.from_samples([1.0, 2.0])
        b = TimingSummary.from_samples([4.0])
        c = TimingSummary.from_samples([0.5, 3.0])
        merged = a.merge(b).merge(c)
        assert merged == a.merge(b.merge(c))
        assert merged == TimingSummary.from_samples(
            [1.0, 2.0, 4.0, 0.5, 3.0])
