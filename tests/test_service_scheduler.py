"""SchedulerService: parity with Session.submit, lifecycle, perf stats."""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import ScheduleRequest, Session
from repro.errors import (
    ConfigError,
    JobNotFoundError,
    ServiceError,
    ServiceOverloadedError,
    WorkloadError,
)
from repro.perf import TimingSummary
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    RUNNING,
    SchedulerService,
)
from service_helpers import (
    POLICIES,
    assert_equivalent,
    gated_registry,
    replicated_request,
    request_for,
)


class TestParity:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_every_policy_matches_session_submit(self, tiny_scenario,
                                                 small_budget, workers):
        requests = [request_for(tiny_scenario, small_budget, policy)
                    for policy in POLICIES]
        reference = [Session().submit(r) for r in requests]
        with SchedulerService(workers=workers) as service:
            handles = service.submit_many(requests)
            results = [h.result(timeout=600) for h in handles]
        for got, want in zip(results, reference):
            assert_equivalent(got, want)

    def test_replicated_tenants_match_session_submit(self, small_budget):
        """The multi-tenant (model#k) shape holds the same contract."""
        requests = [replicated_request(small_budget, policy)
                    for policy in POLICIES]
        reference = [Session().submit(r) for r in requests]
        with SchedulerService(workers=3) as service:
            handles = service.submit_many(requests)
            results = [h.result(timeout=600) for h in handles]
        for got, want in zip(results, reference):
            assert_equivalent(got, want)

    def test_parity_survives_lru_eviction(self, tiny_scenario,
                                          small_budget):
        """A job re-run after its memo entry was evicted is bit-equal."""
        a = request_for(tiny_scenario, small_budget, "standalone")
        b = request_for(tiny_scenario, small_budget, "nn_baton")
        with SchedulerService(Session(max_memo=1),
                              workers=1) as service:
            first = service.submit(a).result(timeout=300)
            service.submit(b).result(timeout=300)  # evicts a
            again = service.submit(a).result(timeout=300)
        assert first is not again  # recomputed, not served from memo
        assert_equivalent(first, again)

    def test_jobs_share_the_session_memo(self, tiny_scenario,
                                         small_budget):
        request = request_for(tiny_scenario, small_budget, "standalone")
        with SchedulerService(workers=1) as service:
            first = service.submit(request).result(timeout=300)
            second = service.submit(request).result(timeout=300)
        assert second is first  # same memo entry as Session.submit


class TestLifecycle:
    @pytest.fixture
    def gated_service(self, tiny_scenario, small_budget):
        """A 1-worker service over the shared event-gated policy, making
        queue occupancy deterministic for cancellation tests."""
        registry, started, release, order = gated_registry()
        service = SchedulerService(Session(registry), workers=1)
        gated = ScheduleRequest.for_scenario(
            tiny_scenario, template="het_sides_3x3", policy="gated",
            budget=small_budget, nsplits=1)
        yield service, gated, started, release, order
        release.set()
        service.close()

    def test_cancel_queued_job(self, gated_service):
        service, gated, started, release, order = gated_service
        running = service.submit(gated)
        assert started.wait(timeout=60)
        queued = service.submit(gated.replace(prov_limit=63))
        record = queued.cancel()
        assert record.state == CANCELLED
        assert record.queue_s is not None and record.run_s is None
        with pytest.raises(ServiceError, match="cancelled"):
            service.result(queued.job_id)
        release.set()
        assert running.result(timeout=300).metrics.latency_s > 0

    def test_cancel_running_job_is_cooperative(self, gated_service):
        service, gated, started, release, order = gated_service
        handle = service.submit(gated)
        assert started.wait(timeout=60)
        record = handle.cancel()
        assert record.state == RUNNING  # flag only; still running
        release.set()
        final = handle.wait(timeout=300)
        assert final.state == CANCELLED
        assert final.run_s is not None
        with pytest.raises(ServiceError, match="cancelled"):
            handle.result()

    def test_cancel_is_idempotent_on_terminal_jobs(self, gated_service):
        service, gated, started, release, order = gated_service
        handle = service.submit(gated)
        release.set()
        handle.wait(timeout=300)
        assert handle.cancel().state == DONE  # no-op, record unchanged

    def test_priority_orders_the_backlog(self, gated_service):
        service, gated, started, release, order = gated_service
        service.submit(gated.replace(prov_limit=10))  # occupies worker
        assert started.wait(timeout=60)
        service.submit(gated.replace(prov_limit=30), priority=5)
        service.submit(gated.replace(prov_limit=20), priority=1)
        last = service.submit(gated.replace(prov_limit=40), priority=9)
        release.set()
        last.wait(timeout=300)
        assert order == [10, 20, 30, 40]  # backlog ran by priority

    def test_failed_job_carries_error_document(self, small_budget):
        bad = ScheduleRequest(scenario_id=99, policy="standalone",
                              budget=small_budget, nsplits=1)
        with SchedulerService(workers=1) as service:
            handle = service.submit(bad)
            record = handle.wait(timeout=300)
            assert record.state == FAILED
            assert record.error is not None
            assert record.error.code == "workload_error"
            with pytest.raises(WorkloadError, match="unknown scenario"):
                handle.result()

    def test_submit_after_close_rejected(self, tiny_scenario,
                                         small_budget):
        service = SchedulerService(workers=1)
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            service.submit(request_for(tiny_scenario, small_budget,
                                       "standalone"))

    def test_batch_after_close_queues_nothing(self, tiny_scenario,
                                              small_budget):
        """Batches are all-or-nothing against shutdown."""
        service = SchedulerService(workers=1)
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            service.submit_many([
                request_for(tiny_scenario, small_budget, "standalone"),
                request_for(tiny_scenario, small_budget, "nn_baton"),
            ])
        assert service.jobs() == []

    def test_close_drains_queued_jobs(self, tiny_scenario, small_budget):
        service = SchedulerService(workers=1)
        handles = service.submit_many([
            request_for(tiny_scenario, small_budget, "standalone"),
            request_for(tiny_scenario, small_budget, "nn_baton"),
        ])
        service.close()  # drains, then joins
        assert all(h.record().state == DONE for h in handles)

    def test_unknown_job_id_rejected(self):
        with SchedulerService(workers=1) as service:
            with pytest.raises(JobNotFoundError, match="unknown job id"):
                service.job("job-999999")

    def test_retain_evicts_oldest_terminal_jobs(self, tiny_scenario,
                                                small_budget):
        requests = [
            request_for(tiny_scenario, small_budget, "standalone"),
            request_for(tiny_scenario, small_budget, "nn_baton"),
            request_for(tiny_scenario, small_budget, "standalone",
                        template="simba_nvd_3x3"),
        ]
        with SchedulerService(workers=1, retain=1) as service:
            handles = [service.submit(r) for r in requests]
            # One worker runs FIFO: when the last job is terminal, the
            # earlier ones were, too (and were evicted past the cap).
            handles[-1].wait(timeout=300)
            # Only the newest terminal job survives.
            assert [r.job_id for r in service.jobs()] == \
                [handles[-1].job_id]
            assert handles[-1].result().metrics.latency_s > 0
            with pytest.raises(JobNotFoundError):
                service.job(handles[0].job_id)  # by-id access is gone
            # the open handle still knows its final state
            assert handles[0].record().state == DONE

    def test_retain_never_evicts_live_jobs(self, gated_service):
        service, gated, started, release, order = gated_service
        service.retain = 1  # tighten the cap on the fixture's service
        running = service.submit(gated)
        assert started.wait(timeout=60)
        cancelled = service.submit(gated.replace(prov_limit=63))
        cancelled.cancel()  # one terminal job: exactly at the cap
        # the RUNNING job is untouchable regardless of the cap
        assert running.job_id in {r.job_id for r in service.jobs()}
        release.set()
        # on completion the DONE job is newest; the cancelled one goes
        assert running.result(timeout=300).metrics.latency_s > 0
        with pytest.raises(JobNotFoundError):
            service.job(cancelled.job_id)  # by-id access is gone
        assert cancelled.record().state == CANCELLED  # handle fallback

    def test_bad_retain_rejected(self):
        with pytest.raises(ConfigError, match="retain"):
            SchedulerService(workers=1, retain=0)

    def test_eviction_prefers_retrieved_results(self, tiny_scenario,
                                                small_budget):
        """An already-fetched result is sacrificed before an unfetched
        one, even when the unfetched job is older."""
        a = request_for(tiny_scenario, small_budget, "standalone")
        b = request_for(tiny_scenario, small_budget, "nn_baton")
        c = request_for(tiny_scenario, small_budget, "standalone",
                        template="simba_nvd_3x3")
        with SchedulerService(workers=1, retain=2) as service:
            ha = service.submit(a)
            ha.wait(timeout=300)  # a terminal, NOT retrieved by id
            hb = service.submit(b)
            hb.wait(timeout=300)
            service.result(hb.job_id)  # b retrieved
            service.submit(c).result(timeout=300)  # over cap: evict b
            remaining = {r.job_id for r in service.jobs()}
            assert ha.job_id in remaining  # unretrieved a survived
            assert hb.job_id not in remaining
            assert service.result(ha.job_id).metrics.latency_s > 0

    def test_handle_result_survives_eviction(self, tiny_scenario,
                                             small_budget):
        """An open handle never loses its result to the retain cap."""
        a = request_for(tiny_scenario, small_budget, "standalone")
        b = request_for(tiny_scenario, small_budget, "nn_baton")
        with SchedulerService(workers=1, retain=1) as service:
            first = service.submit(a)
            second = service.submit(b)
            second.wait(timeout=300)  # finishing b evicts a's record
            with pytest.raises(JobNotFoundError):
                service.result(first.job_id)  # by-id: window semantics
            # ...but the handle kept its completion slot
            assert first.result(timeout=300).metrics.latency_s > 0
            assert first.record().state == DONE

    def test_close_cancel_pending_skips_the_backlog(self, gated_service):
        """Prompt shutdown (the `scar serve` Ctrl-C path): queued jobs
        cancel instead of draining; the running one still finishes."""
        service, gated, started, release, order = gated_service
        running = service.submit(gated)
        assert started.wait(timeout=60)
        backlog = [service.submit(gated.replace(prov_limit=63 - i))
                   for i in range(3)]
        # Close while the worker is still gated: the backlog cancels
        # before it could ever be popped, with no race on release.
        closer = threading.Thread(
            target=lambda: service.close(cancel_pending=True))
        closer.start()
        for handle in backlog:
            assert handle.wait(timeout=60).state == CANCELLED
        release.set()
        closer.join(timeout=60)
        assert not closer.is_alive()
        assert running.record().state == DONE
        assert order == [64]  # the backlog never ran

    def test_wait_timeout_raises(self, gated_service):
        service, gated, started, release, order = gated_service
        handle = service.submit(gated)
        with pytest.raises(ServiceError, match="still"):
            handle.wait(timeout=0.05)
        release.set()

    def test_bad_workers_rejected(self):
        with pytest.raises(ConfigError, match="workers"):
            SchedulerService(workers=0)


class TestLifecycleBugfixes:
    @pytest.fixture
    def gated_service(self, tiny_scenario, small_budget):
        registry, started, release, order = gated_registry()
        service = SchedulerService(Session(registry), workers=1)
        gated = ScheduleRequest.for_scenario(
            tiny_scenario, template="het_sides_3x3", policy="gated",
            budget=small_budget, nsplits=1)
        yield service, gated, started, release, order
        release.set()
        service.close()

    def test_wait_timeout_survives_eviction(self, tiny_scenario,
                                            small_budget):
        """A by-id wait() whose timeout races retain-eviction returns
        the completion record instead of raising JobNotFoundError: the
        completion slot outlives eviction, like JobHandle.record()."""
        with SchedulerService(workers=1, retain=1) as service:
            a = service.submit(
                request_for(tiny_scenario, small_budget, "standalone"))
            a.wait(timeout=300)  # a is terminal, retained for now
            # Stall the waiter deterministically: its event "times out"
            # only after the test has evicted the job.
            entered = threading.Event()
            evicted = threading.Event()

            class _StalledEvent:
                @staticmethod
                def wait(timeout=None):
                    entered.set()
                    evicted.wait(timeout=60)
                    return False  # report a timeout

                @staticmethod
                def set():
                    pass

            service._completions[a.job_id].event = _StalledEvent()
            outcome: dict = {}

            def waiter():
                try:
                    outcome["record"] = service.wait(a.job_id,
                                                     timeout=0.01)
                except ServiceError as exc:
                    outcome["error"] = exc

            thread = threading.Thread(target=waiter)
            thread.start()
            assert entered.wait(timeout=60)
            b = service.submit(
                request_for(tiny_scenario, small_budget, "nn_baton"))
            b.wait(timeout=300)  # a second terminal job evicts a
            with pytest.raises(JobNotFoundError):
                service.job(a.job_id)
            evicted.set()
            thread.join(timeout=60)
            assert not thread.is_alive()
        assert "error" not in outcome, outcome.get("error")
        assert outcome["record"].state == DONE

    def test_concurrent_close_waits_for_drain(self, gated_service):
        """Every close(wait=True) caller blocks until the workers are
        joined -- the second closer must not return early just because
        the closed flag was already up."""
        service, gated, started, release, order = gated_service
        handle = service.submit(gated)
        assert started.wait(timeout=60)
        closers = [threading.Thread(target=service.close)
                   for _ in range(2)]
        for thread in closers:
            thread.start()
        # The worker is still gated, so neither closer may have
        # returned yet -- the old code let the second one through.
        time.sleep(0.3)
        assert all(thread.is_alive() for thread in closers)
        release.set()
        for thread in closers:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in closers)
        assert not any(worker.is_alive()
                       for worker in service._threads)
        assert handle.record().state == DONE


class TestProcessJobBackend:
    def test_process_workers_match_session_submit(self, tiny_scenario,
                                                  small_budget):
        requests = [request_for(tiny_scenario, small_budget, policy)
                    for policy in ("standalone", "scar")]
        reference = [Session().submit(r) for r in requests]
        with SchedulerService(workers=2,
                              job_backend="process") as service:
            handles = service.submit_many(requests)
            results = [h.result(timeout=600) for h in handles]
            assert service.perf_summary()["job_backend"] == "process"
        for got, want in zip(results, reference):
            assert_equivalent(got, want)

    def test_pooled_results_adopt_the_session_memo(self, tiny_scenario,
                                                   small_budget):
        """A pooled job's result lands in the session memo exactly like
        Session.submit's would: the duplicate is the same object."""
        request = request_for(tiny_scenario, small_budget, "standalone")
        with SchedulerService(workers=1,
                              job_backend="process") as service:
            first = service.submit(request).result(timeout=300)
            second = service.submit(request).result(timeout=300)
        assert second is first

    def test_pooled_perf_reports_reach_the_session(self, tiny_scenario,
                                                   small_budget):
        request = request_for(tiny_scenario, small_budget, "scar")
        with SchedulerService(workers=1,
                              job_backend="process") as service:
            service.submit(request).result(timeout=600)
            summary = service.perf_summary()
        assert summary["session"]["num_evaluated"] > 0

    def test_bad_job_backend_rejected(self):
        with pytest.raises(ConfigError, match="job_backend"):
            SchedulerService(job_backend="fibers")


class TestAdmissionControl:
    @pytest.fixture
    def gated_service(self, tiny_scenario, small_budget):
        registry, started, release, order = gated_registry()
        service = SchedulerService(Session(registry), workers=1,
                                   max_pending=1)
        gated = ScheduleRequest.for_scenario(
            tiny_scenario, template="het_sides_3x3", policy="gated",
            budget=small_budget, nsplits=1)
        yield service, gated, started, release
        release.set()
        service.close()

    def test_queue_full_rejects_submit(self, gated_service):
        service, gated, started, release = gated_service
        running = service.submit(gated)
        assert started.wait(timeout=60)  # RUNNING does not count
        queued = service.submit(gated.replace(prov_limit=63))
        with pytest.raises(ServiceOverloadedError, match="max_pending"):
            service.submit(gated.replace(prov_limit=62))
        # The backlog drains; admission reopens.
        release.set()
        assert running.result(timeout=300) is not None
        assert queued.result(timeout=300) is not None
        accepted = service.submit(gated.replace(prov_limit=61))
        assert accepted.result(timeout=300) is not None

    def test_batch_admission_is_all_or_nothing(self, gated_service):
        service, gated, started, release = gated_service
        service.submit(gated)
        assert started.wait(timeout=60)
        before = service.state_counts()["total"]
        batch = [gated.replace(prov_limit=63 - i) for i in range(2)]
        with pytest.raises(ServiceOverloadedError, match="batch of 2"):
            service.submit_many(batch)
        assert service.state_counts()["total"] == before  # nothing queued

    def test_bad_max_pending_rejected(self):
        with pytest.raises(ConfigError, match="max_pending"):
            SchedulerService(max_pending=0)


class TestSharedStore:
    def test_store_served_result_matches_fresh_search(self, tmp_path,
                                                      tiny_scenario,
                                                      small_budget):
        from repro.sweep import ResultStore

        request = request_for(tiny_scenario, small_budget, "scar")
        reference = Session().submit(request)
        path = tmp_path / "cache.jsonl"
        with SchedulerService(Session(),
                              store=ResultStore(path)) as replica_a:
            computed = replica_a.submit(request).result(timeout=600)
            stats_a = replica_a.perf_summary()["store"]
        assert stats_a["misses"] == 1 and stats_a["hits"] == 0
        assert_equivalent(computed, reference)
        # A second replica (fresh session, fresh store object, same
        # path) serves the schedule from the store, without a search.
        with SchedulerService(Session(),
                              store=ResultStore(path)) as replica_b:
            served = replica_b.submit(request).result(timeout=60)
            summary = replica_b.perf_summary()
        assert summary["store"]["hits"] == 1
        assert summary["store"]["hit_rate"] == 1.0
        assert_equivalent(served, reference)
        # The other replica's engine counters were not adopted into
        # this replica's perf log along with its result.
        assert summary["session"]["num_evaluated"] == 0

    def test_refresh_on_miss_sees_late_appends(self, tmp_path,
                                               tiny_scenario,
                                               small_budget):
        """A store object opened before another replica recorded still
        serves the hit: the miss path refreshes from the shared file."""
        from repro.sweep import ResultStore

        request = request_for(tiny_scenario, small_budget, "standalone")
        path = tmp_path / "cache.jsonl"
        mine = ResultStore(path)  # opened first: snapshot is empty
        ResultStore(path).record(Session().submit(request),
                                 key=request.cache_key())
        with SchedulerService(Session(), store=mine) as service:
            service.submit(request).result(timeout=300)
            assert service.perf_summary()["store"]["hits"] == 1

    def test_unmemoizable_requests_bypass_the_store(self, tmp_path,
                                                    tiny_scenario,
                                                    small_budget):
        from repro.sweep import ResultStore

        request = request_for(tiny_scenario, small_budget, "standalone",
                              memoize=False)
        with SchedulerService(
                Session(),
                store=ResultStore(tmp_path / "c.jsonl")) as service:
            service.submit(request).result(timeout=300)
            summary = service.perf_summary()
        assert summary["store"] == {"hits": 0, "misses": 0,
                                    "evictions": 0, "hit_rate": 0.0}


class TestPerfSummary:
    def test_counts_states_and_aggregates_timings(self, tiny_scenario,
                                                  small_budget):
        good = request_for(tiny_scenario, small_budget, "scar")
        bad = ScheduleRequest(scenario_id=99, policy="standalone",
                              budget=small_budget, nsplits=1)
        with SchedulerService(workers=2) as service:
            for handle in service.submit_many([good, bad]):
                handle.wait(timeout=600)
            summary = service.perf_summary()
        assert summary["jobs"]["total"] == 2
        assert summary["jobs"][DONE] == 1
        assert summary["jobs"][FAILED] == 1
        assert summary["queue"]["count"] == 2
        assert summary["run"]["count"] == 2
        assert summary["run"]["total_s"] > 0
        # the SCAR run's perf report landed in the wrapped session
        assert summary["session"]["num_evaluated"] > 0


class TestTimingSummary:
    def test_accumulates(self):
        summary = TimingSummary.from_samples([1.0, 3.0, 2.0])
        assert summary.count == 3
        assert summary.total_s == 6.0
        assert summary.mean_s == 2.0
        assert summary.max_s == 3.0

    def test_empty(self):
        summary = TimingSummary()
        assert summary.mean_s == 0.0
        assert summary.to_dict() == {"count": 0, "total_s": 0.0,
                                     "mean_s": 0.0, "max_s": 0.0}

    def test_merge_is_associative(self):
        a = TimingSummary.from_samples([1.0, 2.0])
        b = TimingSummary.from_samples([4.0])
        c = TimingSummary.from_samples([0.5, 3.0])
        merged = a.merge(b).merge(c)
        assert merged == a.merge(b.merge(c))
        assert merged == TimingSummary.from_samples(
            [1.0, 2.0, 4.0, 0.5, 3.0])
