"""Smoke tests for the runnable examples (wire-format drift gate).

``examples/api_demo.py`` asserts the JSON round-trip internally, so
running it under the installed source tree fails loudly if the wire
format drifts from what :mod:`repro.api` emits.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_api_demo_runs_and_round_trips():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / "api_demo.py")],
        capture_output=True, text=True, timeout=300, env=env,
        cwd=REPO_ROOT)
    assert proc.returncode == 0, proc.stderr
    assert "wire round-trip OK" in proc.stdout
    assert "scar" in proc.stdout and "standalone" in proc.stdout
    assert "evaluations" in proc.stdout  # perf summary rendered
