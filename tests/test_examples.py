"""Smoke tests for the runnable examples (wire-format drift gate).

``examples/api_demo.py`` and ``examples/service_demo.py`` assert the
JSON round-trips and the service parity contract internally, so running
them under the installed source tree fails loudly if the wire format
drifts from what :mod:`repro.api` / :mod:`repro.service` emit.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run_example(name: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / name)],
        capture_output=True, text=True, timeout=300, env=env,
        cwd=REPO_ROOT)


def test_api_demo_runs_and_round_trips():
    proc = _run_example("api_demo.py")
    assert proc.returncode == 0, proc.stderr
    assert "wire round-trip OK" in proc.stdout
    assert "scar" in proc.stdout and "standalone" in proc.stdout
    assert "evaluations" in proc.stdout  # perf summary rendered


def test_service_demo_runs_with_live_server_parity():
    proc = _run_example("service_demo.py")
    assert proc.returncode == 0, proc.stderr
    assert "service parity OK" in proc.stdout
    assert "job record wire round-trip OK" in proc.stdout
    assert "QUEUED -> RUNNING -> DONE" in proc.stdout
    assert "per-job perf" in proc.stdout
