"""Unit tests for the baseline schedulers."""

import pytest

from repro.core.baselines import NNBatonScheduler, StandaloneScheduler
from repro.errors import SchedulingError
from repro.workloads.model import ModelInstance, Scenario


class TestStandalone:
    def test_one_chiplet_per_model(self, tiny_scenario, nvd_mcm):
        result = StandaloneScheduler(nvd_mcm).schedule(tiny_scenario)
        result.schedule.validate(tiny_scenario)
        assert result.schedule.num_windows == 1
        window = result.schedule.windows[0]
        assert len(window.chains) == 2
        for model, chain in enumerate(window.chains):
            assert len(chain) == 1
            assert chain[0].node == model

    def test_concurrent_latency_is_max(self, tiny_scenario, nvd_mcm):
        result = StandaloneScheduler(nvd_mcm).schedule(tiny_scenario)
        window = result.metrics.windows[0]
        assert window.latency_s == pytest.approx(
            max(m.latency_s for m in window.per_model))

    def test_too_many_models_rejected(self, tiny_conv_model,
                                      tiny_gemm_model, het_2x2):
        instances = tuple(
            ModelInstance(tiny_conv_model.layers and tiny_conv_model, 1)
            for _ in range(1))
        # Build a 5-model scenario for a 4-chiplet MCM.
        from repro.workloads.layer import conv
        from repro.workloads.model import Model
        models = tuple(
            ModelInstance(Model(name=f"m{i}", layers=(
                conv("l", c=2, k=2, y=2, x=2),)), 1)
            for i in range(5))
        scenario = Scenario(name="wide", instances=models)
        with pytest.raises(SchedulingError):
            StandaloneScheduler(het_2x2).schedule(scenario)


class TestNNBaton:
    def test_sequential_windows(self, tiny_scenario, nvd_mcm):
        result = NNBatonScheduler(nvd_mcm).schedule(tiny_scenario)
        result.schedule.validate(tiny_scenario)
        assert result.schedule.num_windows == len(tiny_scenario)
        for window in result.schedule.windows:
            assert len(window.chains) == 1
            assert window.chains[0][0].node == 0

    def test_sequential_latency_is_sum(self, tiny_scenario, nvd_mcm):
        nn = NNBatonScheduler(nvd_mcm).schedule(tiny_scenario)
        stand = StandaloneScheduler(nvd_mcm).schedule(tiny_scenario)
        # Sequential execution sums model latencies; concurrent takes max.
        assert nn.metrics.latency_s > stand.metrics.latency_s

    def test_custom_start_node(self, tiny_scenario, nvd_mcm):
        result = NNBatonScheduler(nvd_mcm, start_node=4) \
            .schedule(tiny_scenario)
        assert all(w.chains[0][0].node == 4
                   for w in result.schedule.windows)

    def test_nn_baton_agnostic_to_heterogeneity(self, tiny_scenario,
                                                het_mcm, nvd_mcm):
        """NN-baton uses its starting chiplet regardless of composition."""
        het = NNBatonScheduler(het_mcm).schedule(tiny_scenario)
        nodes = {seg.node for w in het.schedule.windows
                 for chain in w.chains for seg in chain}
        assert nodes == {0}
