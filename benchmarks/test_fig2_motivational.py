"""Bench: Fig. 2 motivational study (2x2 heterogeneous MCM)."""

from repro.experiments import run_fig2


def test_fig2_motivational(benchmark, config):
    result = benchmark.pedantic(lambda: run_fig2(config.budget),
                                rounds=1, iterations=1)
    print("\n" + result.render())
    # Shape checks mirroring the paper's panel.
    assert result.single_ratios["A3_scar_het"] < 1.0
    assert min(result.multi_ratios["B2_scar_spatial"],
               result.multi_ratios["B3_scar_temporal"]) < 1.0
