"""Bench: warm incremental rescheduling over a dynamic tenant trace.

Replays a periodic AR/VR tenant trace (two resident tenants plus two
recurring bursty ones -- recurring active sets are exactly the workload
the warm session's result memo and per-scenario evaluator caches
target), once warm and once cold, then

* asserts every event's warm result is **bit-identical** to its cold
  counterpart (:meth:`ScheduleResult.same_payload` -- the sim layer's
  parity contract: warmth must never change results),
* asserts the warm replay re-costs at least
  :data:`MIN_RECOST_REDUCTION` fewer segments than the cold replay (the
  acceptance gate for the incremental-rescheduling machinery), and
* records both replays' sim reports into ``benchmarks/BENCH_sim.json``.
"""

from __future__ import annotations

from repro.sim import TenantEvent, Trace, build_report, replay_parity

#: Minimum fraction of segment re-costings the warm replay must save
#: versus cold on the periodic trace (the ISSUE-8 acceptance criterion
#: is 40%; the trace below measures ~47% at the fast budget).
MIN_RECOST_REDUCTION = 0.4


def _arrive(tick, tenant, model, batch, deadline_s=None):
    return TenantEvent(tick=tick, kind="arrive", tenant=tenant,
                       model=model, batch=batch, deadline_s=deadline_s)


def _depart(tick, tenant):
    return TenantEvent(tick=tick, kind="depart", tenant=tenant)


def periodic_trace() -> Trace:
    """Two resident tenants, two periodically recurring bursty ones.

    The residents' pair set recurs every time a burst ends, and each
    burst re-arrives with its original workload, so 6 of the 11
    non-empty events revisit an already-scheduled tenant set.
    """
    base_eye, base_hand = "eyecod#base", "hand_sp#base"
    burst_eye, burst_emf = "eyecod#burst", "emformer#burst"
    events = sorted([
        _arrive(0, base_eye, "eyecod", 2, deadline_s=0.4),
        _arrive(0, base_hand, "hand_sp", 1),
        _arrive(1, burst_eye, "eyecod", 4, deadline_s=0.6),
        _depart(2, burst_eye),
        _arrive(3, burst_emf, "emformer", 2, deadline_s=0.3),
        _depart(4, burst_emf),
        _arrive(5, burst_eye, "eyecod", 4, deadline_s=0.6),
        _depart(6, burst_eye),
        _arrive(7, burst_emf, "emformer", 2, deadline_s=0.3),
        _depart(8, burst_emf),
        _depart(9, base_eye),
        _depart(9, base_hand),
    ], key=TenantEvent.sort_key)
    return Trace(name="sim:periodic:arvr", events=tuple(events),
                 use_case="arvr")


def test_sim_warm_replay(benchmark, config, bench_artifact):
    trace = periodic_trace()
    results = {}

    def run_both():
        results["warm"], results["cold"], results["parity"] = \
            replay_parity(trace, template="het_sides_3x3",
                          nsplits=config.nsplits, budget=config.budget)
        return results["parity"]

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    warm, cold, parity = \
        results["warm"], results["cold"], results["parity"]

    # Parity: warmth is pure memoization, event by event.
    assert parity == [True] * len(trace.events), (
        f"warm replay diverged from cold at events "
        f"{[i for i, ok in enumerate(parity) if not ok]}")

    warm_report = build_report(trace, "warm", warm)
    cold_report = build_report(trace, "cold", cold)
    assert warm_report.memo_hits > 0
    assert cold_report.memo_hits == 0
    assert cold_report.total_segments_recosted > 0

    reduction = 1 - (warm_report.total_segments_recosted
                     / cold_report.total_segments_recosted)
    assert reduction >= MIN_RECOST_REDUCTION, (
        f"warm replay saved only {reduction:.1%} of segment "
        f"re-costings (gate: {MIN_RECOST_REDUCTION:.0%})")

    data = {
        "trace": trace.to_dict(),
        "warm": warm_report.to_dict(),
        "cold": cold_report.to_dict(),
        "recost_reduction": reduction,
        "memo_hits": warm_report.memo_hits,
        "bit_identical": True,
    }
    print(f"\nperiodic trace ({len(trace.events)} events): warm "
          f"{warm_report.total_segments_recosted}/"
          f"{cold_report.total_segments_recosted} cold segments "
          f"re-costed ({reduction:.1%} saved, "
          f"{warm_report.memo_hits} memo hits), "
          f"deadline misses {warm_report.deadline_miss_rate:.1%}")
    path = bench_artifact("sim", data)
    print(f"artifact: {path}")
