"""Bench: incremental `scar lint` -- warm-cache re-lint speedup.

Lints a copy of the shipped ``src/`` tree (copied to a temp dir so the
bench never mutates the repo), then touches one near-leaf file
(``repro/cli.py``) and re-lints warm.  The artifact gates two
invariants CI relies on:

* the shipped tree lints **clean** with every checker enabled;
* a one-file touch re-analyzes only that file plus its direct
  importers, making the warm re-lint at least 5x faster than the cold
  run (the whole point of the content-hash cache).
"""

from __future__ import annotations

import shutil
import time
from pathlib import Path

from repro.analysis import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[1]


def _copy_tree(target: Path) -> Path:
    """Copy everything the lint needs: sources, golden, docs."""
    root = target / "repo"
    root.mkdir()
    shutil.copytree(REPO_ROOT / "src", root / "src")
    shutil.copytree(REPO_ROOT / "analysis", root / "analysis")
    for doc in ("README.md", "DESIGN.md"):
        shutil.copy(REPO_ROOT / doc, root / doc)
    return root


def test_lint_incremental(benchmark, bench_artifact, tmp_path):
    root = _copy_tree(tmp_path)
    cache = root / "lint-cache.jsonl"

    start = time.perf_counter()
    cold = lint_paths([root / "src"], root=root, cache_path=cache)
    cold_s = time.perf_counter() - start
    assert cold.clean, [str(f) for f in cold.findings]
    assert cold.cache_hits == 0

    # Touch one near-leaf file: only it and its direct importers
    # (repro.__main__) may re-analyze on the warm run.
    touched = root / "src" / "repro" / "cli.py"
    touched.write_text(touched.read_text(encoding="utf-8")
                       + "\n# bench touch\n", encoding="utf-8")

    start = time.perf_counter()
    warm = lint_paths([root / "src"], root=root, cache_path=cache)
    warm_s = time.perf_counter() - start
    assert warm.clean, [str(f) for f in warm.findings]
    assert warm.cache_misses <= 4, warm.cache_misses
    speedup = cold_s / warm_s if warm_s else float("inf")
    assert speedup >= 5.0, (cold_s, warm_s)

    # Steady state: nothing changed, every per-file result reused.
    steady = benchmark.pedantic(
        lambda: lint_paths([root / "src"], root=root,
                           cache_path=cache),
        rounds=1, iterations=1)
    assert steady.clean
    assert steady.cache_misses == 0

    files = steady.cache_hits
    print(f"\nlint incremental: {files} files, cold {cold_s:.2f}s, "
          f"one-touch warm {warm_s:.2f}s ({speedup:.1f}x)")
    bench_artifact("lint", {
        "files": files,
        "findings": 0,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 2),
        "warm_misses": warm.cache_misses,
        "warm_hits": warm.cache_hits,
    })
