"""Bench: Fig. 9 / Table VI -- Het-Sides Scenario-4 schedule breakdown.

Uses the paper's nsplits=4 (five candidate windows) regardless of the
fast/full budget so the breakdown table has the paper's shape.
"""

from dataclasses import replace

from repro.experiments import run_breakdown
from repro.workloads import scenario


def test_fig9_table6_breakdown(benchmark, config):
    cfg = replace(config, nsplits=4)
    result = benchmark.pedantic(
        lambda: run_breakdown(scenario_id=4, strategy="het_sides",
                              config=cfg),
        rounds=1, iterations=1)
    print("\n" + result.render())
    sc = scenario(4)
    # Every model's layers are fully accounted for.
    for inst in sc:
        assert sum(result.per_model_layers[inst.name]) == inst.num_layers
    # Paper: the small ResNet-50 workload finishes in the early windows
    # while the LMs dominate the later ones (anti-starvation packing).
    resnet = result.per_model_layers["resnet50"]
    assert resnet[0] > 0
    assert sum(resnet[:2]) >= sum(resnet) // 2
