"""Bench: Sec. V-E greedy (Alg. 1) vs uniform packing ablation."""

from repro.experiments import run_packing_ablation


def test_ablation_packing(benchmark, config):
    result = benchmark.pedantic(lambda: run_packing_ablation(config),
                                rounds=1, iterations=1)
    print("\n" + result.render())
    # Paper: greedy packing yields a 21.8% speedup over uniform packing.
    assert result.speedup > 1.0
