"""Bench: vectorized cost kernel guard rail (``eval_mode="vector"``).

Runs the evolutionary (GA) segmentation search on the datacenter
workload twice -- once per costing kernel -- and gates the numpy tensor
kernel (:mod:`repro.engine.tensorkernel`) on two promises:

* **Parity.**  The vector run is **bit-identical** to the scalar
  reference: schedule, metrics, candidate population, evaluation count
  and the delta-evaluation accounting (``num_segments`` /
  ``num_segments_recosted``) all match exactly.
* **Throughput.**  Scoring the GA run's own chain workload -- every
  (chain, congestion) costing the search actually performed, replayed
  from cold caches -- must be at least :data:`MIN_KERNEL_SPEEDUP` times
  faster through the tensor kernel than through the scalar reference.

The whole-run wall also rides along in ``BENCH_kernel.json``
(:data:`MIN_SCHEDULE_SPEEDUP` floor): it is a much weaker signal,
because an end-to-end ``schedule()`` spends roughly half its time in
machinery both kernels share -- GA bookkeeping, packing, cache keys,
candidate assembly -- which caps the whole-run ratio near 2x the
kernel's share and makes it noisy on loaded CI runners.  The kernel
replay times exactly the Sec. III-E costings, which is what the tensor
kernel replaces.
"""

from __future__ import annotations

import time

import pytest

np = pytest.importorskip("numpy")

from repro.core import SCARScheduler, objective_by_name
from repro.core.evalcache import EvalCache
from repro.core.evolutionary import GAConfig
from repro.engine.evaluator import CandidateEvaluator
from repro.engine.tensorkernel import TensorEvaluator
from repro.mcm import templates
from repro.workloads import scenario

#: Minimum chain-scoring speedup of the tensor kernel over the scalar
#: reference on the GA workload (the ISSUE-9 acceptance gate; measured
#: ~20x on an idle machine, so 10x leaves 2x headroom for CI noise).
MIN_KERNEL_SPEEDUP = 10.0

#: Sanity floor on the whole ``schedule()`` wall ratio (measured ~7x;
#: kept loose because the end-to-end wall is dominated by shared search
#: machinery and runner noise, see the module docstring).
MIN_SCHEDULE_SPEEDUP = 2.0

#: Datacenter scenario with models long enough for multi-cut mutations
#: (the same GA workload ``BENCH_engine.json`` gates on).
GA_SCENARIO = 4

#: A GA budget big enough to amortize the tensor kernel's one-time
#: table builds the way a real search does (the default quick GA only
#: re-costs a few hundred chains, which under-reports the kernel).
GA_CONFIG = GAConfig(population_size=20, generations=14,
                     crossover_rate=0.7, mutation_rate=0.5, tournament=2)

#: Cold-cache replays per kernel; the minimum wall wins (load spikes on
#: shared runners only ever slow a replay down, never speed it up).
REPLAY_ROUNDS = 3


def _scheduler(config, mcm, eval_mode: str) -> SCARScheduler:
    return SCARScheduler(mcm, objective=objective_by_name("edp"),
                         nsplits=config.nsplits, budget=config.budget,
                         seg_search="evolutionary", ga_config=GA_CONFIG,
                         eval_mode=eval_mode)


def _record_chain_workload(scheduler: SCARScheduler,
                           recorded: list) -> None:
    """Capture every (chain, congestion) costing ``schedule()`` runs.

    Wraps the evaluators the scheduler builds so each delta-cache miss
    -- the costings that actually execute a kernel -- lands in
    ``recorded``.  Congestion dicts are built fresh per window
    evaluation and never mutated afterwards, so keeping references is
    safe.
    """
    inner_factory = scheduler.make_evaluator

    def make_evaluator(scenario, cache=None):
        evaluator = inner_factory(scenario, cache=cache)
        chain_metrics = evaluator._chain_metrics

        def traced(chain, congestion):
            recorded.append((chain, congestion))
            return chain_metrics(chain, congestion)

        evaluator._chain_metrics = traced
        return evaluator

    scheduler.make_evaluator = make_evaluator


def _replay(cls, sc, mcm, database, workload) -> tuple[float, list]:
    """Best-of-N cold-cache wall for scoring ``workload`` with ``cls``."""
    best = None
    outputs = None
    for _ in range(REPLAY_ROUNDS):
        evaluator = cls(sc, mcm, database, cache=EvalCache(), delta=True)
        start = time.perf_counter()
        outputs = [evaluator._chain_metrics(chain, congestion)
                   for chain, congestion in workload]
        wall = time.perf_counter() - start
        best = wall if best is None else min(best, wall)
    return best, outputs


def test_kernel_vector_parity_and_throughput(benchmark, config,
                                             bench_artifact):
    sc = scenario(GA_SCENARIO)
    mcm = templates.build("het_sides_3x3", sc.use_case)

    recorded: list = []
    sched_vector = _scheduler(config, mcm, "vector")
    _record_chain_workload(sched_vector, recorded)

    results = {}

    def run_vector():
        results["vector"] = sched_vector.schedule(sc)
        return results["vector"]

    benchmark.pedantic(run_vector, rounds=1, iterations=1)
    vector = results["vector"]
    scalar = _scheduler(config, mcm, "scalar").schedule(sc)

    # Parity gate: the tensor kernel is a reimplementation of the same
    # arithmetic, not an approximation -- not a single result bit moves,
    # including the delta-evaluation accounting.
    assert vector.metrics == scalar.metrics
    assert vector.schedule == scalar.schedule
    assert vector.window_candidates == scalar.window_candidates
    assert vector.num_evaluated == scalar.num_evaluated
    assert vector.perf.num_segments == scalar.perf.num_segments
    assert (vector.perf.num_segments_recosted
            == scalar.perf.num_segments_recosted)
    assert recorded, "the GA search never costed a chain?"

    # Throughput gate: replay the run's own chain workload through both
    # kernels from cold caches (the shared database stays warm -- both
    # kernels read the same memoized per-layer costs).
    database = sched_vector.database
    scalar_wall, scalar_out = _replay(CandidateEvaluator, sc, mcm,
                                      database, recorded)
    vector_wall, vector_out = _replay(TensorEvaluator, sc, mcm,
                                      database, recorded)
    assert scalar_out == vector_out  # parity on every replayed costing

    kernel_speedup = scalar_wall / vector_wall
    assert kernel_speedup >= MIN_KERNEL_SPEEDUP, (
        f"tensor kernel scored the GA chain workload only "
        f"{kernel_speedup:.1f}x faster than the scalar reference "
        f"(gate: {MIN_KERNEL_SPEEDUP:.0f}x)")

    schedule_speedup = (scalar.perf.evals_per_s
                        / vector.perf.evals_per_s)
    # evals_per_s shares num_evaluated, so this is the inverse wall
    # ratio of the two schedule() calls.
    schedule_speedup = 1.0 / schedule_speedup
    assert schedule_speedup >= MIN_SCHEDULE_SPEEDUP, (
        f"vector schedule() ran only {schedule_speedup:.1f}x faster "
        f"end-to-end (floor: {MIN_SCHEDULE_SPEEDUP:.0f}x)")

    chains = len(recorded)
    data = {
        "scenario": GA_SCENARIO,
        "ga_population": GA_CONFIG.population_size,
        "ga_generations": GA_CONFIG.generations,
        "num_chain_costings": chains,
        "kernel_speedup": kernel_speedup,
        "scalar_chains_per_s": chains / scalar_wall,
        "vector_chains_per_s": chains / vector_wall,
        "schedule_speedup": schedule_speedup,
        "scalar": scalar.perf.to_dict(),
        "vector": vector.perf.to_dict(),
        "bit_identical": True,
    }
    print(f"\nGA workload (scenario {GA_SCENARIO}): {chains} chain "
          f"costings replayed; tensor kernel {kernel_speedup:.1f}x "
          f"({chains / vector_wall:.0f} vs {chains / scalar_wall:.0f} "
          f"chains/s), schedule() {schedule_speedup:.1f}x end-to-end")
    print(vector.perf.render())

    path = bench_artifact("kernel", data)
    print(f"\nwrote {path}")
