"""Bench: Table IV -- datacenter latency/EDP search, scenarios 1-5."""

from repro.experiments import run_datacenter
from repro.experiments.datacenter import SEARCHES_TABLE4


def test_table4_datacenter(benchmark, config):
    result = benchmark.pedantic(
        lambda: run_datacenter(config, searches=SEARCHES_TABLE4),
        rounds=1, iterations=1)
    print("\n" + result.render_table4())
    # Paper shape: on the LM-dominated scenarios 1-3, homogeneous NVDLA
    # strategies dominate the Shi-diannao ones in EDP.
    for scenario_id in (1, 2, 3):
        assert result.value("simba_nvd", scenario_id, "edp", "edp") \
            < result.value("simba_shi", scenario_id, "edp", "edp")
    # Het-Sides beats Het-CB on the heavy scenarios (paper insight #3).
    for scenario_id in (4, 5):
        assert result.value("het_sides", scenario_id, "edp", "edp") \
            < result.value("het_cb", scenario_id, "edp", "edp")
