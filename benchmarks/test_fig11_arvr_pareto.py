"""Bench: Fig. 11 -- AR/VR Pareto fronts (scenarios 6, 7, 8, 10)."""

import os

from repro.experiments import run_fig11
from repro.experiments.pareto import run_pareto


def test_fig11_arvr_pareto(benchmark, config):
    if os.environ.get("REPRO_FULL"):
        runner = lambda: run_fig11(config)  # noqa: E731
    else:
        runner = lambda: run_pareto((8, 10), config,  # noqa: E731
                                    searches=("edp",))
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    print("\n" + result.render())
    for scenario_id in result.scenario_ids:
        for strategy in result.strategies:
            assert result.points[(scenario_id, strategy)]
