"""Bench: Sec. V-E time-partitioning ablation (nsplits sweep)."""

import os

from repro.experiments import run_nsplits_ablation


def test_ablation_nsplits(benchmark, config):
    values = (1, 2, 3, 4, 5) if os.environ.get("REPRO_FULL") else (1, 2, 3)
    result = benchmark.pedantic(
        lambda: run_nsplits_ablation(config, values=values),
        rounds=1, iterations=1)
    print("\n" + result.render())
    assert set(result.edps) == set(values)
    # Time windowing should help at least somewhere in the sweep
    # (the paper reports 1.25x average reduction up to nsplits=4).
    best = min(result.edps.values())
    assert best <= result.edps[values[0]]
