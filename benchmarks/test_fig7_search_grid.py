"""Bench: Fig. 7 -- 3x3 (search target x evaluation metric) grid.

The full figure sweeps scenarios 1-5 under three search targets; the fast
bench restricts to scenarios 1 and 4 (the light and heavy extremes) to
keep runtime bounded while preserving the figure's structure.
"""

import os

from repro.experiments import run_datacenter


def test_fig7_search_grid(benchmark, config):
    scenario_ids = (1, 2, 3, 4, 5) if os.environ.get("REPRO_FULL") \
        else (1, 4)
    result = benchmark.pedantic(
        lambda: run_datacenter(config, scenario_ids=scenario_ids),
        rounds=1, iterations=1)
    print("\n" + result.render_fig7())
    # Matching-criteria diagonal exists and normalizes to the baseline.
    for search in ("latency", "energy", "edp"):
        grid = result.normalized_grid(search, search)
        assert grid["stand_nvd"][scenario_ids[0]] == 1.0
    # Latency search produces no-slower schedules than the energy search
    # when evaluated on latency (sanity of objective plumbing).
    for scenario_id in scenario_ids:
        lat_search = result.value("simba_nvd", scenario_id, "latency",
                                  "latency")
        energy_search = result.value("simba_nvd", scenario_id, "energy",
                                     "latency")
        assert lat_search <= energy_search * 1.25
