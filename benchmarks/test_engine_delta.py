"""Bench: delta-evaluation guard rail for the unified engine layer.

Runs the evolutionary (GA) segmentation search -- the workload whose
mutation moves the delta-costing fast path targets -- with the fast
budget, once with delta evaluation on (the default everywhere) and once
with it off, then

* asserts the two runs are **bit-identical** (schedule, metrics,
  evaluation counts -- delta costing is a pure memoization),
* asserts delta evaluation cuts the number of actually re-costed
  segments by at least :data:`MIN_SEGMENT_REDUCTION` (the engine-layer
  acceptance gate: a key regression that stops chains from being reused
  fails here before it silently slows the 6x6 experiments down), and
* records the counters into ``benchmarks/BENCH_engine.json``.
"""

from __future__ import annotations

from repro.core import SCARScheduler, objective_by_name
from repro.mcm import templates
from repro.workloads import scenario

#: Minimum fraction of segment re-costings delta evaluation must save
#: on the GA workload (the ISSUE-4 acceptance criterion is 30%).
MIN_SEGMENT_REDUCTION = 0.3

#: Datacenter scenario with models long enough for multi-cut mutations.
GA_SCENARIO = 4


def _run(config, use_delta: bool):
    sc = scenario(GA_SCENARIO)
    mcm = templates.build("het_sides_3x3", sc.use_case)
    scheduler = SCARScheduler(mcm, objective=objective_by_name("edp"),
                              nsplits=config.nsplits,
                              budget=config.budget,
                              seg_search="evolutionary",
                              use_delta=use_delta)
    return scheduler.schedule(sc)


def test_engine_delta_evaluation(benchmark, config, bench_artifact):
    results = {}

    def run_delta_on():
        results["on"] = _run(config, use_delta=True)
        return results["on"]

    benchmark.pedantic(run_delta_on, rounds=1, iterations=1)
    delta_on = results["on"]
    delta_off = _run(config, use_delta=False)

    # Delta costing is pure memoization: not a single result bit moves.
    assert delta_on.metrics == delta_off.metrics
    assert delta_on.schedule == delta_off.schedule
    assert delta_on.num_evaluated == delta_off.num_evaluated

    # Without the fast path every segment re-costs.
    off_perf = delta_off.perf
    assert off_perf.num_segments_recosted == off_perf.num_segments > 0

    on_perf = delta_on.perf
    reduction = 1 - (on_perf.num_segments_recosted
                     / off_perf.num_segments_recosted)
    assert reduction >= MIN_SEGMENT_REDUCTION, (
        f"delta evaluation saved only {reduction:.1%} of segment "
        f"re-costings (gate: {MIN_SEGMENT_REDUCTION:.0%})")

    chain = on_perf.cache_table("chain")
    data = {
        "scenario": GA_SCENARIO,
        "delta_on": on_perf.to_dict(),
        "delta_off": off_perf.to_dict(),
        "segment_reduction": reduction,
        "chain_hit_rate": chain.hit_rate,
        "bit_identical": True,
    }
    print(f"\nGA workload (scenario {GA_SCENARIO}): "
          f"{on_perf.num_segments_recosted}/{off_perf.num_segments_recosted}"
          f" segments re-costed with delta on/off "
          f"({reduction:.1%} saved, chain hit rate {chain.hit_rate:.1%})")
    print(on_perf.render())

    path = bench_artifact("engine", data)
    print(f"\nwrote {path}")
