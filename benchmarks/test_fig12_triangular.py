"""Bench: Fig. 12 -- triangular-NoP topology ablation (scenarios 3, 4)."""

from repro.experiments import run_fig12


def test_fig12_triangular(benchmark, config):
    result = benchmark.pedantic(lambda: run_fig12(config),
                                rounds=1, iterations=1)
    print("\n" + result.render())
    # Paper shape: performance patterns mirror the mesh results --
    # homogeneous NVDLA ahead on the LM-heavy scenario 3.
    normed3 = result.normalized_edp(3)
    assert normed3["simba_t_nvd"] < normed3["simba_t_shi"]
    # Het-T beats the weaker homogeneous triangular option on scenario 4.
    normed4 = result.normalized_edp(4)
    assert normed4["het_t"] < normed4["simba_t_shi"]
