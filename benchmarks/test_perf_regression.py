"""Bench: evaluation-acceleration guard rail (cache + parallel search).

Runs the fast Fig. 8 Pareto workload (datacenter scenarios 3 and 4 on the
Het-Sides 3x3) serially and with ``jobs=2``, then

* asserts the parallel run is **bit-identical** to the serial one,
* asserts the segment-cost cache keeps the hit rate on cost-model
  lookups at >= 50% (i.e. at least a 2x reduction in cost-model
  recomputations), and
* records evals/sec + per-table hit rates into
  ``benchmarks/BENCH_evalcache.json``.

A hit rate collapse (e.g. an over-wide cache key) fails this bench before
it can silently slow every experiment down.
"""

from __future__ import annotations

from repro.core import SCARScheduler, objective_by_name
from repro.mcm import templates
from repro.workloads import scenario

#: Minimum acceptable hit rate on the ``compute`` (cost-model) table.
MIN_COMPUTE_HIT_RATE = 0.5

FIG8_SCENARIOS = (3, 4)


def _run(scenario_id: int, config, jobs: int):
    sc = scenario(scenario_id)
    mcm = templates.build("het_sides_3x3", sc.use_case)
    scheduler = SCARScheduler(mcm, objective=objective_by_name("edp"),
                              nsplits=config.nsplits,
                              budget=config.budget, jobs=jobs)
    return scheduler.schedule(sc)


def test_evalcache_regression(benchmark, config, bench_artifact):
    serial = {}

    def run_serial():
        for scenario_id in FIG8_SCENARIOS:
            serial[scenario_id] = _run(scenario_id, config, jobs=1)
        return serial

    benchmark.pedantic(run_serial, rounds=1, iterations=1)

    data = {}
    for scenario_id in FIG8_SCENARIOS:
        result = serial[scenario_id]
        parallel = _run(scenario_id, config, jobs=2)

        # Parallel fan-out must not perturb a single bit of the metrics.
        assert parallel.metrics == result.metrics
        assert parallel.schedule == result.schedule
        assert parallel.num_evaluated == result.num_evaluated

        compute = result.perf.cache_table("compute")
        assert compute.lookups > 0
        assert compute.hit_rate >= MIN_COMPUTE_HIT_RATE, (
            f"scenario {scenario_id}: compute cache hit rate "
            f"{compute.hit_rate:.1%} dropped below "
            f"{MIN_COMPUTE_HIT_RATE:.0%}")

        data[f"scenario_{scenario_id}"] = {
            "serial": result.perf.to_dict(),
            "jobs2": parallel.perf.to_dict(),
            "bit_identical": True,
        }
        print(f"\nscenario {scenario_id}:")
        print(result.perf.render())

    path = bench_artifact("evalcache", data)
    print(f"\nwrote {path}")
