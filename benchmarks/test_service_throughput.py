"""Bench: job-service throughput (jobs/sec, workers=1 vs pooled).

Pushes the quick Fig. 8 workload (scenarios 3 and 4, EDP + latency
objectives) through :class:`~repro.service.SchedulerService` twice --
one worker, then a pool -- and

* asserts pooled results are **bit-identical** to the single-worker run
  (the service determinism contract),
* records jobs/sec plus the per-job queue/run timing summaries into
  ``benchmarks/BENCH_service.json``.

The pool is not required to be faster (job-level threading only overlaps
where requests fan work to processes); the artifact tracks the
trajectory, the bit-identity assertion is the gate.
"""

from __future__ import annotations

import time

from repro.api import ScheduleRequest
from repro.service import SchedulerService

POOL_WORKERS = 4

FIG8_SCENARIOS = (3, 4)
OBJECTIVES = ("edp", "latency")


def _requests(config) -> list[ScheduleRequest]:
    return [
        ScheduleRequest(scenario_id=scenario_id,
                        template="het_sides_3x3", policy="scar",
                        objective=objective, nsplits=config.nsplits,
                        budget=config.budget)
        for scenario_id in FIG8_SCENARIOS
        for objective in OBJECTIVES
    ]


def _run(config, workers: int):
    with SchedulerService(workers=workers) as service:
        started = time.monotonic()
        handles = service.submit_many(_requests(config))
        results = [handle.result(timeout=3600) for handle in handles]
        wall_s = time.monotonic() - started
        summary = service.perf_summary()
    return results, wall_s, summary


def test_service_throughput(benchmark, config, bench_artifact):
    serial = {}

    def run_serial():
        serial["run"] = _run(config, workers=1)
        return serial

    benchmark.pedantic(run_serial, rounds=1, iterations=1)
    serial_results, serial_wall, serial_summary = serial["run"]

    pooled_results, pooled_wall, pooled_summary = _run(
        config, workers=POOL_WORKERS)

    # The pool must not perturb a single bit of any job's payload.
    for one, many in zip(serial_results, pooled_results):
        assert many.same_payload(one)

    num_jobs = len(serial_results)
    data = {
        "num_jobs": num_jobs,
        "serial": {
            "workers": 1,
            "wall_s": serial_wall,
            "jobs_per_s": num_jobs / serial_wall,
            "queue": serial_summary["queue"],
            "run": serial_summary["run"],
        },
        "pooled": {
            "workers": POOL_WORKERS,
            "wall_s": pooled_wall,
            "jobs_per_s": num_jobs / pooled_wall,
            "queue": pooled_summary["queue"],
            "run": pooled_summary["run"],
        },
        "bit_identical": True,
    }
    path = bench_artifact("service", data)
    print(f"\n{num_jobs} jobs: serial {data['serial']['jobs_per_s']:.2f} "
          f"jobs/s, pooled({POOL_WORKERS}) "
          f"{data['pooled']['jobs_per_s']:.2f} jobs/s")
    print(f"wrote {path}")
