"""Bench: sustained service load -- serial vs the scaled configuration.

Models the production deployment the service layer is built for: a
small fleet of ``scar serve`` replicas behind a load balancer, each
seeing the same multi-tenant stream of small scheduling requests
(overlapping traffic is the norm -- identical requests from many
tenants are exactly what conf_micro_OdemaCKF24-style MCM scheduling
serves).  Two configurations run the same ``REPLICAS x UNIQUE_JOBS``
traffic:

* **serial** -- the seed configuration: one thread-backed worker per
  replica, no shared state.  Every replica recomputes every schedule.
* **pooled** -- the scaled configuration: ``POOL_WORKERS``
  process-backed workers per replica plus a shared
  :class:`~repro.sweep.ResultStore` schedule cache, so replicas after
  the first serve their traffic from the store (and multi-core hosts
  additionally overlap the cold searches across processes).

Gates (the CI floor):

* every result in every leg is **bit-identical** (``same_payload``) to
  the serial reference -- process-backed workers and store-served hits
  hold the determinism contract;
* the pooled configuration clears **>= 1.5x** the serial jobs/s;
* the warm replicas report a nonzero store hit-rate.

The artifact records jobs/s, queue/run p50/p99 latencies and the store
hit/miss stats into ``benchmarks/BENCH_service.json``.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.api import ScheduleRequest, Session
from repro.core.budget import SearchBudget
from repro.service import SchedulerService
from repro.sweep import ResultStore
from repro.workloads.layer import conv, gemm
from repro.workloads.model import Model, ModelInstance, Scenario

POOL_WORKERS = 4
#: Replicas per configuration; replicas 2..R hit the shared store.
REPLICAS = 3
#: Distinct small requests per replica (the shared traffic mix).
UNIQUE_JOBS = 80

#: The sustained-load gate: scaled configuration vs seed, jobs/s.
MIN_SPEEDUP = 1.5

_BUDGET = SearchBudget(top_k_segmentations=2, max_segment_candidates=16,
                       max_root_combos=4, max_paths_per_model=4,
                       max_candidates_per_window=40, seed=1)


def _requests() -> list[ScheduleRequest]:
    """UNIQUE_JOBS distinct small scar requests (distinct cache keys)."""
    requests = []
    for i in range(UNIQUE_JOBS):
        model = Model(name=f"tenant{i}", layers=(
            conv("c0", c=3, k=8 + 4 * (i % 5), y=16, x=16, r=3),
            gemm("g0", m=16, n_out=128 + 32 * (i % 7), k_in=64),
        ))
        scenario = Scenario(name=f"mix-{i}", instances=(
            ModelInstance(model, 1 + i % 3),))
        requests.append(ScheduleRequest.for_scenario(
            scenario, policy="scar", template="het_sides_3x3",
            nsplits=1, budget=replace(_BUDGET, seed=i)))
    return requests


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _latency_stats(samples: list[float]) -> dict:
    return {
        "count": len(samples),
        "p50_s": _percentile(samples, 0.50),
        "p99_s": _percentile(samples, 0.99),
        "mean_s": sum(samples) / len(samples) if samples else 0.0,
        "max_s": max(samples, default=0.0),
    }


def _run_replica(requests, *, workers: int, job_backend: str,
                 store_path=None):
    """One replica serving the full request stream (fresh session and,
    like a separate ``scar serve`` process, a fresh store object)."""
    store = ResultStore(store_path) if store_path is not None else None
    with SchedulerService(Session(), workers=workers,
                          job_backend=job_backend,
                          store=store) as service:
        started = time.monotonic()
        handles = service.submit_many(requests)
        results = [handle.result(timeout=3600) for handle in handles]
        wall_s = time.monotonic() - started
        records = service.jobs()
        summary = service.perf_summary()
    return {
        "results": results,
        "wall_s": wall_s,
        "queue_s": [r.queue_s for r in records if r.queue_s is not None],
        "run_s": [r.run_s for r in records if r.run_s is not None],
        "store": summary["store"],
    }


def _run_config(requests, *, workers: int, job_backend: str,
                store_path=None):
    """REPLICAS sequential replica legs over the same traffic."""
    legs = [_run_replica(requests, workers=workers,
                         job_backend=job_backend, store_path=store_path)
            for _ in range(REPLICAS)]
    wall_s = sum(leg["wall_s"] for leg in legs)
    num_jobs = REPLICAS * len(requests)
    stores = [leg["store"] for leg in legs if leg["store"] is not None]
    hits = sum(s["hits"] for s in stores)
    misses = sum(s["misses"] for s in stores)
    return {
        "legs": legs,
        "stats": {
            "replicas": REPLICAS,
            "workers": workers,
            "job_backend": job_backend,
            "wall_s": wall_s,
            "jobs_per_s": num_jobs / wall_s,
            "queue": _latency_stats(
                [s for leg in legs for s in leg["queue_s"]]),
            "run": _latency_stats(
                [s for leg in legs for s in leg["run_s"]]),
            "store": None if not stores else {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / (hits + misses)
                if hits + misses else 0.0,
            },
        },
    }


def test_sustained_service_load(benchmark, tmp_path, bench_artifact):
    requests = _requests()

    serial = {}

    def run_serial():
        serial["config"] = _run_config(requests, workers=1,
                                       job_backend="thread")
        return serial

    benchmark.pedantic(run_serial, rounds=1, iterations=1)
    serial_config = serial["config"]

    pooled_config = _run_config(
        requests, workers=POOL_WORKERS, job_backend="process",
        store_path=tmp_path / "schedule-cache.jsonl")

    # Bit-identity: every leg of every configuration against the serial
    # reference -- process-backed searches and store-served hits alike.
    reference = serial_config["legs"][0]["results"]
    for config in (serial_config, pooled_config):
        for leg in config["legs"]:
            for got, want in zip(leg["results"], reference):
                assert got.same_payload(want)

    serial_stats = serial_config["stats"]
    pooled_stats = pooled_config["stats"]
    speedup = pooled_stats["jobs_per_s"] / serial_stats["jobs_per_s"]

    # The scaling gates (see module docstring).
    warm = pooled_config["legs"][1:]
    assert all(leg["store"]["hits"] > 0 for leg in warm)
    assert speedup >= MIN_SPEEDUP, (
        f"scaled configuration {pooled_stats['jobs_per_s']:.2f} jobs/s "
        f"< {MIN_SPEEDUP}x serial {serial_stats['jobs_per_s']:.2f}")

    num_jobs = REPLICAS * len(requests)
    data = {
        "num_jobs": num_jobs,
        "unique_jobs": len(requests),
        "serial": serial_stats,
        "pooled": pooled_stats,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "bit_identical": True,
    }
    path = bench_artifact("service", data)
    print(f"\n{num_jobs} jobs over {REPLICAS} replicas: "
          f"serial {serial_stats['jobs_per_s']:.2f} jobs/s, "
          f"pooled({POOL_WORKERS} proc + store) "
          f"{pooled_stats['jobs_per_s']:.2f} jobs/s "
          f"({speedup:.2f}x, store hit-rate "
          f"{pooled_stats['store']['hit_rate']:.2f})")
    print(f"queue p50/p99: serial {serial_stats['queue']['p50_s']:.3f}/"
          f"{serial_stats['queue']['p99_s']:.3f}s, pooled "
          f"{pooled_stats['queue']['p50_s']:.3f}/"
          f"{pooled_stats['queue']['p99_s']:.3f}s")
    print(f"wrote {path}")
