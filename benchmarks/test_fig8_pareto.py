"""Bench: Fig. 8 -- datacenter Pareto fronts (scenarios 3 and 4)."""

import os

from repro.experiments import run_fig8
from repro.experiments.pareto import run_pareto


def test_fig8_pareto(benchmark, config):
    if os.environ.get("REPRO_FULL"):
        runner = lambda: run_fig8(config)  # noqa: E731
    else:
        runner = lambda: run_pareto(  # noqa: E731
            (3, 4), config, searches=("latency", "edp"))
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    print("\n" + result.render())
    for scenario_id in result.scenario_ids:
        global_front = result.global_front(scenario_id)
        assert global_front
        # No evaluated point may dominate a global-front point.
        all_points = [p for s in result.strategies
                      for p in result.points[(scenario_id, s)]]
        for point in global_front:
            assert not any(
                q[0] <= point[0] and q[1] <= point[1]
                and (q[0] < point[0] or q[1] < point[1])
                for q in all_points)
