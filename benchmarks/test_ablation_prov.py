"""Bench: Sec. V-E rule-based vs exhaustive PROV ablation."""

import os

from repro.experiments import run_prov_ablation


def test_ablation_prov(benchmark, config):
    scenario_ids = (3, 4, 5) if os.environ.get("REPRO_FULL") else (3,)
    result = benchmark.pedantic(
        lambda: run_prov_ablation(config, scenario_ids=scenario_ids,
                                  strategies=("het_sides",),
                                  prov_limit=16),
        rounds=1, iterations=1)
    print("\n" + result.render())
    # Paper: exhaustive search improves results but insights stay the
    # same; we assert it is never substantially worse than the rule.
    for key, uniform_edp in result.uniform.items():
        assert result.exhaustive[key] <= uniform_edp * 1.25
