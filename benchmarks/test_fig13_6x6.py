"""Bench: Fig. 13 -- 6x6 MCM scaling with evolutionary SEG search.

The runner switches the SEG engine to the GA (population 10, generations
4 at full settings) for 6x6 templates automatically.  The fast bench runs
nsplits=2 only; REPRO_FULL also runs nsplits=3 as in the paper.
"""

import os

from repro.experiments import run_fig13


def test_fig13_6x6(benchmark, config):
    nsplit_values = (2, 3) if os.environ.get("REPRO_FULL") else (2,)
    result = benchmark.pedantic(
        lambda: run_fig13(config, nsplit_values=nsplit_values),
        rounds=1, iterations=1)
    print("\n" + result.render())
    for nsplits in nsplit_values:
        # Paper: Het-Cross achieves a large EDP reduction over Simba-6
        # (Shi); 2.3x at nsplits=2 in the paper.
        assert result.reduction_vs("het_cross", "simba6_shi", nsplits) > 1.0
