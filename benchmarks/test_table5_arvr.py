"""Bench: Table V / Fig. 10 -- AR/VR (XRBench) EDP search, scenarios 6-10."""

from repro.experiments import run_arvr


def test_table5_arvr(benchmark, config):
    result = benchmark.pedantic(lambda: run_arvr(config),
                                rounds=1, iterations=1)
    print("\n" + result.render())
    rel = result.relative("edp")
    # Paper shape: scenario 9 (EyeCod/Hand/Sp2Dense, conv-heavy) favors
    # Shi-style hardware over standalone NVDLA.
    assert rel["stand_shi"][9] < 1.0
    # Heterogeneous strategies beat the homogeneous average on the
    # conv-heavy scenarios.
    for scenario_id in (9, 10):
        avg = (rel["simba_nvd"][scenario_id]
               + rel["simba_shi"][scenario_id]) / 2
        assert rel["het_sides"][scenario_id] <= avg * 1.1
    print(f"\nhet_sides mean EDP improvement vs stand_nvd: "
          f"{result.average_improvement('het_sides') * 100:.1f}% "
          f"(paper: 17%)")
