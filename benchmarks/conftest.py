"""Benchmark configuration.

Benches run the reduced (``fast``) search budget by default so the whole
suite finishes in CI time; set ``REPRO_FULL=1`` to regenerate every
artifact at the paper's full settings (several minutes per bench).

Each bench prints the regenerated table/figure rows, so running with
``pytest benchmarks/ --benchmark-only -s`` (or capturing the output file)
reproduces the paper artifacts alongside the timing numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    if os.environ.get("REPRO_FULL"):
        return ExperimentConfig.full()
    return ExperimentConfig.fast()
