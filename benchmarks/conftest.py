"""Benchmark configuration and ``BENCH_*.json`` artifact plumbing.

Benches run the reduced (``fast``) search budget by default so the whole
suite finishes in CI time; set ``REPRO_FULL=1`` to regenerate every
artifact at the paper's full settings (several minutes per bench).

Each bench prints the regenerated table/figure rows, so running with
``pytest benchmarks/ --benchmark-only -s`` (or capturing the output file)
reproduces the paper artifacts alongside the timing numbers.

Machine-readable trajectory artifacts
-------------------------------------

Benches may additionally record timing / evaluation-count payloads via
the ``bench_artifact`` fixture, which writes ``benchmarks/BENCH_<name>.json``
with the schema::

    {
      "bench":  "<name>",            # artifact name (file stem suffix)
      "budget": "fast" | "full",     # which search budget produced it
      "data":   { ... }              # bench-specific payload; perf-stats
    }                                #   entries use PerfReport.to_dict():
                                     #   wall_s, num_evaluated,
                                     #   num_windows, jobs, evals_per_s,
                                     #   cache[table] -> hits/misses/
                                     #   hit_rate

Artifacts are overwritten on every run, so the committed files always
reflect the latest bench trajectory (the perf-regression bench fails if
the evaluator cache degrades -- see ``test_perf_regression.py``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable

import pytest

from repro.experiments import ExperimentConfig

BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(config, items):
    """Mark everything under benchmarks/ as ``bench``.

    The fast tier-1 loop can then skip the timing rewrites with
    ``pytest -m "not bench"`` (marker declared in pytest.ini).
    """
    for item in items:
        if str(item.fspath).startswith(str(BENCH_DIR)):
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    if os.environ.get("REPRO_FULL"):
        return ExperimentConfig.full()
    return ExperimentConfig.fast()


@pytest.fixture(scope="session")
def bench_artifact() -> Callable[[str, dict], Path]:
    """Writer for ``benchmarks/BENCH_<name>.json`` trajectory artifacts."""

    def write(name: str, data: dict) -> Path:
        path = BENCH_DIR / f"BENCH_{name}.json"
        payload = {
            "bench": name,
            "budget": "full" if os.environ.get("REPRO_FULL") else "fast",
            "data": data,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n")
        return path

    return write
