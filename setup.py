"""Setup shim: metadata lives in pyproject.toml.

Kept so that `pip install -e .` works in offline environments whose
setuptools lacks PEP 660 editable-wheel support (no `wheel` package).
"""
from setuptools import setup

setup()
