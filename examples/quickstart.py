"""Quickstart: schedule a multi-model workload on a heterogeneous MCM.

Builds the paper's Het-Sides 3x3 package (6 NVDLA-style + 3
Shi-diannao-style chiplets), loads Table III's Scenario 2 (GPT-L + BERT-L
+ ResNet-50) and runs the SCAR EDP search, then compares against the
standalone baseline.

Run:  python examples/quickstart.py
"""

from repro import mcm, workloads
from repro.core import (
    QUICK_BUDGET,
    SCARScheduler,
    StandaloneScheduler,
    edp_objective,
)


def main() -> None:
    hardware = mcm.build("het_sides_3x3")
    scenario = workloads.scenario(2)

    print(hardware.summary())
    print(hardware.grid_diagram())
    print()
    print(scenario.summary())
    print()

    # Baseline: every model pinned to its own chiplet.
    baseline = StandaloneScheduler(hardware).schedule(scenario)
    print(f"standalone baseline: {baseline.metrics.summary()}")

    # SCAR: windowing + provisioning + segmentation + tree placement.
    scheduler = SCARScheduler(hardware, objective=edp_objective(),
                              nsplits=2, budget=QUICK_BUDGET)
    result = scheduler.schedule(scenario)
    print(f"SCAR schedule:       {result.metrics.summary()}")
    print(f"evaluated {result.num_evaluated} candidate window schedules")
    print()
    print(result.schedule.describe(scenario))

    improvement = baseline.metrics.edp / result.metrics.edp
    print(f"\nSCAR improves EDP by {improvement:.2f}x over standalone")


if __name__ == "__main__":
    main()
