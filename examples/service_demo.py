"""repro.service smoke demo: async jobs over a live local HTTP service.

Starts the job-scheduling service in-process (the same stack ``scar
serve`` runs), submits a three-job batch through the typed
:class:`~repro.service.ServiceClient`, and checks the results are
bit-identical to direct :class:`~repro.api.Session` submits -- the
service determinism contract.  Also round-trips a job record through its
JSON wire document and prints the service's per-job perf summary.

Run:  python examples/service_demo.py
"""

from repro.api import ScheduleRequest, Session
from repro.core import QUICK_BUDGET
from repro.service import JobRecord, ServiceClient, local_service


def main() -> None:
    scar = ScheduleRequest(scenario_id=1, template="het_sides_3x3",
                           policy="scar", objective="edp",
                           budget=QUICK_BUDGET, nsplits=1)
    requests = [
        scar,
        scar.replace(objective="latency"),
        scar.replace(template="simba_nvd_3x3", policy="standalone"),
    ]
    reference = [Session().submit(request) for request in requests]

    with local_service(workers=2) as (url, service):
        client = ServiceClient(url)
        print(f"service up at {url}")

        handles = client.submit_many(requests)
        results = [handle.result(timeout=600) for handle in handles]

        for request, result, want in zip(requests, results, reference):
            assert result.metrics == want.metrics
            assert result.schedule == want.schedule
            print(f"{request.policy:10s} {request.objective:8s} "
                  f"{result.metrics.summary()}")
        print(f"\nservice parity OK ({len(results)} jobs bit-identical "
              f"to Session.submit)")

        # Job records round-trip losslessly through the wire envelope.
        record = handles[0].record()
        assert JobRecord.from_json(record.to_json()) == record
        assert [e.state for e in record.events] == \
            ["QUEUED", "RUNNING", "DONE"]
        print(f"job record wire round-trip OK "
              f"({record.job_id}: {' -> '.join(e.state for e in record.events)})")

        summary = service.perf_summary()
    print(f"\nper-job perf: {summary['jobs']['DONE']} done, "
          f"mean queue {summary['queue']['mean_s'] * 1e3:.1f} ms, "
          f"mean run {summary['run']['mean_s'] * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
