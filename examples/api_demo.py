"""repro.api smoke demo: typed requests, batch sessions, the wire format.

Builds three declarative :class:`~repro.api.ScheduleRequest` jobs (SCAR
under two objectives plus the standalone baseline), runs them through one
:class:`~repro.api.Session` batch, round-trips a result through its JSON
wire document and prints the session's aggregate perf report.

Run:  python examples/api_demo.py
"""

from repro.api import ScheduleRequest, ScheduleResult, Session
from repro.core import QUICK_BUDGET


def main() -> None:
    session = Session()
    scar = ScheduleRequest(scenario_id=1, template="het_sides_3x3",
                           policy="scar", objective="edp",
                           budget=QUICK_BUDGET, nsplits=1)
    requests = [
        scar,
        scar.replace(objective="latency"),
        scar.replace(template="simba_nvd_3x3", policy="standalone"),
    ]

    results = session.submit_many(requests)
    for request, result in zip(requests, results):
        print(f"{request.policy:10s} {request.objective:8s} "
              f"{result.metrics.summary()}")

    # The JSON wire format: results (and requests) serialize losslessly.
    document = results[0].to_json()
    restored = ScheduleResult.from_json(document)
    assert restored == results[0]
    assert restored.metrics.edp == results[0].metrics.edp
    print(f"\nwire round-trip OK ({len(document)} bytes, "
          f"{len(restored.candidate_points())} candidate points)")

    # Memoization: identical requests are free the second time.
    assert session.submit(scar) is results[0]

    print("\naggregate perf over the batch:")
    print(session.perf_summary().render())


if __name__ == "__main__":
    main()
