"""Custom hardware and workloads: the library beyond the paper's tables.

Defines (1) a custom 2x4 MCM with a hand-picked dataflow pattern and
(2) a custom two-model workload built directly from the layer IR, runs
the scheduler with a latency-bounded EDP objective (the Sec. VI
extension), and round-trips everything through the JSON config files.

Run:  python examples/custom_hardware.py
"""

import tempfile
from pathlib import Path

from repro.config import (
    load_json,
    mcm_from_dict,
    mcm_to_dict,
    save_json,
    scenario_from_dict,
    scenario_to_dict,
    schedule_to_dict,
)
from repro.core import QUICK_BUDGET, Objective, OptTarget, SCARScheduler
from repro.mcm import custom_mesh
from repro.workloads import Model, ModelInstance, Scenario, conv, gemm


def build_workload() -> Scenario:
    """A detection CNN plus a small transformer ranker."""
    detector = Model(name="detector", layers=(
        conv("stem", c=3, k=32, y=80, x=80, r=3, stride=2),
        conv("b1", c=32, k=64, y=40, x=40, r=3, stride=2),
        conv("b2", c=64, k=128, y=20, x=20, r=3, stride=2),
        conv("b3", c=128, k=128, y=20, x=20, r=3),
        conv("head", c=128, k=24, y=20, x=20, r=1),
    ))
    ranker = Model(name="ranker", layers=(
        gemm("attn", m=64, n_out=1024, k_in=256),
        gemm("ffn_up", m=64, n_out=1024, k_in=256),
        gemm("ffn_down", m=64, n_out=256, k_in=1024),
        gemm("score", m=64, n_out=1, k_in=256),
    ))
    return Scenario(name="custom", instances=(
        ModelInstance(detector, batch=8),
        ModelInstance(ranker, batch=16),
    ))


def main() -> None:
    # 2x4 package: NVDLA spine with two Shi chiplets for the conv work.
    hardware = custom_mesh(
        "custom_2x4", 2, 4,
        ["nvdla", "shidiannao", "shidiannao", "nvdla",
         "nvdla", "nvdla", "nvdla", "nvdla"])
    scenario = build_workload()
    print(hardware.summary())
    print(hardware.grid_diagram())
    print(scenario.summary())
    print()

    # EDP search lower-bounded by a latency constraint (Sec. VI).
    unconstrained = SCARScheduler(
        hardware, nsplits=1, budget=QUICK_BUDGET).schedule(scenario)
    bound = unconstrained.metrics.latency_s * 1.05
    constrained = SCARScheduler(
        hardware, nsplits=1, budget=QUICK_BUDGET,
        objective=Objective(target=OptTarget.EDP,
                            latency_bound_s=bound)).schedule(scenario)
    print(f"unconstrained EDP search: {unconstrained.metrics.summary()}")
    print(f"latency-bounded (<= {bound * 1e3:.2f} ms): "
          f"{constrained.metrics.summary()}")
    assert constrained.metrics.latency_s <= bound + 1e-9
    print()

    # Round-trip everything through the config files.
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        save_json(mcm_to_dict(hardware), root / "mcm.json")
        save_json(scenario_to_dict(scenario, inline_layers=True),
                  root / "workload.json")
        save_json(schedule_to_dict(constrained.schedule),
                  root / "schedule.json")
        rebuilt_mcm = mcm_from_dict(load_json(root / "mcm.json"))
        rebuilt_sc = scenario_from_dict(load_json(root / "workload.json"))
        assert rebuilt_mcm == hardware
        assert rebuilt_sc.total_layers == scenario.total_layers
        print(f"configs round-tripped through {root}")
    print(constrained.schedule.describe(scenario))


if __name__ == "__main__":
    main()
