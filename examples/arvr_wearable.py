"""AR/VR wearable: schedule an XRBench scenario on an edge MCM.

Schedules Scenario 9 ("Social": EyeCod gaze estimation b60, hand tracking
b30, sparse-to-dense depth b30) on the 256-PE edge operating point, shows
which chiplet class each model lands on, and prints the per-window
latency breakdown -- the Fig. 9-style view for the AR/VR suite.

Run:  python examples/arvr_wearable.py
"""

from repro import mcm, workloads
from repro.core import QUICK_BUDGET, SCARScheduler, ScheduleEvaluator
from repro.dataflow import LayerCostDatabase


def main() -> None:
    scenario = workloads.scenario(9)
    hardware = mcm.build("het_sides_3x3", use_case=scenario.use_case)
    print(hardware.summary())
    print(scenario.summary())
    print()

    # Per-model dataflow affinity (what the scheduler exploits).
    database = LayerCostDatabase(clock_hz=hardware.clock_hz)
    classes = {c.dataflow: c for c in hardware.chiplet_classes()}
    print("per-model dataflow affinity (EDP of whole model per class):")
    for instance in scenario:
        scores = {}
        for name, chiplet in classes.items():
            lat = sum(database.latency_s(layer, chiplet)
                      for layer in instance.layers())
            energy = sum(database.energy_j(layer, chiplet)
                         for layer in instance.layers())
            scores[name] = lat * energy
        best = min(scores, key=scores.get)
        ratio = max(scores.values()) / min(scores.values())
        print(f"  {instance.name:10s} -> {best} ({ratio:.2f}x gap)")
    print()

    result = SCARScheduler(hardware, nsplits=2,
                           budget=QUICK_BUDGET).schedule(scenario)
    print(result.schedule.describe(scenario))
    print()
    for window in result.metrics.windows:
        parts = ", ".join(
            f"{scenario[m.model].name}: {m.latency_s * 1e3:.2f} ms "
            f"(b'={m.minibatch}, tiles={m.tile_factor})"
            for m in window.per_model)
        print(f"window {window.index}: "
              f"{window.latency_s * 1e3:.2f} ms | {parts}")
    print()
    print(result.metrics.summary())


if __name__ == "__main__":
    main()
