"""Datacenter multi-tenancy: compare MCM strategies on Scenario 4.

Reproduces a slice of the paper's Table IV workflow: the heavy MLPerf
scenario (GPT-L b8 + BERT-L b24 + U-Net b1 + ResNet-50 b32) scheduled on
every core 3x3 strategy under the EDP search, reported normalized to the
standalone NVDLA baseline.

Run:  python examples/datacenter_multitenancy.py
"""

from repro.api import Session
from repro.experiments import (
    CORE_STRATEGIES,
    ExperimentConfig,
    format_table,
    normalize,
    strategy_request,
)
from repro.workloads import scenario


def main() -> None:
    sc = scenario(4)
    print(sc.summary())
    print()

    session = Session()
    config = ExperimentConfig.fast()
    runs = {name: session.submit(strategy_request(4, name, "edp", config))
            for name in CORE_STRATEGIES}

    edps = {name: run.edp for name, run in runs.items()}
    latencies = {name: run.latency_s for name, run in runs.items()}
    normed = normalize(edps, "stand_nvd")

    rows = [
        (name, latencies[name], runs[name].energy_j, edps[name],
         normed[name])
        for name in CORE_STRATEGIES
    ]
    print(format_table(
        ("strategy", "latency (s)", "energy (J)", "EDP (J.s)",
         "EDP x stand_nvd"),
        rows, title="Scenario 4, EDP search (3x3 MCMs)"))

    best = min(edps, key=edps.get)
    print(f"\nbest strategy: {best} "
          f"({edps['stand_nvd'] / edps[best]:.2f}x better than "
          "standalone NVDLA)")


if __name__ == "__main__":
    main()
