"""Exception hierarchy for the SCAR reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.  Each subclass corresponds to one layer
of the system (workload definition, hardware model, scheduling, search).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class WorkloadError(ReproError):
    """Invalid workload definition (layer dims, model topology, scenario)."""


class HardwareError(ReproError):
    """Invalid MCM hardware description (chiplet, topology, package)."""


class DataflowError(ReproError):
    """Unknown dataflow or invalid dataflow/layer combination."""


class SchedulingError(ReproError):
    """A scheduling engine produced or received an invalid schedule."""


class ValidationError(SchedulingError):
    """A schedule violates Theorem 1/2 validity (coverage or exclusivity)."""


class SearchError(ReproError):
    """Search-space exploration failed (empty space, bad budget)."""


class ConfigError(ReproError):
    """Malformed configuration file or unknown template name."""


class AnalysisError(ReproError):
    """A static-analysis run could not complete (unreadable or
    unparsable source file, unknown checker code in --select/--ignore)."""


class ServiceError(ReproError):
    """Invalid use of the job-oriented scheduling service (result
    requested before completion, submit after shutdown)."""


class JobNotFoundError(ServiceError):
    """The service has no job under this id (never existed or evicted)."""


class ServiceOverloadedError(ServiceError):
    """The service's admission queue is full; retry after a backoff.

    Transports surface this as HTTP 429 with a ``Retry-After`` header;
    :class:`repro.service.ServiceClient` retries it automatically with
    capped exponential backoff.  ``retry_after_s``, when set, is the
    server's suggested minimum delay before the next attempt.
    """

    retry_after_s: float | None = None
