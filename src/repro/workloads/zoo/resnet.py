"""ResNet-50 (He et al. 2015) at layer granularity.

Built at the paper's datacenter input resolution (224x224x3).  The layer
list contains every convolution (including downsample projections), the stem
pooling, the residual adds and the final FC -- 72 schedulable layers, close
to the 66 the paper reports in Table VI (exact counting of auxiliary ops
differs between frameworks).
"""

from __future__ import annotations

from repro.workloads.layer import Layer, conv, elemwise, gemm, pool
from repro.workloads.model import Model

#: (blocks, in channels, bottleneck width, out channels, output spatial)
_STAGES: tuple[tuple[int, int, int, int, int], ...] = (
    (3, 64, 64, 256, 56),
    (4, 256, 128, 512, 28),
    (6, 512, 256, 1024, 14),
    (3, 1024, 512, 2048, 7),
)


def _bottleneck(layers: list[Layer], stage: int, block: int, c_in: int,
                width: int, c_out: int, spatial: int, downsample: bool) -> None:
    """Append one bottleneck block (1x1 -> 3x3 -> 1x1 + residual)."""
    prefix = f"s{stage}b{block}"
    stride = 2 if downsample and stage > 1 else 1
    layers.append(conv(f"{prefix}_conv1", c=c_in, k=width, y=spatial,
                       x=spatial, r=1, stride=stride))
    layers.append(conv(f"{prefix}_conv2", c=width, k=width, y=spatial,
                       x=spatial, r=3))
    layers.append(conv(f"{prefix}_conv3", c=width, k=c_out, y=spatial,
                       x=spatial, r=1))
    if downsample:
        layers.append(conv(f"{prefix}_down", c=c_in, k=c_out, y=spatial,
                           x=spatial, r=1, stride=stride))
    layers.append(elemwise(f"{prefix}_add", k=c_out, y=spatial, x=spatial))


def resnet50(input_size: int = 224) -> Model:
    """Build ResNet-50 at the given square input resolution."""
    scale = input_size / 224.0
    layers: list[Layer] = []
    stem = max(int(round(112 * scale)), 1)
    layers.append(conv("stem_conv", c=3, k=64, y=stem, x=stem, r=7, stride=2))
    layers.append(pool("stem_pool", c=64, y=stem // 2, x=stem // 2, r=3,
                       stride=2))
    for stage_idx, (blocks, c_in, width, c_out, spatial224) in enumerate(
            _STAGES, start=1):
        spatial = max(int(round(spatial224 * scale)), 1)
        for block in range(blocks):
            _bottleneck(layers, stage_idx, block, c_in if block == 0 else c_out,
                        width, c_out, spatial, downsample=(block == 0))
    layers.append(pool("head_pool", c=2048, y=1, x=1, r=7, stride=1))
    layers.append(gemm("head_fc", m=1, n_out=1000, k_in=2048))
    return Model(name="resnet50", layers=tuple(layers))


def resnet_block2_slice(num_layers: int = 3) -> tuple[Layer, ...]:
    """The first ``num_layers`` convs of ResNet-50's second block.

    Used by the Fig. 2 motivational study ("3 layers from the second
    ResNet-50 block").
    """
    model = resnet50()
    convs = [layer for layer in model.layers
             if layer.name.startswith("s2b0_conv")]
    return tuple(convs[:num_layers])
