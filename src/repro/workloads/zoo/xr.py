"""XRBench-style AR/VR model suite (Kwon et al. 2023).

Layer-accurate definitions of several XRBench models are not public, so each
model here is a synthesized layer stack that matches the *class* of its
backbone (documented per function) at XRBench's input resolutions.  What the
scheduler cares about -- layer counts, MAC/byte distribution and the
spatial-heavy vs channel-heavy mix -- follows the cited architectures.
See DESIGN.md, "Substitutions".
"""

from __future__ import annotations

from repro.workloads.layer import Layer, conv, dwconv, elemwise, gemm, pool
from repro.workloads.model import Model
from repro.workloads.zoo.transformers import transformer


def _inverted_residual(layers: list[Layer], prefix: str, c_in: int,
                       c_out: int, spatial: int, expand: int = 4,
                       stride: int = 1) -> None:
    """MobileNet/FBNet-style inverted residual: pw-expand, dw, pw-project."""
    hidden = c_in * expand
    layers.append(conv(f"{prefix}_pw1", c=c_in, k=hidden, y=spatial,
                       x=spatial, r=1, stride=stride))
    layers.append(dwconv(f"{prefix}_dw", c=hidden, y=spatial, x=spatial, r=3))
    layers.append(conv(f"{prefix}_pw2", c=hidden, k=c_out, y=spatial,
                       x=spatial, r=1))
    if stride == 1 and c_in == c_out:
        layers.append(elemwise(f"{prefix}_add", k=c_out, y=spatial, x=spatial))


def d2go() -> Model:
    """D2GO object detector: FBNet-style backbone + SSD-like head, 320x320."""
    layers: list[Layer] = [
        conv("stem", c=3, k=16, y=160, x=160, r=3, stride=2),
    ]
    stages = ((16, 24, 80, 2), (24, 40, 40, 3), (40, 80, 20, 3),
              (80, 112, 20, 2), (112, 192, 10, 3))
    for stage_idx, (c_in, c_out, spatial, blocks) in enumerate(stages):
        for block in range(blocks):
            _inverted_residual(
                layers, f"s{stage_idx}b{block}",
                c_in if block == 0 else c_out, c_out, spatial,
                stride=2 if block == 0 else 1)
    for head in range(4):
        spatial = max(20 >> head, 2)
        layers.append(conv(f"head{head}_cls", c=192 if head == 0 else 256,
                           k=256, y=spatial, x=spatial, r=3))
        layers.append(conv(f"head{head}_box", c=256, k=24, y=spatial,
                           x=spatial, r=3))
    return Model(name="d2go", layers=tuple(layers))


def planercnn() -> Model:
    """PlaneRCNN plane detector: ResNet-FPN-style backbone + heads, 480x640."""
    layers: list[Layer] = [
        conv("stem", c=3, k=64, y=240, x=320, r=7, stride=2),
        pool("stem_pool", c=64, y=120, x=160, r=3, stride=2),
    ]
    stages = ((64, 256, 120, 160, 3), (256, 512, 60, 80, 4),
              (512, 1024, 30, 40, 6), (1024, 2048, 15, 20, 3))
    for stage_idx, (c_in, c_out, y, x, blocks) in enumerate(stages, start=1):
        width = c_out // 4
        for block in range(blocks):
            prefix = f"s{stage_idx}b{block}"
            cin_b = c_in if block == 0 else c_out
            layers.append(conv(f"{prefix}_c1", c=cin_b, k=width, y=y, x=x,
                               r=1))
            layers.append(conv(f"{prefix}_c2", c=width, k=width, y=y, x=x,
                               r=3))
            layers.append(conv(f"{prefix}_c3", c=width, k=c_out, y=y, x=x,
                               r=1))
    for level in range(4):
        y, x = 120 >> level, 160 >> level
        layers.append(conv(f"fpn{level}_lat", c=256 * (2 ** level), k=256,
                           y=y, x=x, r=1))
        layers.append(conv(f"fpn{level}_out", c=256, k=256, y=y, x=x, r=3))
    layers.append(conv("mask_head1", c=256, k=256, y=28, x=28, r=3))
    layers.append(conv("mask_head2", c=256, k=256, y=28, x=28, r=3))
    layers.append(conv("plane_head", c=256, k=3, y=28, x=28, r=1))
    return Model(name="planercnn", layers=tuple(layers))


def midas() -> Model:
    """MiDaS monocular depth estimator: ResNet encoder + decoder, 384x384."""
    layers: list[Layer] = [
        conv("stem", c=3, k=64, y=192, x=192, r=7, stride=2),
        pool("stem_pool", c=64, y=96, x=96, r=3, stride=2),
    ]
    stages = ((64, 128, 96, 3), (128, 256, 48, 4), (256, 512, 24, 6),
              (512, 1024, 12, 3))
    for stage_idx, (c_in, c_out, spatial, blocks) in enumerate(stages,
                                                               start=1):
        for block in range(blocks):
            prefix = f"e{stage_idx}b{block}"
            cin_b = c_in if block == 0 else c_out
            layers.append(conv(f"{prefix}_c1", c=cin_b, k=c_out, y=spatial,
                               x=spatial, r=3))
            layers.append(conv(f"{prefix}_c2", c=c_out, k=c_out, y=spatial,
                               x=spatial, r=3))
    # Refinement decoder: fuse + upsample at each scale.
    for level, (c_io, spatial) in enumerate(((1024, 24), (512, 48),
                                             (256, 96), (128, 192))):
        layers.append(conv(f"d{level}_fuse", c=c_io, k=c_io // 2, y=spatial,
                           x=spatial, r=3))
        layers.append(conv(f"d{level}_ref", c=c_io // 2, k=c_io // 2,
                           y=spatial, x=spatial, r=3))
    layers.append(conv("head", c=64, k=1, y=384, x=384, r=3))
    return Model(name="midas", layers=tuple(layers))


def hrvit() -> Model:
    """HRViT-b1 semantic segmentation: conv stem + ViT blocks, 512x512."""
    layers: list[Layer] = [
        conv("stem1", c=3, k=32, y=256, x=256, r=3, stride=2),
        conv("stem2", c=32, k=64, y=128, x=128, r=3, stride=2),
    ]
    # Multi-resolution transformer stages (tokens = spatial**2).
    for stage_idx, (tokens, d_model, blocks) in enumerate(
            ((1024, 128, 2), (256, 256, 4), (64, 512, 6))):
        stage = transformer(f"hrvit_s{stage_idx}", blocks=blocks,
                            d_model=d_model, seq_len=tokens,
                            decomposition="fused")
        for layer in stage.layers:
            layers.append(layer.scaled(f"s{stage_idx}_{layer.name}"))
        layers.append(conv(f"s{stage_idx}_merge", c=d_model,
                           k=min(d_model * 2, 512),
                           y=max(32 >> stage_idx, 8),
                           x=max(32 >> stage_idx, 8), r=3))
    layers.append(conv("seg_head1", c=512, k=256, y=128, x=128, r=3))
    layers.append(conv("seg_head2", c=256, k=19, y=128, x=128, r=1))
    return Model(name="hrvit", layers=tuple(layers))


def hand_sp() -> Model:
    """3D hand shape/pose (Ge et al. 2019): hourglass-style CNN, 224x224."""
    layers: list[Layer] = [
        conv("stem", c=3, k=32, y=112, x=112, r=7, stride=2),
        pool("stem_pool", c=32, y=56, x=56, r=2, stride=2),
    ]
    channels = 32
    spatial = 56
    for level in range(3):
        layers.append(conv(f"down{level}_c1", c=channels, k=channels * 2,
                           y=spatial, x=spatial, r=3, stride=1))
        layers.append(conv(f"down{level}_c2", c=channels * 2, k=channels * 2,
                           y=spatial // 2, x=spatial // 2, r=3, stride=2))
        channels *= 2
        spatial //= 2
    for level in range(3):
        spatial *= 2
        layers.append(conv(f"up{level}_c1", c=channels, k=channels // 2,
                           y=spatial, x=spatial, r=3))
        layers.append(conv(f"up{level}_c2", c=channels // 2, k=channels // 2,
                           y=spatial, x=spatial, r=3))
        channels //= 2
    layers.append(conv("heat_head", c=32, k=21, y=56, x=56, r=1))
    layers.append(gemm("pose_fc1", m=1, n_out=512, k_in=21 * 56 * 56 // 16))
    layers.append(gemm("pose_fc2", m=1, n_out=63, k_in=512))
    return Model(name="hand_sp", layers=tuple(layers))


def eyecod() -> Model:
    """EyeCOD gaze estimation: compact CNN on flatcam captures, 128x128."""
    layers: list[Layer] = [
        conv("stem", c=1, k=16, y=64, x=64, r=5, stride=2),
    ]
    channels = 16
    spatial = 64
    for level in range(4):
        layers.append(conv(f"b{level}_c1", c=channels, k=channels * 2,
                           y=spatial // 2, x=spatial // 2, r=3, stride=2))
        layers.append(conv(f"b{level}_c2", c=channels * 2, k=channels * 2,
                           y=spatial // 2, x=spatial // 2, r=3))
        channels *= 2
        spatial //= 2
    layers.append(pool("head_pool", c=channels, y=1, x=1, r=4, stride=1))
    layers.append(gemm("gaze_fc1", m=1, n_out=128, k_in=channels))
    layers.append(gemm("gaze_fc2", m=1, n_out=3, k_in=128))
    return Model(name="eyecod", layers=tuple(layers))


def sp2dense() -> Model:
    """Sparse-to-dense depth refinement: ResNet-18-style encoder-decoder."""
    layers: list[Layer] = [
        conv("stem", c=4, k=64, y=112, x=152, r=7, stride=2),
        pool("stem_pool", c=64, y=56, x=76, r=3, stride=2),
    ]
    stages = ((64, 64, 56, 76, 2), (64, 128, 28, 38, 2),
              (128, 256, 14, 19, 2), (256, 512, 7, 10, 2))
    for stage_idx, (c_in, c_out, y, x, blocks) in enumerate(stages, start=1):
        for block in range(blocks):
            prefix = f"e{stage_idx}b{block}"
            cin_b = c_in if block == 0 else c_out
            layers.append(conv(f"{prefix}_c1", c=cin_b, k=c_out, y=y, x=x,
                               r=3))
            layers.append(conv(f"{prefix}_c2", c=c_out, k=c_out, y=y, x=x,
                               r=3))
    for level, (c_io, y, x) in enumerate(((512, 14, 19), (256, 28, 38),
                                          (128, 56, 76), (64, 112, 152))):
        layers.append(conv(f"d{level}_up", c=c_io, k=c_io // 2, y=y, x=x,
                           r=3))
    layers.append(conv("head", c=32, k=1, y=224, x=304, r=3))
    return Model(name="sp2dense", layers=tuple(layers))
