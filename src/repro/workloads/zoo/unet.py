"""U-Net (Ronneberger et al. 2015) at layer granularity.

Built at the paper's input resolution (512x512x1).  The classic topology --
four encoder levels of two 3x3 convs, a two-conv bottleneck, four decoder
levels of (up-conv + two 3x3 convs) and a final 1x1 conv -- yields exactly
the 23 layers the paper reports in Table VI.
"""

from __future__ import annotations

from repro.workloads.layer import Layer, conv
from repro.workloads.model import Model


def unet(input_size: int = 512, base_channels: int = 64) -> Model:
    """Build the 23-layer U-Net at the given square input resolution."""
    layers: list[Layer] = []
    skips: list[tuple[int, int]] = []
    size = input_size
    channels = base_channels
    c_in = 1
    skip_sources: list[int] = []

    # Encoder: 4 levels x 2 convs.
    for level in range(4):
        layers.append(conv(f"enc{level}_conv1", c=c_in, k=channels,
                           y=size, x=size, r=3))
        layers.append(conv(f"enc{level}_conv2", c=channels, k=channels,
                           y=size, x=size, r=3))
        skip_sources.append(len(layers) - 1)
        c_in = channels
        channels *= 2
        size //= 2

    # Bottleneck: 2 convs.
    layers.append(conv("mid_conv1", c=c_in, k=channels, y=size, x=size, r=3))
    layers.append(conv("mid_conv2", c=channels, k=channels, y=size, x=size,
                       r=3))

    # Decoder: 4 levels x (up-conv + 2 convs); skip concat doubles input C.
    for level in range(3, -1, -1):
        size *= 2
        up_out = channels // 2
        layers.append(conv(f"dec{level}_up", c=channels, k=up_out,
                           y=size, x=size, r=2))
        skips.append((skip_sources[level], len(layers)))
        layers.append(conv(f"dec{level}_conv1", c=up_out * 2, k=up_out,
                           y=size, x=size, r=3))
        layers.append(conv(f"dec{level}_conv2", c=up_out, k=up_out,
                           y=size, x=size, r=3))
        channels = up_out

    layers.append(conv("head_conv", c=channels, k=2, y=size, x=size, r=1))
    return Model(name="unet", layers=tuple(layers), skip_edges=tuple(skips))
