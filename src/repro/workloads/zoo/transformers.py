"""Transformer language/speech models decomposed into GEMM layers.

SCAR schedules transformer blocks as GEMM layer sequences.  Two
decomposition granularities are supported:

``full``
    five layers per block: QKV projection, fused attention matmuls
    (scores + context), output projection, FFN up, FFN down.
``fused``
    three layers per block: fused attention (QKV + matmuls + projection as
    one GEMM-equivalent), FFN up, FFN down.

Layer counts approximate the paper's Table VI (GPT-L 120 layers, BERT-L 60):
``gpt_l`` uses 24 blocks x 5 = 120 layers; ``bert_large`` uses 24 blocks x 3
(= 72, the closest clean decomposition to the paper's 60).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.layer import Layer, gemm
from repro.workloads.model import Model


def _attention_full(layers: list[Layer], prefix: str, seq_len: int,
                    d_model: int) -> None:
    """QKV projection + fused attention matmuls + output projection."""
    layers.append(gemm(f"{prefix}_qkv", m=seq_len, n_out=3 * d_model,
                       k_in=d_model))
    # Scores (M x M over d) and context (M x d over M) fused into one layer
    # with the combined reduction work: MACs = 2 * M^2 * d.
    layers.append(gemm(f"{prefix}_attn", m=seq_len, n_out=2 * seq_len,
                       k_in=d_model))
    layers.append(gemm(f"{prefix}_proj", m=seq_len, n_out=d_model,
                       k_in=d_model))


def _attention_fused(layers: list[Layer], prefix: str, seq_len: int,
                     d_model: int) -> None:
    """Whole attention sub-block as one GEMM-equivalent layer.

    Combined MACs: QKV (3*d^2*M) + matmuls (2*M^2*d) + proj (d^2*M) folded
    into an M x (4*d + 2*M) x d GEMM.
    """
    layers.append(gemm(f"{prefix}_attn", m=seq_len,
                       n_out=4 * d_model + 2 * seq_len, k_in=d_model))


def transformer(name: str, *, blocks: int, d_model: int, seq_len: int,
                ffn_mult: int = 4, decomposition: str = "full",
                head_dim_out: int = 0) -> Model:
    """Build a transformer encoder/decoder stack as a GEMM-layer model."""
    if decomposition not in ("full", "fused"):
        raise WorkloadError(f"unknown decomposition {decomposition!r}")
    layers: list[Layer] = []
    for block in range(blocks):
        prefix = f"b{block}"
        if decomposition == "full":
            _attention_full(layers, prefix, seq_len, d_model)
        else:
            _attention_fused(layers, prefix, seq_len, d_model)
        layers.append(gemm(f"{prefix}_ffn_up", m=seq_len,
                           n_out=ffn_mult * d_model, k_in=d_model))
        layers.append(gemm(f"{prefix}_ffn_down", m=seq_len, n_out=d_model,
                           k_in=ffn_mult * d_model))
    if head_dim_out:
        layers.append(gemm("head", m=seq_len, n_out=head_dim_out,
                           k_in=d_model))
    return Model(name=name, layers=tuple(layers))


def gpt_l(seq_len: int = 128) -> Model:
    """GPT-L (GPT-2-class decoder): 24 blocks, d=1280, 120 GEMM layers."""
    return transformer("gpt_l", blocks=24, d_model=1280, seq_len=seq_len,
                       decomposition="full")


def bert_large(seq_len: int = 128) -> Model:
    """BERT-Large: 24 blocks, d=1024, fused attention (72 layers)."""
    return transformer("bert_large", blocks=24, d_model=1024, seq_len=seq_len,
                       decomposition="fused")


def bert_base(seq_len: int = 128) -> Model:
    """BERT-Base: 12 blocks, d=768, fused attention (36 layers)."""
    return transformer("bert_base", blocks=12, d_model=768, seq_len=seq_len,
                       decomposition="fused")


def emformer(seq_len: int = 64) -> Model:
    """Emformer streaming speech recognizer: 20 blocks, d=512 (60 layers)."""
    return transformer("emformer", blocks=20, d_model=512, seq_len=seq_len,
                       decomposition="fused", head_dim_out=4096)


def gpt2_ffn_layer(seq_len: int = 128, d_model: int = 1280) -> Layer:
    """The single GPT feed-forward layer used in the Fig. 2 study."""
    return gemm("gpt2_ffn", m=seq_len, n_out=4 * d_model, k_in=d_model)
