"""GoogLeNet / Inception-v1 (Szegedy et al. 2015) at layer granularity.

Inception branches are flattened into a topologically-sorted conv sequence
(a valid linearization of the DAG); concatenations are free at this
granularity.  Input resolution 224x224x3 as in the paper's Scenario 5.
"""

from __future__ import annotations

from repro.workloads.layer import Layer, conv, gemm, pool
from repro.workloads.model import Model

#: Inception module channel specs: (in, 1x1, 3x3red, 3x3, 5x5red, 5x5, pool)
_INCEPTION: tuple[tuple[str, int, int, int, int, int, int, int, int], ...] = (
    # name, c_in, b1, b2r, b2, b3r, b3, b4, spatial
    ("3a", 192, 64, 96, 128, 16, 32, 32, 28),
    ("3b", 256, 128, 128, 192, 32, 96, 64, 28),
    ("4a", 480, 192, 96, 208, 16, 48, 64, 14),
    ("4b", 512, 160, 112, 224, 24, 64, 64, 14),
    ("4c", 512, 128, 128, 256, 24, 64, 64, 14),
    ("4d", 512, 112, 144, 288, 32, 64, 64, 14),
    ("4e", 528, 256, 160, 320, 32, 128, 128, 14),
    ("5a", 832, 256, 160, 320, 32, 128, 128, 7),
    ("5b", 832, 384, 192, 384, 48, 128, 128, 7),
)


def _inception(layers: list[Layer], name: str, c_in: int, b1: int, b2r: int,
               b2: int, b3r: int, b3: int, b4: int, spatial: int) -> None:
    """Append one inception module as six conv layers."""
    layers.append(conv(f"i{name}_b1", c=c_in, k=b1, y=spatial, x=spatial, r=1))
    layers.append(conv(f"i{name}_b2r", c=c_in, k=b2r, y=spatial, x=spatial,
                       r=1))
    layers.append(conv(f"i{name}_b2", c=b2r, k=b2, y=spatial, x=spatial, r=3))
    layers.append(conv(f"i{name}_b3r", c=c_in, k=b3r, y=spatial, x=spatial,
                       r=1))
    layers.append(conv(f"i{name}_b3", c=b3r, k=b3, y=spatial, x=spatial, r=5))
    layers.append(conv(f"i{name}_b4", c=c_in, k=b4, y=spatial, x=spatial, r=1))


def googlenet(input_size: int = 224) -> Model:
    """Build GoogLeNet at the given square input resolution."""
    if input_size != 224:
        raise NotImplementedError("googlenet is defined at 224x224 only")
    layers: list[Layer] = [
        conv("stem_conv1", c=3, k=64, y=112, x=112, r=7, stride=2),
        pool("stem_pool1", c=64, y=56, x=56, r=3, stride=2),
        conv("stem_conv2", c=64, k=64, y=56, x=56, r=1),
        conv("stem_conv3", c=64, k=192, y=56, x=56, r=3),
        pool("stem_pool2", c=192, y=28, x=28, r=3, stride=2),
    ]
    for spec in _INCEPTION:
        _inception(layers, *spec)
        if spec[0] == "3b":
            layers.append(pool("pool3", c=480, y=14, x=14, r=3, stride=2))
        elif spec[0] == "4e":
            layers.append(pool("pool4", c=832, y=7, x=7, r=3, stride=2))
    layers.append(pool("head_pool", c=1024, y=1, x=1, r=7, stride=1))
    layers.append(gemm("head_fc", m=1, n_out=1000, k_in=1024))
    return Model(name="googlenet", layers=tuple(layers))
