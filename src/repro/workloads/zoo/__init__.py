"""Model zoo: every model used by the paper's ten scenarios (Table III).

Models are built lazily and cached per argument set; building a model is
pure (no I/O) and deterministic.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from repro.errors import WorkloadError
from repro.workloads.model import Model
from repro.workloads.zoo.googlenet import googlenet
from repro.workloads.zoo.resnet import resnet50, resnet_block2_slice
from repro.workloads.zoo.transformers import (
    bert_base,
    bert_large,
    emformer,
    gpt2_ffn_layer,
    gpt_l,
    transformer,
)
from repro.workloads.zoo.unet import unet
from repro.workloads.zoo.xr import (
    d2go,
    eyecod,
    hand_sp,
    hrvit,
    midas,
    planercnn,
    sp2dense,
)

_BUILDERS: dict[str, Callable[[], Model]] = {
    "resnet50": resnet50,
    "unet": unet,
    "googlenet": googlenet,
    "gpt_l": gpt_l,
    "bert_large": bert_large,
    "bert_base": bert_base,
    "emformer": emformer,
    "d2go": d2go,
    "planercnn": planercnn,
    "midas": midas,
    "hrvit": hrvit,
    "hand_sp": hand_sp,
    "eyecod": eyecod,
    "sp2dense": sp2dense,
}


def model_names() -> tuple[str, ...]:
    """Names of every model available in the zoo."""
    return tuple(sorted(_BUILDERS))


@lru_cache(maxsize=None)
def build(name: str) -> Model:
    """Build (and cache) a zoo model by name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown model {name!r}; available: {', '.join(model_names())}"
        ) from None
    return builder()


__all__ = [
    "bert_base", "bert_large", "build", "d2go", "emformer", "eyecod",
    "googlenet", "gpt2_ffn_layer", "gpt_l", "hand_sp", "hrvit", "midas",
    "model_names", "planercnn", "resnet50", "resnet_block2_slice",
    "sp2dense", "transformer", "unet",
]
