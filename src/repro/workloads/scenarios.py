"""The paper's ten multi-model workload scenarios (Table III).

Scenarios 1-5 are the MLPerf-derived datacenter multi-tenancy suites;
scenarios 6-10 are the XRBench AR/VR suites.  Batch sizes follow Table III
exactly.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import WorkloadError
from repro.workloads import zoo
from repro.workloads.model import ModelInstance, Scenario

#: scenario id -> (title, use_case, ((model_name, batch), ...))
_SPECS: dict[int, tuple[str, str, tuple[tuple[str, int], ...]]] = {
    1: ("LMs", "datacenter",
        (("gpt_l", 1), ("bert_large", 3))),
    2: ("LMs + Image", "datacenter",
        (("gpt_l", 1), ("bert_large", 3), ("resnet50", 1))),
    3: ("LMs + Image (batched)", "datacenter",
        (("gpt_l", 1), ("bert_large", 3), ("resnet50", 32))),
    4: ("LMs + Segmentation + Image", "datacenter",
        (("gpt_l", 8), ("bert_large", 24), ("unet", 1), ("resnet50", 32))),
    5: ("LMs + Segmentation + Image (wide)", "datacenter",
        (("gpt_l", 8), ("bert_large", 24), ("bert_base", 24), ("unet", 1),
         ("resnet50", 32), ("googlenet", 32))),
    6: ("AR Assistant", "arvr",
        (("d2go", 10), ("planercnn", 15), ("midas", 30), ("emformer", 3),
         ("hrvit", 10))),
    7: ("AR Gaming", "arvr",
        (("planercnn", 15), ("hand_sp", 45), ("midas", 30))),
    8: ("Outdoors", "arvr",
        (("d2go", 30), ("emformer", 3))),
    9: ("Social", "arvr",
        (("eyecod", 60), ("hand_sp", 30), ("sp2dense", 30))),
    10: ("VR Gaming", "arvr",
         (("eyecod", 60), ("hand_sp", 45))),
}

DATACENTER_IDS: tuple[int, ...] = (1, 2, 3, 4, 5)
ARVR_IDS: tuple[int, ...] = (6, 7, 8, 9, 10)


def scenario_ids() -> tuple[int, ...]:
    """All scenario ids (1..10)."""
    return tuple(sorted(_SPECS))


@lru_cache(maxsize=None)
def scenario(scenario_id: int) -> Scenario:
    """Build scenario ``scenario_id`` exactly as curated in Table III."""
    try:
        title, use_case, models = _SPECS[scenario_id]
    except KeyError:
        raise WorkloadError(
            f"unknown scenario id {scenario_id}; valid: {scenario_ids()}"
        ) from None
    instances = tuple(ModelInstance(zoo.build(name), batch)
                      for name, batch in models)
    return Scenario(name=f"sc{scenario_id}:{title}", instances=instances,
                    use_case=use_case)


def use_case_models(use_case: str) -> tuple[str, ...]:
    """Zoo models Table III pairs with ``use_case`` (sorted, unique).

    The generator's use-case-constrained samplers draw from these pools,
    so generated workloads stay within the model families the paper
    evaluates for that deployment (datacenter MLPerf vs XRBench AR/VR).
    """
    names = {name
             for _, case, models in _SPECS.values() if case == use_case
             for name, _ in models}
    if not names:
        cases = sorted({case for _, case, _ in _SPECS.values()})
        raise WorkloadError(
            f"unknown use case {use_case!r}; known: {cases}")
    return tuple(sorted(names))


def use_case_batches(use_case: str) -> tuple[int, ...]:
    """Batch sizes Table III runs ``use_case`` models at (sorted, unique)."""
    batches = {batch
               for _, case, models in _SPECS.values() if case == use_case
               for _, batch in models}
    if not batches:
        cases = sorted({case for _, case, _ in _SPECS.values()})
        raise WorkloadError(
            f"unknown use case {use_case!r}; known: {cases}")
    return tuple(sorted(batches))


def datacenter_scenarios() -> tuple[Scenario, ...]:
    """Scenarios 1-5 (MLPerf datacenter multi-tenancy)."""
    return tuple(scenario(i) for i in DATACENTER_IDS)


def arvr_scenarios() -> tuple[Scenario, ...]:
    """Scenarios 6-10 (XRBench AR/VR)."""
    return tuple(scenario(i) for i in ARVR_IDS)
