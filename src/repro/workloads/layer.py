"""Layer-granularity workload IR.

SCAR schedules at the layer granularity (Definition 1): every model in a
multi-model scenario is a topologically-sorted sequence of layers.  A layer
is described by the seven canonical loop dimensions used by MAESTRO-style
cost models:

====  ========================================================
dim   meaning
====  ========================================================
``n`` batch
``k`` output channels (conv) / output features (GEMM ``N``)
``c`` input channels (conv) / reduction dim (GEMM ``K``)
``y`` output rows (conv) / sequence length (GEMM ``M``)
``x`` output cols (conv) / 1 for GEMM
``r`` kernel height (1 for GEMM)
``s`` kernel width  (1 for GEMM)
====  ========================================================

The IR is deliberately dataflow-agnostic: the same :class:`Layer` is costed
under every dataflow class by :mod:`repro.dataflow.cost`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.errors import WorkloadError


class LayerOp(enum.Enum):
    """Operator classes distinguished by the cost model.

    ``CONV``    dense 2D convolution (also used for transposed convs).
    ``DWCONV``  depthwise convolution (``k == c``, per-channel kernels).
    ``GEMM``    fully-connected / matmul (attention projections, FFNs).
    ``POOL``    pooling; modelled as a weight-less depthwise op.
    ``ELEMWISE`` element-wise op (residual add, activation); near-free
                compute but real data movement.
    """

    CONV = "conv"
    DWCONV = "dwconv"
    GEMM = "gemm"
    POOL = "pool"
    ELEMWISE = "elemwise"


_POSITIVE_DIMS = ("n", "k", "c", "y", "x", "r", "s", "stride")


@dataclass(frozen=True)
class Layer:
    """One schedulable layer of a DNN model.

    Dimensions follow the convention in the module docstring.  ``stride``
    relates output spatial size to input spatial size (``y_in ~= y * stride``)
    and only affects operand-size estimates, not MAC counts (which are defined
    over output elements).

    ``bytes_per_element`` defaults to 1 (int8, as in Simba-class chiplets).
    """

    name: str
    op: LayerOp
    n: int = 1
    k: int = 1
    c: int = 1
    y: int = 1
    x: int = 1
    r: int = 1
    s: int = 1
    stride: int = 1
    bytes_per_element: int = 1

    def __post_init__(self) -> None:
        for dim in _POSITIVE_DIMS:
            value = getattr(self, dim)
            if not isinstance(value, int) or value < 1:
                raise WorkloadError(
                    f"layer {self.name!r}: dimension {dim}={value!r} must be "
                    "a positive integer"
                )
        if self.bytes_per_element < 1:
            raise WorkloadError(
                f"layer {self.name!r}: bytes_per_element must be >= 1"
            )
        if self.op is LayerOp.DWCONV and self.k != self.c:
            raise WorkloadError(
                f"depthwise layer {self.name!r} requires k == c "
                f"(got k={self.k}, c={self.c})"
            )

    # -- derived counts ------------------------------------------------

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of the layer.

        Depthwise ops reduce over a single channel; element-wise ops touch
        each output element once.
        """
        if self.op in (LayerOp.DWCONV, LayerOp.POOL):
            return self.n * self.c * self.y * self.x * self.r * self.s
        if self.op is LayerOp.ELEMWISE:
            return self.n * self.k * self.y * self.x
        return self.n * self.k * self.c * self.y * self.x * self.r * self.s

    @property
    def weight_bytes(self) -> int:
        """Size of the layer's weights (zero for pooling/element-wise)."""
        if self.op in (LayerOp.POOL, LayerOp.ELEMWISE):
            return 0
        if self.op is LayerOp.DWCONV:
            return self.c * self.r * self.s * self.bytes_per_element
        return self.k * self.c * self.r * self.s * self.bytes_per_element

    @property
    def input_bytes(self) -> int:
        """Size of the input activation tensor (per full batch ``n``)."""
        y_in = self.y * self.stride + max(self.r - self.stride, 0)
        x_in = self.x * self.stride + max(self.s - self.stride, 0)
        if self.op is LayerOp.GEMM:
            # GEMM input is (M=y) x (K=c); x/r/s are 1 by convention.
            return self.n * self.y * self.c * self.bytes_per_element
        return self.n * self.c * y_in * x_in * self.bytes_per_element

    @property
    def output_bytes(self) -> int:
        """Size of the output activation tensor (per full batch ``n``)."""
        return self.n * self.k * self.y * self.x * self.bytes_per_element

    @property
    def footprint_bytes(self) -> int:
        """Working-set estimate: weights + input + output."""
        return self.weight_bytes + self.input_bytes + self.output_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """MACs per byte of operand traffic; drives dataflow affinity."""
        traffic = max(self.footprint_bytes, 1)
        return self.macs / traffic

    # -- manipulation ---------------------------------------------------

    def with_batch(self, batch: int) -> "Layer":
        """Return a copy of this layer with the batch dimension replaced."""
        if batch < 1:
            raise WorkloadError(f"batch must be >= 1, got {batch}")
        return replace(self, n=batch)

    def scaled(self, name: str, *, y: int | None = None, x: int | None = None) -> "Layer":
        """Return a renamed copy with optionally overridden spatial dims."""
        return replace(self, name=name, y=y if y is not None else self.y,
                       x=x if x is not None else self.x)

    def dims(self) -> Mapping[str, int]:
        """Dimension mapping used by the dataflow mappers."""
        return {
            "N": self.n, "K": self.k, "C": self.c,
            "Y": self.y, "X": self.x, "R": self.r, "S": self.s,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        gmacs = self.macs / 1e9
        return (
            f"{self.name}[{self.op.value} n{self.n} k{self.k} c{self.c} "
            f"y{self.y} x{self.x} r{self.r} s{self.s} | {gmacs:.3f} GMACs]"
        )


def conv(name: str, c: int, k: int, y: int, x: int, r: int = 3, s: int | None = None,
         stride: int = 1, n: int = 1) -> Layer:
    """Convenience constructor for a dense convolution layer."""
    return Layer(name=name, op=LayerOp.CONV, n=n, k=k, c=c, y=y, x=x,
                 r=r, s=s if s is not None else r, stride=stride)


def dwconv(name: str, c: int, y: int, x: int, r: int = 3, s: int | None = None,
           stride: int = 1, n: int = 1) -> Layer:
    """Convenience constructor for a depthwise convolution layer."""
    return Layer(name=name, op=LayerOp.DWCONV, n=n, k=c, c=c, y=y, x=x,
                 r=r, s=s if s is not None else r, stride=stride)


def gemm(name: str, m: int, n_out: int, k_in: int, batch: int = 1) -> Layer:
    """Convenience constructor for a GEMM (``M x K_in`` times ``K_in x N``).

    ``m`` maps to ``y`` (sequence length / rows), ``n_out`` to ``k`` and
    ``k_in`` to ``c``.
    """
    return Layer(name=name, op=LayerOp.GEMM, n=batch, k=n_out, c=k_in,
                 y=m, x=1, r=1, s=1)


def pool(name: str, c: int, y: int, x: int, r: int = 2, stride: int = 2,
         n: int = 1) -> Layer:
    """Convenience constructor for a pooling layer."""
    return Layer(name=name, op=LayerOp.POOL, n=n, k=c, c=c, y=y, x=x,
                 r=r, s=r, stride=stride)


def elemwise(name: str, k: int, y: int, x: int, n: int = 1) -> Layer:
    """Convenience constructor for an element-wise layer (residual add)."""
    return Layer(name=name, op=LayerOp.ELEMWISE, n=n, k=k, c=k, y=y, x=x)
