"""Model and scenario IR (Definitions 1 and the workload side of Sec. III).

A :class:`Model` is a topologically-sorted sequence of :class:`Layer` objects
(the ordering SCAR's SEG engine consumes).  A :class:`ModelInstance` binds a
model to the batch size a scenario runs it at; a :class:`Scenario` is the
multi-model workload ``Sc`` of Definition 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import WorkloadError
from repro.workloads.layer import Layer


@dataclass(frozen=True)
class Model:
    """A DNN model as an ordered layer sequence.

    ``layers`` must be topologically sorted: layer ``j`` may only consume
    outputs of layers ``< j``.  Skip connections are captured by
    ``skip_edges`` (producer index -> consumer index) purely for
    documentation/traffic accounting; the scheduler treats the sequence as
    the dependency chain, exactly as the paper does ("topologically sorted
    model layers").
    """

    name: str
    layers: tuple[Layer, ...]
    skip_edges: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if not self.layers:
            raise WorkloadError(f"model {self.name!r} has no layers")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise WorkloadError(f"model {self.name!r} has duplicate layer names")
        for src, dst in self.skip_edges:
            if not (0 <= src < dst < len(self.layers)):
                raise WorkloadError(
                    f"model {self.name!r}: skip edge ({src}, {dst}) is not a "
                    "forward edge within range"
                )

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __getitem__(self, idx: int) -> Layer:
        return self.layers[idx]

    @property
    def total_macs(self) -> int:
        """Total MAC count across all layers (batch 1 as defined)."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weight_bytes(self) -> int:
        """Total parameter size of the model."""
        return sum(layer.weight_bytes for layer in self.layers)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: {len(self.layers)} layers, "
            f"{self.total_macs / 1e9:.2f} GMACs, "
            f"{self.total_weight_bytes / 1e6:.1f} MB weights"
        )


@dataclass(frozen=True)
class ModelInstance:
    """A model bound to the batch size a scenario executes it with.

    ``instance_name`` makes the tenant addressable when a scenario runs
    several instances of the same model (the ``model#k`` convention of
    generated multi-tenant workloads: ``resnet50``, ``resnet50#2``, ...).
    ``None`` means the instance is simply known by its model's name;
    an explicit name equal to the model name normalizes back to ``None``
    so wire round-trips compare equal.
    """

    model: Model
    batch: int = 1
    instance_name: str | None = None

    def __post_init__(self) -> None:
        # bool is an int subclass: reject it explicitly, then anything
        # non-integral -- a float batch silently poisons total_macs and
        # every batched layer shape downstream.
        if isinstance(self.batch, bool) or not isinstance(self.batch, int):
            raise WorkloadError(
                f"instance of {self.model.name!r}: batch must be an int, "
                f"got {self.batch!r} ({type(self.batch).__name__})"
            )
        if self.batch < 1:
            raise WorkloadError(
                f"instance of {self.model.name!r}: batch must be >= 1"
            )
        if self.instance_name is not None:
            if not isinstance(self.instance_name, str) \
                    or not self.instance_name:
                raise WorkloadError(
                    f"instance of {self.model.name!r}: instance_name must "
                    f"be a non-empty string, got {self.instance_name!r}"
                )
            if self.instance_name == self.model.name:
                object.__setattr__(self, "instance_name", None)

    @property
    def name(self) -> str:
        """The tenant-unique name schedules and lookups key on."""
        return self.instance_name if self.instance_name is not None \
            else self.model.name

    @property
    def num_layers(self) -> int:
        return len(self.model)

    def layer(self, idx: int) -> Layer:
        """Layer ``idx`` with the instance batch applied."""
        return self.model[idx].with_batch(self.batch)

    def layers(self) -> tuple[Layer, ...]:
        """All layers with the instance batch applied."""
        return tuple(self.model[i].with_batch(self.batch)
                     for i in range(len(self.model)))

    @property
    def total_macs(self) -> int:
        return self.model.total_macs * self.batch


@dataclass(frozen=True)
class Scenario:
    """Multi-model workload scenario ``Sc`` (Definition 1).

    ``use_case`` tags the scenario family ("datacenter" or "arvr"), which
    selects the hardware operating point in the experiment drivers (4096 vs
    256 PEs per chiplet).
    """

    name: str
    instances: tuple[ModelInstance, ...]
    use_case: str = "datacenter"

    def __post_init__(self) -> None:
        if not self.instances:
            raise WorkloadError(f"scenario {self.name!r} has no models")
        names = [inst.name for inst in self.instances]
        if len(set(names)) != len(names):
            raise WorkloadError(
                f"scenario {self.name!r} has duplicate instance names: "
                f"{names}; give repeated tenants unique instance names "
                f"(the 'model#k' convention, e.g. 'resnet50#2')"
            )

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self) -> Iterator[ModelInstance]:
        return iter(self.instances)

    def __getitem__(self, idx: int) -> ModelInstance:
        return self.instances[idx]

    @property
    def model_names(self) -> tuple[str, ...]:
        """Tenant-unique instance names, in instance order.

        For single-tenant scenarios these are plain model names; a
        scenario running the same model twice reports e.g.
        ``("resnet50", "resnet50#2")``.
        """
        return tuple(inst.name for inst in self.instances)

    @property
    def total_layers(self) -> int:
        """``L`` of Sec. II-D: total layer count across all models."""
        return sum(inst.num_layers for inst in self.instances)

    def instance(self, model_name: str) -> ModelInstance:
        """Look up a model instance by its (tenant-unique) instance name."""
        for inst in self.instances:
            if inst.name == model_name:
                return inst
        raise WorkloadError(
            f"scenario {self.name!r} has no instance named {model_name!r}; "
            f"instances: {list(self.model_names)}"
        )

    def summary(self) -> str:
        lines = [f"scenario {self.name} ({self.use_case}), "
                 f"{len(self.instances)} models, {self.total_layers} layers"]
        for inst in self.instances:
            lines.append(f"  - {inst.model.summary()} @ batch {inst.batch}")
        return "\n".join(lines)


def scheduling_space_magnitude(scenario: Scenario, num_chiplets: int) -> float:
    """Order-of-magnitude of the raw scheduling space (Sec. II-D).

    ``O(C^L * L! / (L1! L2! ... LN!))`` expressed as a log10 so the 10^56
    figure from the paper is reproducible without overflowing.
    """
    import math

    total = scenario.total_layers
    log10 = total * math.log10(num_chiplets)
    log10 += math.lgamma(total + 1) / math.log(10)
    for inst in scenario.instances:
        log10 -= math.lgamma(inst.num_layers + 1) / math.log(10)
    return log10
