"""Seeded scenario generator: deterministic workload families.

The paper evaluates exactly ten hand-curated Table III scenarios; this
module produces arbitrarily many more, deterministically from a seed, so
large scheduling campaigns (:mod:`repro.sweep`) have workloads to run
over:

* :func:`random_mix` -- multi-tenant mixes drawn from the zoo, with
  model and batch pools constrained to the use case's Table III
  families (datacenter MLPerf vs XRBench AR/VR);
* :func:`replicated` -- N tenants of the *same* model at (possibly
  different) batch sizes, the classic scale-out shape;
* :class:`GeneratorSpec` + :func:`generate` -- a declarative, JSON
  round-trippable description of a scenario family, the form ``scar
  generate`` consumes.

Determinism contract: the same spec (same seed) produces bit-identical
scenarios -- equal as dataclasses and exact through the
:func:`repro.config.files.scenario_to_dict` wire round-trip.  RNG
streams are seeded from strings (stable across processes and Python
hash randomization), never from global state.

Repeated tenants follow the ``model#k`` instance-name convention
(``resnet50``, ``resnet50#2``, ...): schedules, lookups and reports key
on tenant-unique instance names, see
:class:`repro.workloads.model.ModelInstance`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import ConfigError, WorkloadError
from repro.workloads import zoo
from repro.workloads.model import ModelInstance, Scenario
from repro.workloads.scenarios import use_case_batches, use_case_models

#: Document kind/version of the GeneratorSpec wire form.
SPEC_KIND = "generator_spec"
SPEC_VERSION = 1

_KINDS = ("random_mix", "replicated")


def _instances(pairs: Sequence[tuple[str, int]]) -> tuple[ModelInstance, ...]:
    """Build instances, naming repeated tenants ``model#k``.

    The first tenant of a model keeps the plain model name; the k-th
    (k >= 2) becomes ``model#k``, in draw order, so the naming is a pure
    function of the pair sequence.
    """
    counts: dict[str, int] = {}
    instances = []
    for model_name, batch in pairs:
        counts[model_name] = counts.get(model_name, 0) + 1
        k = counts[model_name]
        instance_name = None if k == 1 else f"{model_name}#{k}"
        instances.append(ModelInstance(zoo.build(model_name), batch,
                                       instance_name=instance_name))
    return tuple(instances)


def random_mix(seed: int, *, tenants: int = 3,
               use_case: str = "datacenter",
               models: Sequence[str] | None = None,
               batches: Sequence[int] | None = None,
               index: int = 0, name: str | None = None) -> Scenario:
    """A seeded random multi-tenant mix drawn from the zoo.

    ``tenants`` models are drawn with replacement from ``models``
    (default: the use case's Table III pool), each at a batch drawn from
    ``batches`` (default: the use case's Table III batch sizes).
    Repeats get ``model#k`` instance names.  ``index`` selects a sibling
    scenario within the same seeded family (used by :func:`generate`).
    """
    if tenants < 1:
        raise WorkloadError(f"tenants must be >= 1, got {tenants}")
    model_pool = tuple(models) if models is not None \
        else use_case_models(use_case)
    batch_pool = tuple(batches) if batches is not None \
        else use_case_batches(use_case)
    for model_name in model_pool:
        zoo.build(model_name)  # validates the pool up front
    rng = random.Random(f"random_mix:{seed}:{index}")
    pairs = [(rng.choice(model_pool), rng.choice(batch_pool))
             for _ in range(tenants)]
    return Scenario(
        name=name or f"gen:mix:{use_case}:s{seed}.{index}",
        instances=_instances(pairs), use_case=use_case)


def replicated(model: str, batches: Sequence[int], *,
               use_case: str = "datacenter",
               name: str | None = None) -> Scenario:
    """N tenants of the same zoo model at the given batch sizes.

    ``replicated("resnet50", (1, 8, 32))`` is three resnet50 tenants
    named ``resnet50`` / ``resnet50#2`` / ``resnet50#3`` at batches 1,
    8 and 32.
    """
    batches = tuple(batches)
    if not batches:
        raise WorkloadError("replicated scenario needs at least one batch")
    pairs = [(model, batch) for batch in batches]
    return Scenario(
        name=name or f"gen:rep:{model}x{len(batches)}",
        instances=_instances(pairs), use_case=use_case)


@dataclass(frozen=True)
class GeneratorSpec:
    """Declarative description of one seeded scenario family.

    ``kind`` selects the sampler (``"random_mix"`` / ``"replicated"``);
    ``count`` scenarios are generated, each from its own seeded RNG
    stream (``seed``, index), so families are reproducible and
    extensible (growing ``count`` keeps earlier scenarios identical).

    ``random_mix`` uses ``tenants``, and optionally ``models`` /
    ``batches`` to override the use-case-constrained pools.
    ``replicated`` requires ``model``; explicit ``batches`` pin the
    tenant batch sizes (then every generated scenario is the same shape
    and ``count`` should be 1), otherwise ``tenants`` batches are drawn
    per scenario from the use-case pool.
    """

    kind: str
    seed: int = 0
    count: int = 1
    use_case: str = "datacenter"
    tenants: int = 3
    model: str | None = None
    models: tuple[str, ...] | None = None
    batches: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigError(
                f"unknown generator kind {self.kind!r}; known: {_KINDS}")
        if self.count < 1:
            raise ConfigError(f"count must be >= 1, got {self.count}")
        if self.tenants < 1:
            raise ConfigError(f"tenants must be >= 1, got {self.tenants}")
        if self.kind == "replicated" and not self.model:
            raise ConfigError("replicated spec requires a model name")
        # Reject kind-irrelevant fields instead of silently ignoring
        # them -- a spec naming both is almost certainly a mistake.
        if self.kind == "random_mix" and self.model is not None:
            raise ConfigError(
                "random_mix ignores 'model'; use 'models' to constrain "
                "the pool (or kind='replicated')")
        if self.kind == "replicated" and self.models is not None:
            raise ConfigError(
                "replicated takes one 'model', not a 'models' pool")
        if self.models is not None:
            object.__setattr__(self, "models", tuple(self.models))
        if self.batches is not None:
            object.__setattr__(self, "batches", tuple(self.batches))

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": SPEC_KIND,
            "version": SPEC_VERSION,
            "generator": self.kind,
            "seed": self.seed,
            "count": self.count,
            "use_case": self.use_case,
            "tenants": self.tenants,
            "model": self.model,
            "models": None if self.models is None else list(self.models),
            "batches": None if self.batches is None else list(self.batches),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "GeneratorSpec":
        if not isinstance(data, dict) or data.get("kind") != SPEC_KIND:
            raise ConfigError(
                f"not a {SPEC_KIND} document: kind="
                f"{data.get('kind') if isinstance(data, dict) else data!r}")
        try:
            return cls(
                kind=data["generator"],
                seed=data.get("seed", 0),
                count=data.get("count", 1),
                use_case=data.get("use_case", "datacenter"),
                tenants=data.get("tenants", 3),
                model=data.get("model"),
                models=None if data.get("models") is None
                else tuple(data["models"]),
                batches=None if data.get("batches") is None
                else tuple(data["batches"]),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed generator spec: {exc}") from exc


def generate(spec: GeneratorSpec) -> tuple[Scenario, ...]:
    """Materialize a spec's ``count`` scenarios, deterministically.

    Scenario ``i`` depends only on ``(spec, i)``: regenerating with the
    same spec is bit-identical, and growing ``count`` appends without
    disturbing earlier scenarios.
    """
    scenarios = []
    for i in range(spec.count):
        if spec.kind == "random_mix":
            scenarios.append(random_mix(
                spec.seed, tenants=spec.tenants, use_case=spec.use_case,
                models=spec.models, batches=spec.batches, index=i))
        else:  # replicated
            assert spec.model is not None  # __post_init__ guarantees it
            if spec.batches is not None:
                batches: Sequence[int] = spec.batches
            else:
                rng = random.Random(f"replicated:{spec.seed}:{i}")
                pool = use_case_batches(spec.use_case)
                batches = tuple(rng.choice(pool)
                                for _ in range(spec.tenants))
            scenarios.append(replicated(
                spec.model, batches, use_case=spec.use_case,
                name=f"gen:rep:{spec.model}x{len(batches)}:"
                     f"s{spec.seed}.{i}"))
    return tuple(scenarios)
