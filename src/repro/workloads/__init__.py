"""Workload substrate: layer IR, models, zoo, Table III scenarios and
the seeded scenario generator."""

from repro.workloads.layer import (
    Layer,
    LayerOp,
    conv,
    dwconv,
    elemwise,
    gemm,
    pool,
)
from repro.workloads.model import (
    Model,
    ModelInstance,
    Scenario,
    scheduling_space_magnitude,
)
from repro.workloads.scenarios import (
    ARVR_IDS,
    DATACENTER_IDS,
    arvr_scenarios,
    datacenter_scenarios,
    scenario,
    scenario_ids,
    use_case_batches,
    use_case_models,
)
from repro.workloads.generator import (
    GeneratorSpec,
    generate,
    random_mix,
    replicated,
)

__all__ = [
    "ARVR_IDS", "DATACENTER_IDS", "GeneratorSpec", "Layer", "LayerOp",
    "Model", "ModelInstance", "Scenario", "arvr_scenarios", "conv",
    "datacenter_scenarios", "dwconv", "elemwise", "gemm", "generate",
    "pool", "random_mix", "replicated", "scenario", "scenario_ids",
    "scheduling_space_magnitude", "use_case_batches", "use_case_models",
]
