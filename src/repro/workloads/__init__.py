"""Workload substrate: layer IR, models, zoo and the Table III scenarios."""

from repro.workloads.layer import (
    Layer,
    LayerOp,
    conv,
    dwconv,
    elemwise,
    gemm,
    pool,
)
from repro.workloads.model import (
    Model,
    ModelInstance,
    Scenario,
    scheduling_space_magnitude,
)
from repro.workloads.scenarios import (
    ARVR_IDS,
    DATACENTER_IDS,
    arvr_scenarios,
    datacenter_scenarios,
    scenario,
    scenario_ids,
)

__all__ = [
    "ARVR_IDS", "DATACENTER_IDS", "Layer", "LayerOp", "Model",
    "ModelInstance", "Scenario", "arvr_scenarios", "conv",
    "datacenter_scenarios", "dwconv", "elemwise", "gemm", "pool",
    "scenario", "scenario_ids", "scheduling_space_magnitude",
]
