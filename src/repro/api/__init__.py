"""Public scheduling API: typed requests, a policy registry, sessions.

The one stable entry point every consumer (CLI, experiment drivers,
batch jobs, future services) builds on::

    from repro.api import ScheduleRequest, Session

    session = Session()
    result = session.submit(ScheduleRequest(
        scenario_id=4, template="het_sides_3x3", policy="scar"))
    print(result.metrics.summary())
    print(result.to_json())          # the JSON wire format

See DESIGN.md ("The repro.api facade") for the wire format and the
session lifecycle, and :mod:`repro.api.registry` for registering custom
scheduler policies.
"""

from repro.api import policies  # noqa: F401  (registers the built-ins)
from repro.api.registry import (
    DEFAULT_REGISTRY,
    PolicyContext,
    PolicyOutcome,
    SchedulerRegistry,
    register_policy,
)
from repro.api.request import (
    ScheduleRequest,
    ScheduleResult,
    scenario_spec,
)
from repro.api.session import Session
from repro.api.wire import (
    WIRE_VERSION,
    CandidatePoint,
    ErrorDocument,
    is_error_document,
    metrics_from_dict,
    metrics_to_dict,
    perf_from_dict,
    perf_to_dict,
)

__all__ = [
    "CandidatePoint", "DEFAULT_REGISTRY", "ErrorDocument", "PolicyContext",
    "PolicyOutcome", "ScheduleRequest", "ScheduleResult",
    "SchedulerRegistry", "Session", "WIRE_VERSION", "is_error_document",
    "metrics_from_dict", "metrics_to_dict", "perf_from_dict",
    "perf_to_dict", "register_policy", "scenario_spec",
]
