"""Typed, serializable scheduling requests and results.

:class:`ScheduleRequest` is the single declarative input of the public
API: one frozen value object naming the workload (a Table III scenario id
or an inline scenario spec), the MCM template, the scheduler policy and
every search knob.  :class:`ScheduleResult` is the matching output:
schedule, metrics, per-window candidate summaries and perf statistics.

Both round-trip through plain JSON (``from_dict(to_dict(x)) == x``), so
the same value objects drive in-process calls, batch fan-out over worker
processes, files on disk and -- eventually -- an HTTP front-end.
``ScheduleRequest.cache_key()`` is the canonical wire form and doubles as
the :class:`~repro.api.session.Session` memo key, so any two requests
that serialize identically share one result.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any

from repro.api.wire import (
    WIRE_VERSION,
    CandidatePoint,
    check_envelope,
    loads_document,
    metrics_from_dict,
    metrics_to_dict,
    perf_from_dict,
    perf_to_dict,
)
from repro.config.files import (
    scenario_from_dict,
    scenario_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.core.budget import SearchBudget
from repro.core.metrics import ScheduleMetrics
from repro.core.scar import SCARResult
from repro.core.schedule import Schedule
from repro.engine.backends import backend_names
from repro.engine.candidates import assemble_candidate_points
from repro.engine.tensorkernel import EVAL_MODES
from repro.core.scoring import Objective, objective_by_name
from repro.errors import ConfigError
from repro.perf import PerfReport
from repro.workloads.model import Scenario
from repro.workloads.scenarios import scenario as table3_scenario

_REQUEST_KIND = "schedule_request"
_RESULT_KIND = "schedule_result"


def scenario_spec(scenario: Scenario) -> dict[str, Any]:
    """Inline-spec form of a scenario for :class:`ScheduleRequest`.

    Models that rebuild bit-identically from the zoo are referenced by
    name (compact, Table III style); anything else -- custom or modified
    models -- has its layers inlined so the spec is self-contained.
    Multi-tenant instance names (``model#k``) ride along.  This is
    exactly :func:`repro.config.files.scenario_to_dict`, which inlines
    non-zoo models automatically.
    """
    return scenario_to_dict(scenario)


@dataclass(frozen=True)
class ScheduleRequest:
    """One declarative scheduling job.

    Exactly one of ``scenario_id`` (Table III reference) and
    ``scenario_spec`` (inline workload description, see
    :func:`repro.config.files.scenario_from_dict`) must be set.
    ``policy`` names an entry of the scheduler registry
    (:mod:`repro.api.registry`); the engine-mode fields (``packing``,
    ``provisioning``, ``seg_search``, ...) are forwarded to policies that
    understand them and ignored by the baselines, mirroring the paper's
    scheduler hyperparameters.

    ``use_eval_cache`` toggles the segment-cost memo inside the SCAR
    evaluator; ``memoize`` opts the request out of the session-level
    result memo.  Both participate in :meth:`cache_key` -- together with
    ``jobs`` -- so runs with different caching/parallelism settings can
    never alias to one memo entry.

    ``backend`` names the engine execution backend (``"serial"`` /
    ``"process"`` / a plugin registered via
    :func:`repro.engine.register_backend`); ``None`` defers to the
    session's default, falling back to the historical ``jobs`` inference
    (1 = serial, >1 = process pool).  ``beam`` is the
    :class:`~repro.engine.WindowSearch` beam width; ``None`` (default)
    is the paper's exhaustive search.  Both are bit-identity-preserving
    for ``backend`` and behaviour-changing for ``beam`` -- which is why
    both participate in :meth:`cache_key`.

    ``eval_mode`` selects the candidate-costing kernel: ``"scalar"``
    (the pure-Python Sec. III-E reference) or ``"vector"`` (the numpy
    tensor kernel, bit-identical results, requires the optional numpy
    extra).  ``None`` defers to the session default, falling back to
    ``"scalar"``.  It participates in :meth:`cache_key` like every other
    field, even though results are identical across modes -- the memo
    never aliases requests that serialize differently.
    """

    scenario_id: int | None = None
    scenario_spec: dict[str, Any] | None = None
    template: str = "het_sides_3x3"
    policy: str = "scar"
    objective: str = "edp"
    latency_bound_s: float | None = None
    nsplits: int = 4
    budget: SearchBudget = field(default_factory=SearchBudget)
    packing: str = "greedy"
    provisioning: str = "uniform"
    prov_limit: int = 64
    max_nodes_per_model: int | None = None
    seg_search: str = "enumerative"
    jobs: int = 1
    backend: str | None = None
    beam: int | None = None
    eval_mode: str | None = None
    use_eval_cache: bool = True
    memoize: bool = True

    def __post_init__(self) -> None:
        if (self.scenario_id is None) == (self.scenario_spec is None):
            raise ConfigError(
                "exactly one of scenario_id and scenario_spec must be set")
        if self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {self.jobs}")
        if self.nsplits < 0:
            raise ConfigError(f"nsplits must be >= 0, got {self.nsplits}")
        if self.backend is not None and self.backend not in backend_names():
            raise ConfigError(
                f"unknown backend {self.backend!r}; "
                f"registered: {backend_names()}")
        if self.beam is not None and self.beam < 1:
            raise ConfigError(
                f"beam must be None or >= 1, got {self.beam}")
        if self.eval_mode is not None and self.eval_mode not in EVAL_MODES:
            raise ConfigError(
                f"unknown eval_mode {self.eval_mode!r}; "
                f"expected one of {EVAL_MODES}")
        objective_by_name(self.objective)  # validates the name

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would choke on the
        # scenario_spec dict; the canonical wire form is the identity.
        return hash(self.cache_key())

    # -- construction helpers ---------------------------------------------

    @classmethod
    def for_scenario(cls, scenario: int | Scenario,
                     **kwargs: Any) -> "ScheduleRequest":
        """Build a request from a scenario id or an in-memory scenario."""
        if isinstance(scenario, Scenario):
            return cls(scenario_spec=scenario_spec(scenario), **kwargs)
        return cls(scenario_id=scenario, **kwargs)

    def replace(self, **changes: Any) -> "ScheduleRequest":
        """A copy with ``changes`` applied (dataclasses.replace)."""
        return replace(self, **changes)

    # -- resolution --------------------------------------------------------

    def resolve_scenario(self) -> Scenario:
        """Materialize the workload this request names."""
        if self.scenario_id is not None:
            return table3_scenario(self.scenario_id)
        return scenario_from_dict(self.scenario_spec)

    def build_objective(self) -> Objective:
        """The search objective, with the optional latency bound applied."""
        objective = objective_by_name(self.objective)
        if self.latency_bound_s is not None:
            objective = replace(objective,
                                latency_bound_s=self.latency_bound_s)
        return objective

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (the wire format; see DESIGN.md)."""
        return {
            "kind": _REQUEST_KIND,
            "version": WIRE_VERSION,
            "scenario_id": self.scenario_id,
            "scenario_spec": self.scenario_spec,
            "template": self.template,
            "policy": self.policy,
            "objective": self.objective,
            "latency_bound_s": self.latency_bound_s,
            "nsplits": self.nsplits,
            "budget": asdict(self.budget),
            "packing": self.packing,
            "provisioning": self.provisioning,
            "prov_limit": self.prov_limit,
            "max_nodes_per_model": self.max_nodes_per_model,
            "seg_search": self.seg_search,
            "jobs": self.jobs,
            "backend": self.backend,
            "beam": self.beam,
            "eval_mode": self.eval_mode,
            "use_eval_cache": self.use_eval_cache,
            "memoize": self.memoize,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScheduleRequest":
        """Rebuild a request from its wire form."""
        check_envelope(data, _REQUEST_KIND)
        try:
            return cls(
                scenario_id=data["scenario_id"],
                scenario_spec=data["scenario_spec"],
                template=data["template"],
                policy=data["policy"],
                objective=data["objective"],
                latency_bound_s=data.get("latency_bound_s"),
                nsplits=data["nsplits"],
                budget=SearchBudget(**data["budget"]),
                packing=data["packing"],
                provisioning=data["provisioning"],
                prov_limit=data["prov_limit"],
                max_nodes_per_model=data.get("max_nodes_per_model"),
                seg_search=data["seg_search"],
                jobs=data["jobs"],
                backend=data.get("backend"),
                beam=data.get("beam"),
                # .get: documents written before the vector kernel landed
                # have no eval_mode field and mean the scalar default.
                eval_mode=data.get("eval_mode"),
                use_eval_cache=data["use_eval_cache"],
                memoize=data["memoize"],
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed schedule request: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScheduleRequest":
        return cls.from_dict(loads_document(text, "schedule request"))

    def cache_key(self) -> str:
        """Canonical identity for session memoization.

        The compact sorted-keys JSON dump of :meth:`to_dict`, so the memo
        key covers *every* field -- scenario, template, policy, objective,
        budget, engine modes, ``jobs`` and the cache flags.
        """
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


@dataclass(frozen=True)
class ScheduleResult:
    """Everything one :class:`ScheduleRequest` produced.

    ``window_candidates`` summarizes the evaluated population per time
    window (rank 0 after sorting by score = the chosen candidate); the
    Pareto figures consume it via :meth:`candidate_points`.  ``raw``
    keeps the in-process :class:`~repro.core.scar.SCARResult` (full
    window candidates, packing plan) for callers that need more than the
    wire form carries; it never crosses the wire and is excluded from
    equality so JSON round-trips compare clean.
    """

    request: ScheduleRequest
    schedule: Schedule
    metrics: ScheduleMetrics
    window_candidates: tuple[tuple[CandidatePoint, ...], ...] = ()
    num_evaluated: int = 0
    perf: PerfReport | None = None
    raw: SCARResult | None = field(default=None, compare=False,
                                   repr=False)

    # -- metric conveniences (mirror the legacy StrategyRun) ---------------

    @property
    def latency_s(self) -> float:
        return self.metrics.latency_s

    @property
    def energy_j(self) -> float:
        return self.metrics.energy_j

    @property
    def edp(self) -> float:
        return self.metrics.edp

    def value(self, metric: str) -> float:
        """Look up latency / energy / edp by name."""
        if metric == "latency":
            return self.latency_s
        if metric == "energy":
            return self.energy_j
        if metric == "edp":
            return self.edp
        raise ConfigError(f"unknown metric {metric!r}")

    def same_payload(self, other: "ScheduleResult") -> bool:
        """Equality on the deterministic payload.

        The service determinism contract: request, schedule, metrics,
        candidate summaries and evaluation count -- excluding ``raw``
        (never crosses the wire) and ``perf`` (wall times vary run to
        run).  This is THE definition parity tests and benches gate on.
        """
        return (self.request == other.request
                and self.schedule == other.schedule
                and self.metrics == other.metrics
                and self.window_candidates == other.window_candidates
                and self.num_evaluated == other.num_evaluated)

    def candidate_points(self) -> list[tuple[float, float]]:
        """(latency_s, energy_j) of assembled candidate schedules.

        Same construction as
        :meth:`repro.core.scar.SCARResult.candidate_points` (one shared
        helper in :mod:`repro.engine.candidates`): same-rank window
        candidates combine across windows; policies without a candidate
        population contribute their single schedule point.
        """
        return assemble_candidate_points(
            self.window_candidates,
            fallback=(self.metrics.latency_s, self.metrics.energy_j))

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (request echoed back for self-description)."""
        return {
            "kind": _RESULT_KIND,
            "version": WIRE_VERSION,
            "request": self.request.to_dict(),
            "schedule": schedule_to_dict(self.schedule),
            "metrics": metrics_to_dict(self.metrics),
            "window_candidates": [
                [point.to_dict() for point in window]
                for window in self.window_candidates
            ],
            "num_evaluated": self.num_evaluated,
            "perf": None if self.perf is None else perf_to_dict(self.perf),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScheduleResult":
        """Rebuild a result from its wire form (``raw`` does not survive)."""
        check_envelope(data, _RESULT_KIND)
        try:
            return cls(
                request=ScheduleRequest.from_dict(data["request"]),
                schedule=schedule_from_dict(data["schedule"]),
                metrics=metrics_from_dict(data["metrics"]),
                window_candidates=tuple(
                    tuple(CandidatePoint.from_dict(point)
                          for point in window)
                    for window in data["window_candidates"]
                ),
                num_evaluated=data["num_evaluated"],
                perf=None if data.get("perf") is None
                else perf_from_dict(data["perf"]),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed schedule result: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScheduleResult":
        return cls.from_dict(loads_document(text, "schedule result"))


