"""JSON wire-format converters for the public API value types.

Everything the :mod:`repro.api` facade puts on the wire is plain JSON:
dicts, lists, strings, numbers, booleans.  The converters here are exact
inverses of each other -- ``from_dict(to_dict(x)) == x`` bit-for-bit --
because every numeric field is a python float/int and JSON round-trips
both losslessly (floats use shortest-repr round-tripping).

Derived quantities (``edp``, ``hit_rate``, ``evals_per_s``) are emitted
for the benefit of non-python consumers but ignored on the way back in,
so they can never drift from the primary fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.metrics import (
    ModelWindowMetrics,
    ScheduleMetrics,
    WindowMetrics,
)
from repro.errors import ConfigError
from repro.perf import CacheStats, PerfReport


@dataclass(frozen=True)
class CandidatePoint:
    """Wire-friendly summary of one evaluated window candidate.

    ``score`` is the candidate's objective score inside its window (lower
    is better); latency/energy are the window metrics the Pareto figures
    consume.  Full :class:`~repro.core.sched_engine.WindowCandidate`
    objects stay in-process (see ``ScheduleResult.raw``); only these
    summaries cross the wire.
    """

    score: float
    latency_s: float
    energy_j: float

    def to_dict(self) -> dict[str, Any]:
        return {"score": self.score, "latency_s": self.latency_s,
                "energy_j": self.energy_j}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CandidatePoint":
        try:
            return cls(score=data["score"], latency_s=data["latency_s"],
                       energy_j=data["energy_j"])
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed candidate point: {exc}") from exc


# -- schedule metrics ------------------------------------------------------


def metrics_to_dict(metrics: ScheduleMetrics) -> dict[str, Any]:
    """Serialize a full schedule evaluation (windows and per-model rows)."""
    return {
        "latency_s": metrics.latency_s,
        "energy_j": metrics.energy_j,
        "edp": metrics.edp,  # derived; ignored by metrics_from_dict
        "windows": [
            {
                "index": w.index,
                "latency_s": w.latency_s,
                "energy_j": w.energy_j,
                "per_model": [
                    {
                        "model": m.model,
                        "latency_s": m.latency_s,
                        "energy_j": m.energy_j,
                        "minibatch": m.minibatch,
                        "tile_factor": m.tile_factor,
                        "segment_latencies_s": list(m.segment_latencies_s),
                    }
                    for m in w.per_model
                ],
            }
            for w in metrics.windows
        ],
    }


def metrics_from_dict(data: dict[str, Any]) -> ScheduleMetrics:
    """Rebuild a :class:`ScheduleMetrics` from its serialized form."""
    try:
        windows = tuple(
            WindowMetrics(
                index=w["index"],
                latency_s=w["latency_s"],
                energy_j=w["energy_j"],
                per_model=tuple(
                    ModelWindowMetrics(
                        model=m["model"],
                        latency_s=m["latency_s"],
                        energy_j=m["energy_j"],
                        minibatch=m["minibatch"],
                        tile_factor=m["tile_factor"],
                        segment_latencies_s=tuple(
                            m["segment_latencies_s"]),
                    )
                    for m in w["per_model"]
                ),
            )
            for w in data["windows"]
        )
        return ScheduleMetrics(latency_s=data["latency_s"],
                               energy_j=data["energy_j"], windows=windows)
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed metrics: {exc}") from exc


# -- perf reports ----------------------------------------------------------


def perf_to_dict(perf: PerfReport) -> dict[str, Any]:
    """Serialize a perf report (same payload as ``PerfReport.to_dict``)."""
    return perf.to_dict()


def perf_from_dict(data: dict[str, Any]) -> PerfReport:
    """Rebuild a :class:`PerfReport`; derived rate fields are ignored."""
    try:
        return PerfReport(
            wall_s=data["wall_s"],
            num_evaluated=data["num_evaluated"],
            num_windows=data["num_windows"],
            jobs=data["jobs"],
            cache={table: CacheStats(hits=entry["hits"],
                                     misses=entry["misses"])
                   for table, entry in data.get("cache", {}).items()},
        )
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed perf report: {exc}") from exc
