"""JSON wire-format converters for the public API value types.

Everything the :mod:`repro.api` facade puts on the wire is plain JSON:
dicts, lists, strings, numbers, booleans.  The converters here are exact
inverses of each other -- ``from_dict(to_dict(x)) == x`` bit-for-bit --
because every numeric field is a python float/int and JSON round-trips
both losslessly (floats use shortest-repr round-tripping).

Derived quantities (``edp``, ``hit_rate``, ``evals_per_s``) are emitted
for the benefit of non-python consumers but ignored on the way back in,
so they can never drift from the primary fields.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.core.metrics import (
    ModelWindowMetrics,
    ScheduleMetrics,
    WindowMetrics,
)
from repro.errors import (
    AnalysisError,
    ConfigError,
    DataflowError,
    HardwareError,
    JobNotFoundError,
    ReproError,
    SchedulingError,
    SearchError,
    ServiceError,
    ServiceOverloadedError,
    ValidationError,
    WorkloadError,
)
from repro.perf import CacheStats, PerfReport

#: Wire-format version shared by every document kind (requests, results,
#: jobs, errors); bumped on incompatible schema changes.
WIRE_VERSION = 1


def loads_document(text: str, what: str) -> dict[str, Any]:
    """Parse a JSON wire document, wrapping parse errors as ConfigError."""
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"cannot parse {what}: {exc}") from exc


def check_envelope(data: Any, kind: str) -> None:
    """Validate the shared ``{"kind": ..., "version": ...}`` envelope.

    The single implementation every document kind parses through, so a
    future envelope change (version negotiation, new fields) lands in
    one place.
    """
    if not isinstance(data, dict):
        raise ConfigError(f"expected a {kind} document, got "
                          f"{type(data).__name__}")
    got_kind = data.get("kind")
    if got_kind != kind:
        raise ConfigError(f"expected kind {kind!r}, got {got_kind!r}")
    version = data.get("version")
    if version != WIRE_VERSION:
        raise ConfigError(f"unsupported wire version {version!r} "
                          f"(supported: {WIRE_VERSION})")


@dataclass(frozen=True)
class CandidatePoint:
    """Wire-friendly summary of one evaluated window candidate.

    ``score`` is the candidate's objective score inside its window (lower
    is better); latency/energy are the window metrics the Pareto figures
    consume.  Full :class:`~repro.core.sched_engine.WindowCandidate`
    objects stay in-process (see ``ScheduleResult.raw``); only these
    summaries cross the wire.
    """

    score: float
    latency_s: float
    energy_j: float

    def to_dict(self) -> dict[str, Any]:
        return {"score": self.score, "latency_s": self.latency_s,
                "energy_j": self.energy_j}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CandidatePoint":
        try:
            return cls(score=data["score"], latency_s=data["latency_s"],
                       energy_j=data["energy_j"])
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed candidate point: {exc}") from exc


# -- schedule metrics ------------------------------------------------------


def metrics_to_dict(metrics: ScheduleMetrics) -> dict[str, Any]:
    """Serialize a full schedule evaluation (windows and per-model rows)."""
    return {
        "latency_s": metrics.latency_s,
        "energy_j": metrics.energy_j,
        "edp": metrics.edp,  # derived; ignored by metrics_from_dict
        "windows": [
            {
                "index": w.index,
                "latency_s": w.latency_s,
                "energy_j": w.energy_j,
                "per_model": [
                    {
                        "model": m.model,
                        "latency_s": m.latency_s,
                        "energy_j": m.energy_j,
                        "minibatch": m.minibatch,
                        "tile_factor": m.tile_factor,
                        "segment_latencies_s": list(m.segment_latencies_s),
                    }
                    for m in w.per_model
                ],
            }
            for w in metrics.windows
        ],
    }


def metrics_from_dict(data: dict[str, Any]) -> ScheduleMetrics:
    """Rebuild a :class:`ScheduleMetrics` from its serialized form."""
    try:
        windows = tuple(
            WindowMetrics(
                index=w["index"],
                latency_s=w["latency_s"],
                energy_j=w["energy_j"],
                per_model=tuple(
                    ModelWindowMetrics(
                        model=m["model"],
                        latency_s=m["latency_s"],
                        energy_j=m["energy_j"],
                        minibatch=m["minibatch"],
                        tile_factor=m["tile_factor"],
                        segment_latencies_s=tuple(
                            m["segment_latencies_s"]),
                    )
                    for m in w["per_model"]
                ),
            )
            for w in data["windows"]
        )
        return ScheduleMetrics(latency_s=data["latency_s"],
                               energy_j=data["energy_j"], windows=windows)
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed metrics: {exc}") from exc


# -- perf reports ----------------------------------------------------------


def perf_to_dict(perf: PerfReport) -> dict[str, Any]:
    """Serialize a perf report (same payload as ``PerfReport.to_dict``)."""
    return perf.to_dict()


def perf_from_dict(data: dict[str, Any]) -> PerfReport:
    """Rebuild a :class:`PerfReport`; derived rate fields are ignored."""
    try:
        return PerfReport(
            wall_s=data["wall_s"],
            num_evaluated=data["num_evaluated"],
            num_windows=data["num_windows"],
            jobs=data["jobs"],
            cache={table: CacheStats(hits=entry["hits"],
                                     misses=entry["misses"],
                                     evictions=entry.get("evictions", 0))
                   for table, entry in data.get("cache", {}).items()},
            num_segments=data.get("num_segments", 0),
            num_segments_recosted=data.get("num_segments_recosted", 0),
            reports_dropped=data.get("reports_dropped", 0),
        )
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed perf report: {exc}") from exc


# -- error documents -------------------------------------------------------

_ERROR_KIND = "error"

#: Exception class -> stable wire error code, most-derived first so the
#: MRO walk in :meth:`ErrorDocument.from_exception` finds the tightest
#: match.  The codes are the wire contract; the classes are python-side.
_ERROR_CODES: tuple[tuple[type[ReproError], str], ...] = (
    (ValidationError, "validation_error"),
    (JobNotFoundError, "not_found"),
    (ServiceOverloadedError, "service_overloaded"),
    (SchedulingError, "scheduling_error"),
    (WorkloadError, "workload_error"),
    (HardwareError, "hardware_error"),
    (DataflowError, "dataflow_error"),
    (SearchError, "search_error"),
    (ConfigError, "config_error"),
    (AnalysisError, "analysis_error"),
    (ServiceError, "service_error"),
    (ReproError, "repro_error"),
)

#: Reverse map for rebuilding typed exceptions from wire codes; service
#: conditions that have no exception class of their own resolve to
#: :class:`ServiceError`.
_CODE_TO_EXCEPTION: dict[str, type[ReproError]] = {
    **{code: exc_type for exc_type, code in _ERROR_CODES},
    "job_not_done": ServiceError,
    "job_cancelled": ServiceError,
    "unknown_endpoint": ServiceError,
    "bad_request": ConfigError,
}


@dataclass(frozen=True)
class ErrorDocument:
    """Structured wire form of a failure (``kind: "error"``).

    Replaces raw tracebacks at every serialized boundary (CLI
    ``--format json``, the HTTP service): ``code`` is a stable
    machine-readable identifier, ``message`` the human-readable detail,
    and ``field`` the offending request field path where one is known
    (e.g. ``"requests[2]"`` for a malformed batch entry).
    """

    code: str
    message: str
    field: str | None = None

    @classmethod
    def from_exception(cls, exc: BaseException,
                       field: str | None = None) -> "ErrorDocument":
        """Map an exception to its wire document (tightest class wins).

        Non-:class:`ReproError` exceptions become ``internal_error`` so a
        service can report crashes without leaking a traceback.
        """
        for exc_type, code in _ERROR_CODES:
            if isinstance(exc, exc_type):
                return cls(code=code, message=str(exc), field=field)
        return cls(code="internal_error",
                   message=f"{type(exc).__name__}: {exc}", field=field)

    def exception(self) -> ReproError:
        """Rebuild a typed exception (unknown codes -> ReproError).

        The wire code rides along as ``exc.code`` so transport layers
        can branch on the precise condition (e.g. ``job_not_done``)
        without parsing the message.
        """
        exc = _CODE_TO_EXCEPTION.get(self.code, ReproError)(self.message)
        exc.code = self.code
        return exc

    def to_dict(self) -> dict[str, Any]:
        return {"kind": _ERROR_KIND, "version": WIRE_VERSION,
                "code": self.code, "message": self.message,
                "field": self.field}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ErrorDocument":
        check_envelope(data, _ERROR_KIND)
        try:
            return cls(code=data["code"], message=data["message"],
                       field=data.get("field"))
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed error document: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ErrorDocument":
        return cls.from_dict(loads_document(text, "error document"))


def is_error_document(data: Any) -> bool:
    """True when ``data`` looks like an error wire document."""
    return isinstance(data, dict) and data.get("kind") == _ERROR_KIND
