"""Scheduler-policy registry: named, pluggable scheduling backends.

A *policy* is a callable turning a :class:`PolicyContext` (request +
resolved workload and hardware) into a :class:`PolicyOutcome` (schedule,
metrics, optional SCAR population).  Policies register by name::

    @register_policy("my_policy")
    def my_policy(ctx: PolicyContext) -> PolicyOutcome:
        ...

and requests select them via ``ScheduleRequest.policy``.  This replaces
the hardcoded policy-string dispatch the experiment runner used to carry:
the four built-ins (``standalone``, ``nn_baton``, ``scar``,
``evolutionary``, see :mod:`repro.api.policies`) live in the default
registry, and downstream code can add new backends without touching the
session or the experiment drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.evalcache import EvalCache
from repro.core.metrics import ScheduleMetrics
from repro.core.scar import SCARResult
from repro.core.schedule import Schedule
from repro.dataflow.database import LayerCostDatabase
from repro.errors import ConfigError
from repro.mcm.package import MCM
from repro.workloads.model import Scenario

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.request import ScheduleRequest


@dataclass(frozen=True)
class PolicyContext:
    """Everything a policy needs to run one request.

    ``default_backend`` is the session's engine execution backend,
    applied when the request leaves ``backend=None`` (see
    :mod:`repro.engine.backends`); policies that do not search (the
    baselines) ignore it.

    ``eval_cache`` is an optional caller-owned
    :class:`~repro.core.evalcache.EvalCache` to run warm.  The session
    populates it (per scenario + template) when constructed with
    ``warm_caches=True`` so repeated requests against the same workload
    — the simulation replay's event loop, see :mod:`repro.sim` — skip
    re-costing unchanged segments.  Policies that do not search ignore
    it.

    ``default_eval_mode`` is the session's candidate-costing kernel
    (``"scalar"`` / ``"vector"``), applied when the request leaves
    ``eval_mode=None``; results are bit-identical across kernels, so it
    only changes throughput.
    """

    request: "ScheduleRequest"
    scenario: Scenario
    mcm: MCM
    database: LayerCostDatabase
    default_backend: str | None = None
    eval_cache: "EvalCache | None" = None
    default_eval_mode: str | None = None

    def effective_backend(self) -> str | None:
        """The backend this run should use (request wins over session)."""
        return self.request.backend or self.default_backend

    def effective_eval_mode(self) -> str | None:
        """The costing kernel this run should use (request wins)."""
        return self.request.eval_mode or self.default_eval_mode


@dataclass(frozen=True)
class PolicyOutcome:
    """What a policy returns: the schedule, its metrics and (for SCAR-like
    searches) the full in-process result carrying the candidate
    population."""

    schedule: Schedule
    metrics: ScheduleMetrics
    scar_result: SCARResult | None = None


PolicyFn = Callable[[PolicyContext], PolicyOutcome]


class SchedulerRegistry:
    """Name -> policy mapping with decorator-style registration."""

    def __init__(self) -> None:
        self._policies: dict[str, PolicyFn] = {}

    def register(self, name: str,
                 policy: PolicyFn | None = None) -> Callable:
        """Register ``policy`` under ``name``.

        Usable directly (``registry.register("x", fn)``) or as a
        decorator (``@registry.register("x")``).  Re-registering a taken
        name is an error; use a new name or a fresh registry.
        """
        if not name or not isinstance(name, str):
            raise ConfigError(f"policy name must be a non-empty string, "
                              f"got {name!r}")

        def _add(fn: PolicyFn) -> PolicyFn:
            if name in self._policies:
                raise ConfigError(f"policy {name!r} is already registered")
            self._policies[name] = fn
            return fn

        if policy is not None:
            return _add(policy)
        return _add

    def get(self, name: str) -> PolicyFn:
        """Resolve a policy by name."""
        try:
            return self._policies[name]
        except KeyError:
            raise ConfigError(
                f"unknown policy {name!r}; registered: "
                f"{self.names()}") from None

    def run(self, ctx: PolicyContext) -> PolicyOutcome:
        """Dispatch ``ctx`` to the policy its request names."""
        return self.get(ctx.request.policy)(ctx)

    def names(self) -> tuple[str, ...]:
        """Registered policy names, sorted."""
        return tuple(sorted(self._policies))

    def __contains__(self, name: str) -> bool:
        return name in self._policies


#: The process-wide default registry; ``@register_policy`` adds to it and
#: :class:`~repro.api.session.Session` uses it unless given another.
DEFAULT_REGISTRY = SchedulerRegistry()


def register_policy(name: str,
                    policy: PolicyFn | None = None) -> Callable:
    """Register a policy in the default registry (decorator-friendly)."""
    return DEFAULT_REGISTRY.register(name, policy)
