"""The four built-in scheduler policies, registered at import time.

These adapt the existing scheduler classes to the registry's
:class:`~repro.api.registry.PolicyContext` calling convention; the paper's
named strategies (``stand_nvd``, ``het_sides``, ...) are (template,
policy) pairs over these names -- see
:data:`repro.experiments.runner.STRATEGIES`.
"""

from __future__ import annotations

from repro.api.registry import (
    PolicyContext,
    PolicyOutcome,
    register_policy,
)
from repro.core.baselines import NNBatonScheduler, StandaloneScheduler
from repro.core.scar import SCARScheduler


@register_policy("standalone")
def standalone_policy(ctx: PolicyContext) -> PolicyOutcome:
    """One model per chiplet, spatial multi-tenancy (Sec. V baseline)."""
    outcome = StandaloneScheduler(ctx.mcm, ctx.database) \
        .schedule(ctx.scenario)
    return PolicyOutcome(schedule=outcome.schedule,
                         metrics=outcome.metrics)


@register_policy("nn_baton")
def nn_baton_policy(ctx: PolicyContext) -> PolicyOutcome:
    """NN-baton-style sequential single-model baseline (Sec. II-C)."""
    outcome = NNBatonScheduler(ctx.mcm, database=ctx.database) \
        .schedule(ctx.scenario)
    return PolicyOutcome(schedule=outcome.schedule,
                         metrics=outcome.metrics)


def _run_scar(ctx: PolicyContext, seg_search: str) -> PolicyOutcome:
    request = ctx.request
    scheduler = SCARScheduler(
        ctx.mcm,
        objective=request.build_objective(),
        nsplits=request.nsplits,
        budget=request.budget,
        database=ctx.database,
        packing=request.packing,
        provisioning=request.provisioning,
        max_nodes_per_model=request.max_nodes_per_model,
        seg_search=seg_search,
        prov_limit=request.prov_limit,
        jobs=request.jobs,
        backend=ctx.effective_backend(),
        beam=request.beam,
        use_cache=request.use_eval_cache,
        cache=ctx.eval_cache,
        eval_mode=ctx.effective_eval_mode() or "scalar",
    )
    result = scheduler.schedule(ctx.scenario)
    return PolicyOutcome(schedule=result.schedule, metrics=result.metrics,
                         scar_result=result)


@register_policy("scar")
def scar_policy(ctx: PolicyContext) -> PolicyOutcome:
    """The full SCAR search; honours the request's ``seg_search`` mode."""
    return _run_scar(ctx, ctx.request.seg_search)


@register_policy("evolutionary")
def evolutionary_policy(ctx: PolicyContext) -> PolicyOutcome:
    """SCAR with the GA segmentation search forced on (6x6-scale MCMs)."""
    return _run_scar(ctx, "evolutionary")
