"""The Session facade: lifecycle owner and batch executor.

A :class:`Session` owns everything a scheduling run needs besides the
request itself -- MCM construction, the memoized
:class:`~repro.dataflow.database.LayerCostDatabase` per clock domain,
resolved scenarios, the result memo and the accumulated perf reports --
and exposes two calls:

``submit(request)``         run one :class:`ScheduleRequest`.
``submit_many(requests)``   run a batch, optionally fanned out over a
                            process pool (``jobs=N``); results come back
                            in request order and are bit-identical to a
                            serial loop, the same contract as the
                            parallel window search inside
                            :class:`~repro.core.scar.SCARScheduler`.

Results are memoized on :meth:`ScheduleRequest.cache_key`, which covers
every request field including ``jobs`` and the cache flags, so runs with
different parallelism or caching settings never alias.  The memo is
unbounded by default; long-running front-ends (the job service) pass
``max_memo=N`` to cap it with LRU eviction -- evicted entries simply
recompute bit-identically on the next submit.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable

from repro.api import policies as _builtin_policies  # noqa: F401
from repro.api.registry import (
    DEFAULT_REGISTRY,
    PolicyContext,
    SchedulerRegistry,
)
from repro.api.request import ScheduleRequest, ScheduleResult
from repro.api.wire import CandidatePoint
from repro.core.evalcache import EvalCache
from repro.dataflow.database import LayerCostDatabase
from repro.engine.backends import backend_names
from repro.engine.tensorkernel import EVAL_MODES, require_numpy
from repro.errors import ConfigError
from repro.mcm import templates
from repro.perf import PerfReport, aggregate_reports
from repro.workloads.model import Scenario

#: Cap on the accumulated perf log, mirroring ``repro.perf.GLOBAL_PERF``:
#: a long-running service session must not grow memory per run.
_PERF_REPORTS_CAP = 4096

#: LRU cap on resolved scenarios: inline ``scenario_spec`` requests are
#: each a distinct key, so the cache must not grow per unique spec.
#: Evicted scenarios re-resolve deterministically on the next submit.
_SCENARIO_CACHE_CAP = 1024

#: LRU cap on warm evaluator caches (``warm_caches=True`` sessions).
#: One cache per (scenario, template) pair; the simulation replay
#: revisits a handful of tenant sets, so a small cap suffices and an
#: evicted cache merely re-warms on the next submit.
_EVAL_CACHE_CAP = 32


class Session:
    """Memoizing front-end over the scheduler registry.

    One session per process (or per logical tenant) is the intended
    shape: experiments, the CLI and batch drivers all share databases and
    results through it.  SCAR runs' perf reports accumulate in
    ``perf_reports`` for aggregate throughput / cache-hit reporting
    (capped to the most recent 4096 runs, like the process-wide log).

    ``max_memo`` bounds the result memo: ``None`` (the default) keeps
    every result, ``N >= 1`` keeps the N most recently used, ``0``
    disables result memoization entirely.  Resource and memo bookkeeping
    is lock-protected, so concurrent ``submit`` calls from the service's
    worker threads are safe; two threads racing on the same cache key at
    worst compute the same bit-identical result twice.

    ``backend`` selects the engine execution backend (``"serial"`` /
    ``"process"`` / a plugin, see :mod:`repro.engine.backends`) for
    every request that leaves ``ScheduleRequest.backend=None`` -- the
    backend is a deployment concern (how this session's host wants to
    spend cores), so it lives on the session rather than on each
    scheduler.  Backends are bit-identical by contract, so the memo key
    (which covers the *request's* ``backend`` field only) stays valid
    across session backends.

    ``eval_mode`` is the analogous session default for the
    candidate-costing kernel (``"scalar"`` / ``"vector"``, see
    :mod:`repro.engine.tensorkernel`), applied when a request leaves
    ``ScheduleRequest.eval_mode=None``.  Kernels are bit-identical by
    contract, so the memo stays valid across session eval modes too;
    ``"vector"`` fails fast at session construction when numpy is
    missing.

    ``warm_caches=True`` keeps one long-lived
    :class:`~repro.core.evalcache.EvalCache` per (scenario, template)
    pair and injects it into every SCAR-family run, so repeated requests
    against the same workload start with their segment/window memo
    tables warm.  Caches are keyed on the scenario identity because
    EvalCache keys carry scenario-relative model *indices* -- sharing
    one cache across different tenant sets would alias.  Entries are
    pure functions of their keys, so warm results stay bit-identical to
    cold ones (the simulation replay's parity contract, see
    :mod:`repro.sim.replay`).  Requests with ``use_eval_cache=False``
    bypass warming entirely.
    """

    def __init__(self, registry: SchedulerRegistry | None = None, *,
                 max_memo: int | None = None,
                 backend: str | None = None,
                 eval_mode: str | None = None,
                 warm_caches: bool = False) -> None:
        if max_memo is not None and max_memo < 0:
            raise ConfigError(
                f"max_memo must be None or >= 0, got {max_memo}")
        if backend is not None and backend not in backend_names():
            raise ConfigError(
                f"unknown backend {backend!r}; "
                f"registered: {backend_names()}")
        if eval_mode is not None and eval_mode not in EVAL_MODES:
            raise ConfigError(
                f"unknown eval_mode {eval_mode!r}; "
                f"expected one of {EVAL_MODES}")
        if eval_mode == "vector":
            require_numpy()
        self.registry = registry if registry is not None \
            else DEFAULT_REGISTRY
        self.max_memo = max_memo
        self.backend = backend
        self.eval_mode = eval_mode
        self.warm_caches = warm_caches
        self._memo: OrderedDict[str, ScheduleResult] = \
            OrderedDict()  # guarded by: _mutex
        self._databases: dict[float, LayerCostDatabase] = \
            {}  # guarded by: _mutex
        self._scenarios: OrderedDict[str, Scenario] = \
            OrderedDict()  # guarded by: _mutex
        self._eval_caches: OrderedDict[str, EvalCache] = \
            OrderedDict()  # guarded by: _mutex
        self.perf_reports: list[PerfReport] = []  # guarded by: _mutex
        self.perf_reports_dropped = 0  # guarded by: _mutex
        self._mutex = threading.RLock()

    # -- resource lifecycle ------------------------------------------------

    def _database(self, clock_hz: float) -> LayerCostDatabase:
        with self._mutex:
            if clock_hz not in self._databases:
                self._databases[clock_hz] = \
                    LayerCostDatabase(clock_hz=clock_hz)
            return self._databases[clock_hz]

    @staticmethod
    def _scenario_key(request: ScheduleRequest) -> str:
        """Identity of the workload a request resolves to.

        Shared by the scenario cache and the warm evaluator caches: two
        requests with the same key schedule the same tenant set.
        """
        if request.scenario_id is not None:
            return f"id:{request.scenario_id}"
        return "spec:" + json.dumps(request.scenario_spec,
                                    sort_keys=True,
                                    separators=(",", ":"))

    def _scenario(self, request: ScheduleRequest) -> Scenario:
        key = self._scenario_key(request)
        with self._mutex:
            cached = self._scenarios.get(key)
            if cached is not None:
                self._scenarios.move_to_end(key)
                return cached
        # Resolve outside the lock: model building can be slow, and
        # holding the session mutex would stall every concurrent submit
        # (two racing resolutions build the same scenario; last wins).
        scenario = request.resolve_scenario()
        with self._mutex:
            self._scenarios[key] = scenario
            self._scenarios.move_to_end(key)
            while len(self._scenarios) > _SCENARIO_CACHE_CAP:
                self._scenarios.popitem(last=False)
            return scenario

    def _warm_cache(self, request: ScheduleRequest) -> EvalCache | None:
        """The long-lived evaluator cache for ``request``'s workload.

        ``None`` unless this is a ``warm_caches`` session and the request
        wants evaluator caching at all.  Keyed per (scenario, template):
        EvalCache keys carry scenario-relative model indices, so a cache
        is only valid for the exact tenant set it was warmed on.
        """
        if not self.warm_caches or not request.use_eval_cache:
            return None
        key = self._scenario_key(request) + "|tpl:" + request.template
        with self._mutex:
            cache = self._eval_caches.get(key)
            if cache is None:
                cache = EvalCache(enabled=True)
                self._eval_caches[key] = cache
            self._eval_caches.move_to_end(key)
            while len(self._eval_caches) > _EVAL_CACHE_CAP:
                self._eval_caches.popitem(last=False)
            return cache

    # -- result memo -------------------------------------------------------

    def _memo_get(self, key: str) -> ScheduleResult | None:
        with self._mutex:
            result = self._memo.get(key)
            if result is not None:
                self._memo.move_to_end(key)  # LRU touch
            return result

    def _memo_put(self, key: str, result: ScheduleResult) -> None:
        if self.max_memo == 0:
            return
        with self._mutex:
            self._memo[key] = result
            self._memo.move_to_end(key)
            while self.max_memo is not None \
                    and len(self._memo) > self.max_memo:
                self._memo.popitem(last=False)

    def cached(self, request: ScheduleRequest) -> ScheduleResult | None:
        """The memoized result for ``request``, or ``None``.

        Always ``None`` for ``memoize=False`` requests.  Front-ends that
        execute requests outside :meth:`submit` (the service's process
        job backend) use this plus :meth:`remember` so their memo
        behavior stays bit-for-bit the session's own.
        """
        if not request.memoize:
            return None
        return self._memo_get(request.cache_key())

    def remember(self, request: ScheduleRequest, result: ScheduleResult,
                 *, log_perf: bool = False) -> None:
        """Adopt an externally computed result exactly as submit would.

        ``log_perf=True`` also appends the result's perf report to the
        session log -- right for results this session's own workers
        computed, wrong for results another replica computed (their
        engine counters belong to that replica's session).
        """
        if log_perf and result.perf is not None:
            self._log_perf(result.perf)
        if request.memoize:
            self._memo_put(request.cache_key(), result)

    # -- execution ---------------------------------------------------------

    def submit(self, request: ScheduleRequest) -> ScheduleResult:
        """Run one request (or serve it from the session memo)."""
        key = request.cache_key()
        if request.memoize:
            memoized = self._memo_get(key)
            if memoized is not None:
                return memoized

        scenario = self._scenario(request)
        mcm = templates.build(request.template, scenario.use_case)
        ctx = PolicyContext(request=request, scenario=scenario, mcm=mcm,
                            database=self._database(mcm.clock_hz),
                            default_backend=self.backend,
                            eval_cache=self._warm_cache(request),
                            default_eval_mode=self.eval_mode)
        outcome = self.registry.run(ctx)
        result = self._wrap(request, outcome)
        if result.perf is not None:
            self._log_perf(result.perf)
        if request.memoize:
            self._memo_put(key, result)
        return result

    def _log_perf(self, perf: PerfReport) -> None:
        with self._mutex:
            self.perf_reports.append(perf)
            if len(self.perf_reports) > _PERF_REPORTS_CAP:
                excess = len(self.perf_reports) - _PERF_REPORTS_CAP
                del self.perf_reports[:excess]
                self.perf_reports_dropped += excess

    def submit_many(self, requests: Iterable[ScheduleRequest], *,
                    jobs: int = 1) -> list[ScheduleResult]:
        """Run a batch of requests, in request order.

        ``jobs > 1`` fans memo-missing requests out over worker
        processes (one fresh session per worker); each request is
        independently deterministic, so the batch's schedules/metrics
        are bit-identical to a serial loop.  Memoizable duplicates run
        once, and worker perf reports / memo entries merge back into
        this session in request order -- matching what a serial loop
        would have accumulated.  Fanned-out results come back (and are
        memoized) without the in-process ``raw`` population, which would
        dominate the inter-process transfer; when a consumer needs the
        full population, run the request through ``submit`` on a fresh
        session or with ``memoize=False``.

        A non-default registry must be picklable (module-level policy
        functions) to cross into spawned workers; on fork-based
        platforms it is inherited either way.  The same applies to
        plugin execution backends: a session default naming a backend
        registered via :func:`repro.engine.register_backend` reaches
        spawned workers only if the registering module is imported at
        worker startup (fork inherits the registration either way; the
        built-in ``serial``/``process`` backends always resolve).
        """
        requests = list(requests)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if jobs == 1 or len(requests) <= 1:
            return [self.submit(request) for request in requests]

        results: list[ScheduleResult | None] = [None] * len(requests)
        #: one entry per unique run; memoizable duplicates share a slot.
        pending: dict[str, list[int]] = {}
        for i, request in enumerate(requests):
            key = request.cache_key()
            if request.memoize:
                memoized = self._memo_get(key)
                if memoized is not None:
                    results[i] = memoized
                else:
                    pending.setdefault(key, []).append(i)
            else:
                pending.setdefault(f"unmemoized:{i}", []).append(i)
        if pending:
            with self.process_pool(min(jobs, len(pending))) as pool:
                fanned = list(pool.map(
                    run_pooled_request,
                    [requests[indices[0]] for indices in pending.values()]))
            for indices, result in zip(pending.values(), fanned):
                for i in indices:
                    results[i] = result
                if result.perf is not None:
                    self._log_perf(result.perf)
                if requests[indices[0]].memoize:
                    self._memo_put(requests[indices[0]].cache_key(),
                                   result)
        return results  # type: ignore[return-value]

    def process_pool(self, max_workers: int) -> ProcessPoolExecutor:
        """A worker-process pool that mirrors this session.

        Each worker process builds a fresh session over the same
        registry and default backend; submit requests to it with
        :func:`run_pooled_request`.  Shared by :meth:`submit_many` and
        the service's process job backend; the picklability caveats in
        :meth:`submit_many` apply.  Workers spawn lazily, so building
        the pool is cheap until the first submit.
        """
        # The default registry needs no shipping: workers rebuild it
        # (fork inherits any extra registrations either way).
        registry = None if self.registry is DEFAULT_REGISTRY \
            else self.registry
        return ProcessPoolExecutor(
            max_workers=max_workers, initializer=_batch_worker_init,
            initargs=(registry, self.backend, self.eval_mode))

    # -- reporting ---------------------------------------------------------

    def perf_log_position(self) -> int:
        """Monotone count of reports ever logged (drops included).

        Snapshot it around a submit and feed the difference to
        :meth:`perf_reports_tail` to attribute evaluator work to that
        submit -- the simulation replay's per-event accounting.  Unlike
        ``len(perf_reports)``, cap trimming never moves it backwards.
        """
        with self._mutex:
            return len(self.perf_reports) + self.perf_reports_dropped

    def perf_reports_tail(self, count: int) -> list[PerfReport]:
        """The most recent ``count`` logged reports (possibly fewer)."""
        if count <= 0:
            return []
        with self._mutex:
            return list(self.perf_reports[-count:])

    def perf_summary(self) -> PerfReport:
        """Aggregate perf report over every SCAR run this session made.

        Snapshots the log under the lock so a concurrent worker's append
        or cap-trim cannot tear the aggregate.  ``reports_dropped`` on
        the aggregate counts runs the 4096-entry cap evicted -- when it
        is non-zero the summary undercounts (a long simulation replay
        can exceed the cap; see :mod:`repro.sim`).
        """
        with self._mutex:
            reports = list(self.perf_reports)
            dropped = self.perf_reports_dropped
        return aggregate_reports(reports, reports_dropped=dropped)

    # -- result assembly ---------------------------------------------------

    @staticmethod
    def _wrap(request: ScheduleRequest, outcome) -> ScheduleResult:
        scar_result = outcome.scar_result
        if scar_result is None:
            return ScheduleResult(request=request,
                                  schedule=outcome.schedule,
                                  metrics=outcome.metrics)
        return ScheduleResult(
            request=request,
            schedule=outcome.schedule,
            metrics=outcome.metrics,
            window_candidates=tuple(
                tuple(CandidatePoint(score=c.score,
                                     latency_s=c.metrics.latency_s,
                                     energy_j=c.metrics.energy_j)
                      for c in window)
                for window in scar_result.window_candidates),
            num_evaluated=scar_result.num_evaluated,
            perf=scar_result.perf,
            raw=scar_result,
        )


# -- batch-pool worker state (one session per worker process) --------------

_WORKER_SESSION: Session | None = None


def _batch_worker_init(registry: SchedulerRegistry | None,
                       backend: str | None = None,
                       eval_mode: str | None = None) -> None:
    global _WORKER_SESSION
    _WORKER_SESSION = Session(registry, backend=backend,
                              eval_mode=eval_mode)


def _batch_worker_run(request: ScheduleRequest) -> ScheduleResult:
    assert _WORKER_SESSION is not None
    result = _WORKER_SESSION.submit(request)
    # The raw candidate population stays in the worker: it is excluded
    # from equality/wire anyway and would dominate the IPC payload.
    return dataclasses.replace(result, raw=None)


#: Run one request on a pool built by :meth:`Session.process_pool`.
#: Module-level (and so picklable) by construction; the public name for
#: front-ends that drive the pool future-by-future.
run_pooled_request = _batch_worker_run
