"""The Session facade: lifecycle owner and batch executor.

A :class:`Session` owns everything a scheduling run needs besides the
request itself -- MCM construction, the memoized
:class:`~repro.dataflow.database.LayerCostDatabase` per clock domain,
resolved scenarios, the result memo and the accumulated perf reports --
and exposes two calls:

``submit(request)``         run one :class:`ScheduleRequest`.
``submit_many(requests)``   run a batch, optionally fanned out over a
                            process pool (``jobs=N``); results come back
                            in request order and are bit-identical to a
                            serial loop, the same contract as the
                            parallel window search inside
                            :class:`~repro.core.scar.SCARScheduler`.

Results are memoized on :meth:`ScheduleRequest.cache_key`, which covers
every request field including ``jobs`` and the cache flags, so runs with
different parallelism or caching settings never alias.
"""

from __future__ import annotations

import dataclasses
import json
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable

from repro.api import policies as _builtin_policies  # noqa: F401
from repro.api.registry import (
    DEFAULT_REGISTRY,
    PolicyContext,
    SchedulerRegistry,
)
from repro.api.request import ScheduleRequest, ScheduleResult
from repro.api.wire import CandidatePoint
from repro.dataflow.database import LayerCostDatabase
from repro.mcm import templates
from repro.perf import PerfReport, aggregate_reports
from repro.workloads.model import Scenario


class Session:
    """Memoizing front-end over the scheduler registry.

    One session per process (or per logical tenant) is the intended
    shape: experiments, the CLI and batch drivers all share databases and
    results through it.  SCAR runs' perf reports accumulate in
    ``perf_reports`` for aggregate throughput / cache-hit reporting.
    """

    def __init__(self, registry: SchedulerRegistry | None = None) -> None:
        self.registry = registry if registry is not None \
            else DEFAULT_REGISTRY
        self._memo: dict[str, ScheduleResult] = {}
        self._databases: dict[float, LayerCostDatabase] = {}
        self._scenarios: dict[str, Scenario] = {}
        self.perf_reports: list[PerfReport] = []

    # -- resource lifecycle ------------------------------------------------

    def _database(self, clock_hz: float) -> LayerCostDatabase:
        if clock_hz not in self._databases:
            self._databases[clock_hz] = LayerCostDatabase(clock_hz=clock_hz)
        return self._databases[clock_hz]

    def _scenario(self, request: ScheduleRequest) -> Scenario:
        key = f"id:{request.scenario_id}" \
            if request.scenario_id is not None \
            else "spec:" + json.dumps(request.scenario_spec,
                                      sort_keys=True,
                                      separators=(",", ":"))
        if key not in self._scenarios:
            self._scenarios[key] = request.resolve_scenario()
        return self._scenarios[key]

    # -- execution ---------------------------------------------------------

    def submit(self, request: ScheduleRequest) -> ScheduleResult:
        """Run one request (or serve it from the session memo)."""
        key = request.cache_key()
        if request.memoize and key in self._memo:
            return self._memo[key]

        scenario = self._scenario(request)
        mcm = templates.build(request.template, scenario.use_case)
        ctx = PolicyContext(request=request, scenario=scenario, mcm=mcm,
                            database=self._database(mcm.clock_hz))
        outcome = self.registry.run(ctx)
        result = self._wrap(request, outcome)
        if result.perf is not None:
            self.perf_reports.append(result.perf)
        if request.memoize:
            self._memo[key] = result
        return result

    def submit_many(self, requests: Iterable[ScheduleRequest], *,
                    jobs: int = 1) -> list[ScheduleResult]:
        """Run a batch of requests, in request order.

        ``jobs > 1`` fans memo-missing requests out over worker
        processes (one fresh session per worker); each request is
        independently deterministic, so the batch's schedules/metrics
        are bit-identical to a serial loop.  Memoizable duplicates run
        once, and worker perf reports / memo entries merge back into
        this session in request order -- matching what a serial loop
        would have accumulated.  Fanned-out results come back (and are
        memoized) without the in-process ``raw`` population, which would
        dominate the inter-process transfer; when a consumer needs the
        full population, run the request through ``submit`` on a fresh
        session or with ``memoize=False``.

        A non-default registry must be picklable (module-level policy
        functions) to cross into spawned workers; on fork-based
        platforms it is inherited either way.
        """
        requests = list(requests)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if jobs == 1 or len(requests) <= 1:
            return [self.submit(request) for request in requests]

        results: list[ScheduleResult | None] = [None] * len(requests)
        #: one entry per unique run; memoizable duplicates share a slot.
        pending: dict[str, list[int]] = {}
        for i, request in enumerate(requests):
            key = request.cache_key()
            if request.memoize:
                if key in self._memo:
                    results[i] = self._memo[key]
                else:
                    pending.setdefault(key, []).append(i)
            else:
                pending.setdefault(f"unmemoized:{i}", []).append(i)
        if pending:
            workers = min(jobs, len(pending))
            # The default registry needs no shipping: workers rebuild it
            # (fork inherits any extra registrations either way).
            registry = None if self.registry is DEFAULT_REGISTRY \
                else self.registry
            with ProcessPoolExecutor(max_workers=workers,
                                     initializer=_batch_worker_init,
                                     initargs=(registry,)) as pool:
                fanned = list(pool.map(
                    _batch_worker_run,
                    [requests[indices[0]] for indices in pending.values()]))
            for indices, result in zip(pending.values(), fanned):
                for i in indices:
                    results[i] = result
                if result.perf is not None:
                    self.perf_reports.append(result.perf)
                if requests[indices[0]].memoize:
                    self._memo[requests[indices[0]].cache_key()] = result
        return results  # type: ignore[return-value]

    # -- reporting ---------------------------------------------------------

    def perf_summary(self) -> PerfReport:
        """Aggregate perf report over every SCAR run this session made."""
        return aggregate_reports(self.perf_reports)

    # -- result assembly ---------------------------------------------------

    @staticmethod
    def _wrap(request: ScheduleRequest, outcome) -> ScheduleResult:
        scar_result = outcome.scar_result
        if scar_result is None:
            return ScheduleResult(request=request,
                                  schedule=outcome.schedule,
                                  metrics=outcome.metrics)
        return ScheduleResult(
            request=request,
            schedule=outcome.schedule,
            metrics=outcome.metrics,
            window_candidates=tuple(
                tuple(CandidatePoint(score=c.score,
                                     latency_s=c.metrics.latency_s,
                                     energy_j=c.metrics.energy_j)
                      for c in window)
                for window in scar_result.window_candidates),
            num_evaluated=scar_result.num_evaluated,
            perf=scar_result.perf,
            raw=scar_result,
        )


# -- batch-pool worker state (one session per worker process) --------------

_WORKER_SESSION: Session | None = None


def _batch_worker_init(registry: SchedulerRegistry | None) -> None:
    global _WORKER_SESSION
    _WORKER_SESSION = Session(registry)


def _batch_worker_run(request: ScheduleRequest) -> ScheduleResult:
    assert _WORKER_SESSION is not None
    result = _WORKER_SESSION.submit(request)
    # The raw candidate population stays in the worker: it is excluded
    # from equality/wire anyway and would dominate the IPC payload.
    return dataclasses.replace(result, raw=None)
