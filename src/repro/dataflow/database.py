"""Offline layer-cost database (the "intra-layer cost database" of Fig. 1).

The paper's MCM-Reconfig engine consumes per-layer latency/energy figures
"offline-analyzed by MAESTRO" for each chiplet dataflow class.  This module
provides that database: a memoized front-end over
:func:`repro.dataflow.cost.compute_layer_cost`, keyed by the *class* of a
chiplet (its resource tuple), plus the Eq. (1) expectation helpers::

    E(Lat(l)) = sum_i (n_dfi / |C|) * Lat(l -> i)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Protocol

from repro.dataflow.cost import LayerCost, compute_layer_cost
from repro.dataflow.dataflow import Dataflow, by_name
from repro.dataflow.energy import DEFAULT_ENERGY, EnergyTable
from repro.workloads.layer import Layer


class ChipletLike(Protocol):
    """Structural type for anything describing a chiplet class.

    :class:`repro.mcm.chiplet.Chiplet` satisfies this; tests may pass any
    object with these attributes.
    """

    dataflow: str
    num_pes: int
    sram_bytes: int
    noc_gbps: float
    mem_gbps: float


@dataclass(frozen=True)
class _ChipletKey:
    dataflow: str
    num_pes: int
    sram_bytes: int
    noc_gbps: float
    mem_gbps: float

    @classmethod
    def of(cls, chiplet: ChipletLike) -> "_ChipletKey":
        return cls(chiplet.dataflow, chiplet.num_pes, chiplet.sram_bytes,
                   chiplet.noc_gbps, chiplet.mem_gbps)


def _layer_key(layer: Layer) -> tuple:
    return (layer.op, layer.n, layer.k, layer.c, layer.y, layer.x, layer.r,
            layer.s, layer.stride, layer.bytes_per_element)


class LayerCostDatabase:
    """Memoized per-(layer, chiplet-class) cost store.

    One database instance corresponds to one operating point (clock, energy
    table); experiments create one per hardware configuration and share it
    across all engines -- lookups after the first are dictionary hits, which
    is what makes the large searches tractable (the paper's "offline
    analysis" step).
    """

    def __init__(self, clock_hz: float = 500e6,
                 energy: EnergyTable = DEFAULT_ENERGY) -> None:
        self.clock_hz = clock_hz
        self.energy = energy
        self._cache: dict[tuple, LayerCost] = {}

    def __len__(self) -> int:
        return len(self._cache)

    def cost(self, layer: Layer, chiplet: ChipletLike) -> LayerCost:
        """Intra-chiplet cost of ``layer`` on ``chiplet``'s class."""
        key = (_layer_key(layer), _ChipletKey.of(chiplet))
        cached = self._cache.get(key)
        if cached is None:
            dataflow = by_name(chiplet.dataflow)
            cached = compute_layer_cost(
                layer, dataflow,
                num_pes=chiplet.num_pes,
                sram_bytes=chiplet.sram_bytes,
                noc_gbps=chiplet.noc_gbps,
                mem_gbps=chiplet.mem_gbps,
                clock_hz=self.clock_hz,
                energy=self.energy,
            )
            self._cache[key] = cached
        return cached

    def latency_s(self, layer: Layer, chiplet: ChipletLike) -> float:
        """Compute latency of ``layer`` on ``chiplet`` in seconds."""
        return self.cost(layer, chiplet).latency_s(self.clock_hz)

    def energy_j(self, layer: Layer, chiplet: ChipletLike) -> float:
        """Compute energy of ``layer`` on ``chiplet`` in joules."""
        return self.cost(layer, chiplet).energy_j()

    # -- Eq. (1) expectations over a heterogeneous composition ----------

    def expected_latency_s(self, layer: Layer,
                           chiplets: Iterable[ChipletLike]) -> float:
        """``E(Lat(l))`` over the MCM's chiplet composition (Eq. 1)."""
        chiplet_list = list(chiplets)
        if not chiplet_list:
            raise ValueError("expected_latency_s needs at least one chiplet")
        total = sum(self.latency_s(layer, chiplet)
                    for chiplet in chiplet_list)
        return total / len(chiplet_list)

    def expected_energy_j(self, layer: Layer,
                          chiplets: Iterable[ChipletLike]) -> float:
        """Expected energy of ``layer`` over the chiplet composition."""
        chiplet_list = list(chiplets)
        if not chiplet_list:
            raise ValueError("expected_energy_j needs at least one chiplet")
        total = sum(self.energy_j(layer, chiplet)
                    for chiplet in chiplet_list)
        return total / len(chiplet_list)

    def affinity(self, layer: Layer,
                 chiplets_by_class: Mapping[str, ChipletLike]) -> str:
        """Name of the dataflow class with the lowest EDP for ``layer``."""
        best_name = ""
        best_edp = float("inf")
        for name, chiplet in sorted(chiplets_by_class.items()):
            cost = self.cost(layer, chiplet)
            edp = cost.latency_s(self.clock_hz) * cost.energy_j()
            if edp < best_edp:
                best_edp = edp
                best_name = name
        return best_name
