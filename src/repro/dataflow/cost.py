"""MAESTRO-lite: analytical intra-chiplet latency/energy for one layer.

This module re-implements the data-centric analytical model the paper builds
on (MAESTRO [35, 36]) at the fidelity the scheduler needs:

1. **Spatial mapping.**  The dataflow unrolls two loop dimensions onto the
   PE array (dataflow-fixed; see :mod:`repro.dataflow.dataflow`).  The
   mapper evaluates every power-of-two factorization of the array and picks
   the one minimizing *stall-adjusted* cycles.
2. **Compute cycles.**  ``ceil(d1/p1) * ceil(d2/p2) * (temporal product)``.
3. **Operand-delivery stalls.**  Each cycle the array consumes a number of
   *distinct* operand elements that depends on the stationarity class; when
   the required bytes/cycle exceed the chiplet NoC bandwidth the layer
   stalls proportionally.  This is what makes output-stationary chiplets
   slow on channel-heavy GEMMs (each PE holds a different output neuron and
   needs its own weight every cycle) and weight-stationary chiplets slow on
   spatially-large shallow convolutions (K*C far below the PE count) -- the
   per-layer affinity signal that drives every scheduling result in the
   paper.
4. **Reuse-aware energy.**  SRAM traffic is derived from the same per-cycle
   distinct-operand rates; DRAM re-fetch rounds are charged when the layer
   working set exceeds the chiplet L2.

Reuse assumptions (documented deviations from full MAESTRO):

* WS: weights fetched once per re-fetch round; inputs broadcast across the
  K-parallel axis with convolutional halo reuse; partial sums spill to L2
  once per C-tile (the weight-stationary weakness on deep-C layers).
* OS: outputs written once; inputs benefit from shift-register halo reuse
  and are broadcast across K-lanes; weights are cached in the PE-local L1
  when the per-step stationary set fits (``_OS_WEIGHT_L1_BYTES``) and
  *streamed* otherwise -- one distinct weight per K-lane per cycle, which
  is the output-stationary weakness on channel-heavy GEMMs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dataflow.dataflow import Dataflow, DataflowStyle
from repro.dataflow.energy import DEFAULT_ENERGY, EnergyTable
from repro.errors import DataflowError
from repro.units import gbps_to_bytes_per_cycle
from repro.workloads.layer import Layer, LayerOp

#: Loop dimensions that participate in each operator class.
_ACTIVE_DIMS: dict[LayerOp, tuple[str, ...]] = {
    LayerOp.CONV: ("N", "K", "C", "Y", "X", "R", "S"),
    LayerOp.DWCONV: ("N", "C", "Y", "X", "R", "S"),
    LayerOp.GEMM: ("N", "K", "C", "Y"),
    LayerOp.POOL: ("N", "C", "Y", "X", "R", "S"),
    LayerOp.ELEMWISE: ("N", "K", "Y", "X"),
}

#: Per-PE-lane L1 weight-cache capacity: an output-stationary step keeps its
#: weights local when the stationary set fits, and streams them otherwise.
_OS_WEIGHT_L1_BYTES = 128 * 1024

#: Pseudo spatial dimension: the flattened output feature map (Y * X).
_FLAT_OUTPUT = "YX"


@dataclass(frozen=True)
class SpatialMapping:
    """One candidate factorization of the PE array over two loop dims."""

    dim1: str
    dim2: str
    p1: int
    p2: int
    steps: int
    utilization: float


@dataclass(frozen=True)
class LayerCost:
    """Intra-chiplet cost of one layer under one dataflow.

    ``cycles`` includes operand-delivery stalls and the shared-memory
    bandwidth bound.  Communication to/from the chiplet (NoP, off-chip) is
    *not* included; the schedule evaluator adds it based on placement
    (Sec. III-E).
    """

    cycles: float
    energy_pj: float
    macs: int
    sram_bytes: float
    dram_refetch_bytes: float
    mapping: SpatialMapping
    stall_factor: float

    def latency_s(self, clock_hz: float) -> float:
        """Wall-clock latency at the given chiplet frequency."""
        return self.cycles / clock_hz

    def energy_j(self) -> float:
        """Energy in joules."""
        return self.energy_pj * 1e-12


def _candidate_splits(num_pes: int) -> tuple[int, ...]:
    """Candidate extents for the first spatial axis of the PE array."""
    powers = []
    p = 1
    while p <= num_pes:
        powers.append(p)
        p *= 2
    if powers[-1] != num_pes:
        powers.append(num_pes)
    return tuple(powers)


def _make_mapping(dim1: str, extent1: int, dim2: str, extent2: int,
                  p1: int, p2: int) -> SpatialMapping:
    eff1 = max(min(p1, extent1), 1)
    eff2 = max(min(p2, extent2), 1)
    steps = math.ceil(extent1 / eff1) * math.ceil(extent2 / eff2)
    utilization = (extent1 * extent2) / (steps * eff1 * eff2)
    return SpatialMapping(dim1=dim1, dim2=dim2, p1=eff1, p2=eff2,
                          steps=steps, utilization=utilization)


def map_spatial(dim1: str, extent1: int, dim2: str, extent2: int,
                num_pes: int) -> SpatialMapping:
    """Pure spatial mapping: minimize iteration steps, ignore stalls.

    Ties break toward higher utilization.  Exposed for tests and tooling;
    :func:`compute_layer_cost` uses the stall-aware selection instead.
    """
    if num_pes < 1:
        raise DataflowError(f"num_pes must be >= 1, got {num_pes}")
    best: SpatialMapping | None = None
    for p1 in _candidate_splits(num_pes):
        candidate = _make_mapping(dim1, extent1, dim2, extent2, p1,
                                  num_pes // p1)
        if (best is None or candidate.steps < best.steps
                or (candidate.steps == best.steps
                    and candidate.utilization > best.utilization + 1e-12)):
            best = candidate
    assert best is not None
    return best


def _spatial_extent(layer: Layer, name: str) -> int:
    """Extent of a (possibly pseudo) spatial dimension."""
    if name == _FLAT_OUTPUT:
        return layer.y * layer.x
    return layer.dims()[name]


def _temporal_product(layer: Layer, mapping: SpatialMapping) -> int:
    """Product of all active loop extents outside the spatial dims."""
    dims = layer.dims()
    spatial = {mapping.dim1, mapping.dim2}
    if _FLAT_OUTPUT in spatial:
        spatial.discard(_FLAT_OUTPUT)
        spatial.update(("Y", "X"))
    product = 1
    for name in _ACTIVE_DIMS[layer.op]:
        if name in spatial:
            continue
        product *= dims[name]
    return product


def _spatial_of(mapping: SpatialMapping, name: str, default: float = 1.0) -> float:
    """Parallel extent along a named spatial dimension (1 if temporal)."""
    if mapping.dim1 == name:
        return float(mapping.p1)
    if mapping.dim2 == name:
        return float(mapping.p2)
    return default


def _operand_fetches(layer: Layer, style: DataflowStyle,
                     mapping: SpatialMapping, base_cycles: float,
                     refetch_rounds: int) -> tuple[float, float, float]:
    """Total distinct operand *elements* fetched over the layer's lifetime.

    Returns ``(weight_fetches, input_fetches, psum_traffic)``; dividing by
    ``base_cycles`` yields the per-cycle delivery demand used for stall
    analysis, and multiplying by the element size yields SRAM traffic.
    """
    dims = layer.dims()
    out_elems = layer.n * layer.k * layer.y * layer.x
    weight_elems = layer.weight_bytes // max(layer.bytes_per_element, 1)
    has_weights = layer.op in (LayerOp.CONV, LayerOp.DWCONV, LayerOp.GEMM)
    halo_reuse = max(layer.r * layer.s, 1)

    if style is DataflowStyle.WEIGHT_STATIONARY:
        # No input shift network in a weight-stationary array: every cycle
        # re-fetches the C-parallel input slice (no halo reuse).
        weight_fetches = float(weight_elems * refetch_rounds)
        if layer.op is LayerOp.DWCONV:
            input_fetches = base_cycles * mapping.p1 * mapping.p2
            c_tiles = 1
        elif "C" in (mapping.dim1, mapping.dim2):
            p_c = _spatial_of(mapping, "C")
            input_fetches = base_cycles * p_c
            c_tiles = math.ceil(dims["C"] / p_c)
        else:
            input_fetches = base_cycles * mapping.p1 * mapping.p2
            c_tiles = 1
        accumulates_c = layer.op in (LayerOp.CONV, LayerOp.GEMM)
        psum_traffic = out_elems * (2.0 * c_tiles if accumulates_c else 1.0)
        return weight_fetches, input_fetches, psum_traffic

    # Output stationary: psums pinned in the array, outputs written once.
    p_yx = _spatial_of(mapping, _FLAT_OUTPUT)
    p_k = _spatial_of(mapping, "K")
    p_c = _spatial_of(mapping, "C")

    if not has_weights:
        weight_fetches = 0.0
    else:
        # Per-step stationary weight set: one K-lane (or C-lane for
        # depthwise) holds its reduction weights for the whole step.
        if layer.op is LayerOp.GEMM:
            lane_set = p_k * dims["C"]
        elif layer.op is LayerOp.DWCONV:
            lane_set = p_c * layer.r * layer.s
        else:
            lane_set = p_k * dims["C"] * layer.r * layer.s
        if lane_set * layer.bytes_per_element <= _OS_WEIGHT_L1_BYTES:
            weight_fetches = float(weight_elems * refetch_rounds)
        else:
            lanes = p_c if layer.op is LayerOp.DWCONV else p_k
            weight_fetches = base_cycles * max(lanes, 1.0)

    if layer.op is LayerOp.GEMM:
        # One (c, token) input broadcast to every neuron lane per cycle.
        input_fetches = base_cycles * _spatial_of(mapping, "Y")
    elif layer.op is LayerOp.DWCONV:
        # Channel lanes each consume their own input stream.
        input_fetches = base_cycles * p_yx * p_c / halo_reuse
    else:
        # Inputs broadcast across K-lanes, halo-reused across the map.
        input_fetches = base_cycles * p_yx / halo_reuse
    psum_traffic = float(out_elems)
    return weight_fetches, input_fetches, psum_traffic


def compute_layer_cost(layer: Layer, dataflow: Dataflow, *, num_pes: int,
                       sram_bytes: int, noc_gbps: float, mem_gbps: float,
                       clock_hz: float,
                       energy: EnergyTable = DEFAULT_ENERGY) -> LayerCost:
    """Cost ``layer`` on a chiplet implementing ``dataflow`` (Definition 2).

    Parameters mirror the chiplet fields of Definition 2: PE count, L2
    scratchpad size, NoC bandwidth (operand delivery inside the chiplet) and
    chiplet shared-memory bandwidth.  The best stall-adjusted spatial
    mapping is selected among all power-of-two array factorizations.
    """
    if num_pes < 1:
        raise DataflowError(f"num_pes must be >= 1, got {num_pes}")
    d1, d2 = dataflow.spatial_dims(layer.op)
    extent1 = _spatial_extent(layer, d1)
    extent2 = _spatial_extent(layer, d2)

    footprint = layer.footprint_bytes
    refetch_rounds = max(1, math.ceil(footprint / max(sram_bytes, 1)))
    dram_refetch = (refetch_rounds - 1) * float(layer.weight_bytes)

    noc_bpc = gbps_to_bytes_per_cycle(noc_gbps, clock_hz)
    mem_bpc = gbps_to_bytes_per_cycle(mem_gbps, clock_hz)
    elem_bytes = layer.bytes_per_element

    best: tuple[float, float, float, SpatialMapping] | None = None
    for p1 in _candidate_splits(num_pes):
        mapping = _make_mapping(d1, extent1, d2, extent2, p1,
                                max(num_pes // p1, 1))
        base_cycles = float(mapping.steps * _temporal_product(layer, mapping))
        fetches = _operand_fetches(layer, dataflow.style, mapping,
                                   base_cycles, refetch_rounds)
        sram_traffic = sum(fetches) * elem_bytes
        demand_bpc = sram_traffic / max(base_cycles, 1.0)
        stall = max(1.0, demand_bpc / max(noc_bpc, 1e-9))
        cycles = max(base_cycles * stall, sram_traffic / max(mem_bpc, 1e-9))
        if (best is None or cycles < best[0] - 1e-9
                or (abs(cycles - best[0]) <= 1e-9
                    and mapping.utilization > best[3].utilization + 1e-12)):
            best = (cycles, stall, sram_traffic, mapping)
    assert best is not None
    cycles, stall, sram_traffic, mapping = best

    mac_energy = layer.macs * energy.mac_pj
    if layer.op in (LayerOp.POOL, LayerOp.ELEMWISE):
        mac_energy *= 0.1  # comparators/adders, not multipliers
    energy_pj = (
        mac_energy
        + sram_traffic * energy.sram_pj_byte
        + dram_refetch * energy.dram_pj_byte
        + cycles * energy.leakage_pj_cycle
    )
    return LayerCost(
        cycles=cycles,
        energy_pj=energy_pj,
        macs=layer.macs,
        sram_bytes=sram_traffic,
        dram_refetch_bytes=dram_refetch,
        mapping=mapping,
        stall_factor=stall,
    )
