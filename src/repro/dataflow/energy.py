"""Energy constants for the analytical cost model.

Per-access energies follow the 28 nm technology point the paper scales
everything to (Table II gives the DRAM and NoP figures; MAC and SRAM figures
use standard 28 nm estimates from the accelerator-modeling literature).
Absolute joules therefore differ from the authors' internal MAESTRO tables,
but every experiment reports results normalized to a common baseline, which
removes the constant factors (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import pj_per_bit_to_pj_per_byte


@dataclass(frozen=True)
class EnergyTable:
    """Per-event energies in picojoules.

    ``mac_pj``        one int8 multiply-accumulate (incl. local register).
    ``sram_pj_byte``  one byte read/written from the chiplet L2 scratchpad.
    ``dram_pj_byte``  one byte of off-chip DRAM traffic (Table II).
    ``nop_pj_byte``   one byte crossing one NoP hop (Table II).
    ``leakage_pj_cycle`` static energy per chiplet-cycle while active.
    """

    mac_pj: float = 0.5
    sram_pj_byte: float = 4.0
    dram_pj_byte: float = pj_per_bit_to_pj_per_byte(14.8)
    nop_pj_byte: float = pj_per_bit_to_pj_per_byte(2.04)
    leakage_pj_cycle: float = 20.0

    def scaled(self, factor: float) -> "EnergyTable":
        """Uniformly scale all dynamic energies (technology scaling knob)."""
        return EnergyTable(
            mac_pj=self.mac_pj * factor,
            sram_pj_byte=self.sram_pj_byte * factor,
            dram_pj_byte=self.dram_pj_byte * factor,
            nop_pj_byte=self.nop_pj_byte * factor,
            leakage_pj_cycle=self.leakage_pj_cycle * factor,
        )


#: Default 28 nm energy table used throughout the experiments.
DEFAULT_ENERGY = EnergyTable()
