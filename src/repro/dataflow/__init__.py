"""MAESTRO-lite dataflow cost model substrate."""

from repro.dataflow.cost import (
    LayerCost,
    SpatialMapping,
    compute_layer_cost,
    map_spatial,
)
from repro.dataflow.database import ChipletLike, LayerCostDatabase
from repro.dataflow.dataflow import (
    NVDLA,
    SHIDIANNAO,
    Dataflow,
    DataflowStyle,
    by_name,
    known_dataflows,
    register,
)
from repro.dataflow.energy import DEFAULT_ENERGY, EnergyTable

__all__ = [
    "ChipletLike", "DEFAULT_ENERGY", "Dataflow", "DataflowStyle",
    "EnergyTable", "LayerCost", "LayerCostDatabase", "NVDLA", "SHIDIANNAO",
    "SpatialMapping", "by_name", "compute_layer_cost", "known_dataflows",
    "map_spatial", "register",
]
