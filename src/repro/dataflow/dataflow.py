"""Dataflow classes supported by the heterogeneous MCM.

The paper's chiplets implement two accelerator dataflow styles:

* **NVDLA-like** -- weight-stationary (WS).  Weights are pinned in the PE
  array; the array is spatially unrolled over output/input channels (K, C).
* **Shi-diannao-like** -- output-stationary (OS).  Partial sums are pinned;
  the array is spatially unrolled over output elements ((Y, X) for
  convolutions, (K, M) for GEMMs).

The spatial-unrolling choice per operator class is the single decision that
produces the per-layer *dataflow affinities* the whole paper is built on
(transformer GEMMs prefer WS, spatially-large convolutions prefer OS).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import DataflowError
from repro.workloads.layer import LayerOp


class DataflowStyle(enum.Enum):
    """Stationarity class of a dataflow."""

    WEIGHT_STATIONARY = "weight_stationary"
    OUTPUT_STATIONARY = "output_stationary"


@dataclass(frozen=True)
class Dataflow:
    """A named dataflow class (``df`` in Definition 2)."""

    name: str
    style: DataflowStyle

    def spatial_dims(self, op: LayerOp) -> tuple[str, str]:
        """The two loop dimensions unrolled onto the PE array for ``op``.

        Dimension names follow :meth:`repro.workloads.layer.Layer.dims`.
        """
        if self.style is DataflowStyle.WEIGHT_STATIONARY:
            if op in (LayerOp.CONV, LayerOp.GEMM):
                return ("K", "C")
            if op in (LayerOp.DWCONV, LayerOp.POOL):
                return ("C", "R")
            if op is LayerOp.ELEMWISE:
                return ("K", "Y")
        else:
            if op in (LayerOp.CONV, LayerOp.POOL):
                # Output elements across the array: the flattened output
                # feature map ("YX") with folding over output channels, so
                # deep layers with small maps still fill the array.
                return ("YX", "K")
            if op is LayerOp.DWCONV:
                return ("YX", "C")
            if op is LayerOp.GEMM:
                # Fixed Shi-diannao FC mapping: output neurons across the
                # array (X extent is 1 by the GEMM convention); tokens (Y)
                # stream temporally.  Every PE then needs its own weight
                # each cycle, which is what makes OS chiplets
                # bandwidth-bound on channel-heavy GEMMs.
                return ("K", "X")
            if op is LayerOp.ELEMWISE:
                return ("Y", "X")
        raise DataflowError(f"dataflow {self.name!r}: unsupported op {op}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: The two dataflows evaluated by the paper.
NVDLA = Dataflow(name="nvdla", style=DataflowStyle.WEIGHT_STATIONARY)
SHIDIANNAO = Dataflow(name="shidiannao",
                      style=DataflowStyle.OUTPUT_STATIONARY)

_REGISTRY: dict[str, Dataflow] = {df.name: df for df in (NVDLA, SHIDIANNAO)}


def register(dataflow: Dataflow) -> None:
    """Register a custom dataflow so it can be resolved by name."""
    if dataflow.name in _REGISTRY:
        raise DataflowError(f"dataflow {dataflow.name!r} already registered")
    _REGISTRY[dataflow.name] = dataflow


def by_name(name: str) -> Dataflow:
    """Resolve a dataflow by its registered name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise DataflowError(
            f"unknown dataflow {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def known_dataflows() -> tuple[str, ...]:
    """Names of all registered dataflows."""
    return tuple(sorted(_REGISTRY))
