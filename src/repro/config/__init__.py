"""Config-file round-trips for MCMs, scenarios and schedules."""

from repro.config.files import (
    load_json,
    mcm_from_dict,
    mcm_to_dict,
    save_json,
    scenario_from_dict,
    scenario_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = [
    "load_json", "mcm_from_dict", "mcm_to_dict", "save_json",
    "scenario_from_dict", "scenario_to_dict", "schedule_from_dict",
    "schedule_to_dict",
]
