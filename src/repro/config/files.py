"""Configuration files (Fig. 4 "Input Configs"): JSON round-trips.

The paper's framework takes (1) multi-model workload description files and
(2) an MCM hardware description file.  Both are represented here as plain
JSON documents; schedules can also be exported for downstream tooling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.schedule import Schedule, Segment, WindowSchedule
from repro.errors import ConfigError, WorkloadError
from repro.mcm.chiplet import Chiplet
from repro.mcm.package import MCM
from repro.mcm.topology import Topology
from repro.workloads import zoo
from repro.workloads.layer import Layer, LayerOp
from repro.workloads.model import Model, ModelInstance, Scenario

# -- MCM ----------------------------------------------------------------


def mcm_to_dict(mcm: MCM) -> dict[str, Any]:
    """Serialize an MCM hardware description."""
    return {
        "name": mcm.name,
        "topology": {
            "rows": mcm.topology.rows,
            "cols": mcm.topology.cols,
            "kind": mcm.topology.kind,
        },
        "chiplets": [
            {
                "dataflow": c.dataflow,
                "num_pes": c.num_pes,
                "sram_bytes": c.sram_bytes,
                "noc_gbps": c.noc_gbps,
                "mem_gbps": c.mem_gbps,
            }
            for c in mcm.chiplets
        ],
        "offchip_gbps": mcm.offchip_gbps,
        "nop_gbps": mcm.nop_gbps,
        "nop_hop_s": mcm.nop_hop_s,
        "dram_latency_s": mcm.dram_latency_s,
        "clock_hz": mcm.clock_hz,
    }


def mcm_from_dict(data: dict[str, Any]) -> MCM:
    """Rebuild an MCM from its serialized form."""
    try:
        topo = Topology(rows=data["topology"]["rows"],
                        cols=data["topology"]["cols"],
                        kind=data["topology"].get("kind", "mesh"))
        chiplets = tuple(Chiplet(**entry) for entry in data["chiplets"])
        return MCM(name=data["name"], chiplets=chiplets, topology=topo,
                   offchip_gbps=data.get("offchip_gbps", 64.0),
                   nop_gbps=data.get("nop_gbps", 100.0),
                   nop_hop_s=data.get("nop_hop_s", 35e-9),
                   dram_latency_s=data.get("dram_latency_s", 200e-9),
                   clock_hz=data.get("clock_hz", 500e6))
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed MCM config: {exc}") from exc


# -- workloads ------------------------------------------------------------


def _layer_to_dict(layer: Layer) -> dict[str, Any]:
    return {
        "name": layer.name, "op": layer.op.value, "n": layer.n,
        "k": layer.k, "c": layer.c, "y": layer.y, "x": layer.x,
        "r": layer.r, "s": layer.s, "stride": layer.stride,
        "bytes_per_element": layer.bytes_per_element,
    }


def _layer_from_dict(data: dict[str, Any]) -> Layer:
    fields = dict(data)
    fields["op"] = LayerOp(fields["op"])
    return Layer(**fields)


def _rebuilds_from_zoo(model: Model) -> bool:
    """True when ``zoo.build(model.name)`` reproduces ``model`` exactly."""
    try:
        return zoo.build(model.name) == model
    except WorkloadError:
        return False


def scenario_to_dict(scenario: Scenario, *,
                     inline_layers: bool = False) -> dict[str, Any]:
    """Serialize a scenario.

    Models that rebuild bit-identically from the zoo are referenced by
    name (compact, Table III style); custom or modified models have
    their layers inlined automatically so the emitted document always
    loads back through :func:`scenario_from_dict`.  ``inline_layers``
    forces inlining for every model.  Tenants whose instance name
    differs from their model name (the ``model#k`` convention) carry a
    ``"name"`` entry.
    """
    instances = []
    for inst in scenario:
        entry: dict[str, Any] = {"model": inst.model.name,
                                 "batch": inst.batch}
        if inst.instance_name is not None:
            entry["name"] = inst.instance_name
        if inline_layers or not _rebuilds_from_zoo(inst.model):
            entry["layers"] = [_layer_to_dict(layer)
                               for layer in inst.model.layers]
        instances.append(entry)
    return {"name": scenario.name, "use_case": scenario.use_case,
            "models": instances}


def scenario_from_dict(data: dict[str, Any]) -> Scenario:
    """Rebuild a scenario; models resolve from the zoo unless inlined.

    Every malformed-document failure -- missing keys, an unknown zoo
    model, a non-integer batch -- surfaces as :class:`ConfigError`, the
    same contract as every other config loader in this module.
    """
    try:
        instances = []
        for entry in data["models"]:
            if "layers" in entry:
                model = Model(name=entry["model"],
                              layers=tuple(_layer_from_dict(l)
                                           for l in entry["layers"]))
            else:
                model = zoo.build(entry["model"])
            instances.append(ModelInstance(model, entry.get("batch", 1),
                                           instance_name=entry.get("name")))
        return Scenario(name=data["name"], instances=tuple(instances),
                        use_case=data.get("use_case", "datacenter"))
    except (KeyError, TypeError, ValueError, WorkloadError) as exc:
        raise ConfigError(f"malformed scenario config: {exc}") from exc


# -- schedules ---------------------------------------------------------------


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """Serialize a schedule (the Fig. 4 'Final Schedule' output)."""
    return {
        "windows": [
            {
                "index": window.index,
                "chains": [
                    [{"model": s.model, "start": s.start, "stop": s.stop,
                      "node": s.node} for s in chain]
                    for chain in window.chains
                ],
            }
            for window in schedule.windows
        ]
    }


def schedule_from_dict(data: dict[str, Any]) -> Schedule:
    """Rebuild a schedule from its serialized form."""
    try:
        windows = []
        for wdata in data["windows"]:
            chains = tuple(
                tuple(Segment(**seg) for seg in chain)
                for chain in wdata["chains"])
            windows.append(WindowSchedule(index=wdata["index"],
                                          chains=chains))
        return Schedule(windows=tuple(windows))
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed schedule config: {exc}") from exc


# -- file I/O --------------------------------------------------------------------


def save_json(data: dict[str, Any], path: str | Path) -> None:
    """Write a config document with stable formatting."""
    Path(path).write_text(json.dumps(data, indent=2, sort_keys=True))


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a config document."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot read config {path}: {exc}") from exc
