"""SCAR reproduction: multi-model scheduling on heterogeneous MCMs.

Reproduces "SCAR: Scheduling Multi-Model AI Workloads on Heterogeneous
Multi-Chiplet Module Accelerators" (MICRO 2024).  See DESIGN.md for the
system inventory and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import mcm, workloads
    from repro.core import SCARScheduler

    hardware = mcm.build("het_sides_3x3")
    scenario = workloads.scenario(4)
    result = SCARScheduler(hardware).schedule(scenario)
    print(result.metrics.summary())
"""

__version__ = "1.0.0"

from repro import api, core, dataflow, engine, mcm, perf, workloads
from repro.errors import ReproError

# repro.sweep is importable as a submodule (`from repro.sweep import
# run_sweep`) but deliberately NOT imported eagerly here: it pulls in
# the service worker-pool machinery, which the root import keeps out of
# plain `import repro` just as the CLI lazy-imports the service layer.

__all__ = ["ReproError", "api", "core", "dataflow", "engine", "mcm",
           "perf", "workloads", "__version__"]
