"""Sec. V-E ablation studies.

* **Time partitioning** -- EDP of the Het-Sides Scenario-4 search while
  sweeping ``nsplits`` 1..5 (the paper observes diminishing returns after
  4 splits).
* **Rule-based vs exhaustive PROV** -- repeat the EDP search with the
  exhaustive node-composition enumeration for scenarios 3-5.
* **Greedy vs uniform packing** -- Algorithm 1 against the uniform layer
  distribution baseline on Scenario 4 / Het-Sides (paper: 21.8% speedup,
  8.6% energy reduction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import ScheduleRequest, Session
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentConfig, strategy_request


def _request(strategy: str, scenario_id: int, config: ExperimentConfig,
             **overrides) -> ScheduleRequest:
    return strategy_request(scenario_id, strategy, "edp",
                            config).replace(**overrides)


@dataclass(frozen=True)
class NsplitsResult:
    """EDP per nsplits value (time-partitioning ablation)."""

    edps: dict[int, float]

    def improvement_rate(self, nsplits: int) -> float:
        """EDP(nsplits-1) / EDP(nsplits): the paper's 'rate of reduction'."""
        return self.edps[nsplits - 1] / self.edps[nsplits]

    def render(self) -> str:
        rows = []
        for nsplits in sorted(self.edps):
            rate = (self.improvement_rate(nsplits)
                    if nsplits - 1 in self.edps else float("nan"))
            rows.append((nsplits, self.edps[nsplits], rate))
        return format_table(
            ("nsplits", "EDP (J.s)", "rate vs previous"), rows,
            title="Ablation -- time partitioning (sc4, het_sides)")


def run_nsplits_ablation(config: ExperimentConfig | None = None,
                         scenario_id: int = 4, strategy: str = "het_sides",
                         values: tuple[int, ...] = (1, 2, 3, 4, 5)
                         ) -> NsplitsResult:
    """Sweep nsplits and record the EDP-search result."""
    config = config or ExperimentConfig()
    session = Session()
    edps = {}
    for nsplits in values:
        request = _request(strategy, scenario_id, config, nsplits=nsplits)
        edps[nsplits] = session.submit(request).metrics.edp
    return NsplitsResult(edps=edps)


@dataclass(frozen=True)
class ProvAblationResult:
    """Uniform-rule vs exhaustive PROV EDPs per (strategy, scenario)."""

    uniform: dict[tuple[str, int], float]
    exhaustive: dict[tuple[str, int], float]

    def render(self) -> str:
        rows = []
        for key in sorted(self.uniform):
            strategy, scenario_id = key
            uni = self.uniform[key]
            exh = self.exhaustive[key]
            rows.append((strategy, scenario_id, uni, exh, uni / exh))
        return format_table(
            ("strategy", "scenario", "uniform EDP", "exhaustive EDP",
             "uniform/exhaustive"),
            rows, title="Ablation -- rule-based vs exhaustive PROV")


def run_prov_ablation(config: ExperimentConfig | None = None,
                      scenario_ids: tuple[int, ...] = (3, 4, 5),
                      strategies: tuple[str, ...] = ("simba_nvd",
                                                     "het_sides"),
                      prov_limit: int = 32) -> ProvAblationResult:
    """Compare Eq. 2's uniform rule against exhaustive compositions."""
    config = config or ExperimentConfig()
    session = Session()
    uniform: dict[tuple[str, int], float] = {}
    exhaustive: dict[tuple[str, int], float] = {}
    for scenario_id in scenario_ids:
        for strategy in strategies:
            uniform[(strategy, scenario_id)] = session.submit(_request(
                strategy, scenario_id, config)).metrics.edp
            exhaustive[(strategy, scenario_id)] = session.submit(_request(
                strategy, scenario_id, config, provisioning="exhaustive",
                prov_limit=prov_limit)).metrics.edp
    return ProvAblationResult(uniform=uniform, exhaustive=exhaustive)


@dataclass(frozen=True)
class PackingAblationResult:
    """Greedy (Alg. 1) vs uniform packing metrics."""

    greedy_latency_s: float
    greedy_energy_j: float
    uniform_latency_s: float
    uniform_energy_j: float

    @property
    def speedup(self) -> float:
        """Greedy's latency advantage (paper reports 21.8%)."""
        return self.uniform_latency_s / self.greedy_latency_s

    @property
    def energy_reduction(self) -> float:
        """Greedy's energy reduction fraction (paper reports 8.6%)."""
        return 1.0 - self.greedy_energy_j / self.uniform_energy_j

    def render(self) -> str:
        rows = [
            ("greedy (Alg. 1)", self.greedy_latency_s,
             self.greedy_energy_j),
            ("uniform", self.uniform_latency_s, self.uniform_energy_j),
        ]
        table = format_table(("packing", "latency (s)", "energy (J)"),
                             rows,
                             title="Ablation -- greedy vs uniform packing")
        return (f"{table}\nspeedup {self.speedup:.3f}x (paper: 1.218x), "
                f"energy reduction {self.energy_reduction * 100:.1f}% "
                f"(paper: 8.6%)")


def run_packing_ablation(config: ExperimentConfig | None = None,
                         scenario_id: int = 4,
                         strategy: str = "het_sides"
                         ) -> PackingAblationResult:
    """Algorithm 1 vs uniform layer distribution (Sec. V-E)."""
    config = config or ExperimentConfig()
    session = Session()
    greedy = session.submit(_request(strategy, scenario_id, config,
                                     packing="greedy")).metrics
    uniform = session.submit(_request(strategy, scenario_id, config,
                                      packing="uniform")).metrics
    return PackingAblationResult(
        greedy_latency_s=greedy.latency_s, greedy_energy_j=greedy.energy_j,
        uniform_latency_s=uniform.latency_s,
        uniform_energy_j=uniform.energy_j)
