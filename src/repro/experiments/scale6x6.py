"""Fig. 13: scaling to the full 6x6 Simba MCM with evolutionary SEG search.

Scenario 4 under the EDP search on ``simba_shi_6x6`` / ``simba_nvd_6x6`` /
``het_cross_6x6`` at nsplits in {2, 3}; the SEG module runs the GA
(population 10, generations 4, the paper's settings), which the runner
enables automatically for 6x6 templates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import ScheduleResult, Session
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentConfig, strategy_request

STRATEGIES_6X6: tuple[str, ...] = ("simba6_shi", "simba6_nvd", "het_cross")


@dataclass(frozen=True)
class Scale6x6Result:
    """EDP-search runs at each nsplits setting."""

    runs: dict[tuple[str, int], ScheduleResult]
    nsplit_values: tuple[int, ...]
    scenario_id: int

    def reduction_vs(self, strategy: str, baseline: str, nsplits: int,
                     metric: str = "edp") -> float:
        """Factor by which ``baseline`` exceeds ``strategy`` (paper's
        '2.3x reduction' convention)."""
        return (self.runs[(baseline, nsplits)].value(metric)
                / self.runs[(strategy, nsplits)].value(metric))

    def render(self) -> str:
        blocks = []
        for nsplits in self.nsplit_values:
            rows = [
                (s, self.runs[(s, nsplits)].latency_s,
                 self.runs[(s, nsplits)].energy_j,
                 self.runs[(s, nsplits)].edp)
                for s in STRATEGIES_6X6
            ]
            blocks.append(format_table(
                ("strategy", "latency (s)", "energy (J)", "EDP (J.s)"),
                rows,
                title=(f"Fig. 13 -- 6x6 EDP search, scenario "
                       f"{self.scenario_id}, nsplits={nsplits}")))
            blocks.append(
                f"het_cross EDP reduction: "
                f"{self.reduction_vs('het_cross', 'simba6_shi', nsplits):.2f}x"
                f" vs Simba-6 (Shi), "
                f"{self.reduction_vs('het_cross', 'simba6_nvd', nsplits):.2f}x"
                f" vs Simba-6 (NVD)")
        return "\n\n".join(blocks)


def run_fig13(config: ExperimentConfig | None = None,
              scenario_id: int = 4,
              nsplit_values: tuple[int, ...] = (2, 3)) -> Scale6x6Result:
    """Run the 6x6 evolutionary-search experiment (Fig. 13)."""
    base = config or ExperimentConfig()
    session = Session()
    runs: dict[tuple[str, int], ScheduleResult] = {}
    for nsplits in nsplit_values:
        for strategy in STRATEGIES_6X6:
            runs[(strategy, nsplits)] = session.submit(strategy_request(
                scenario_id, strategy, "edp", base.with_nsplits(nsplits)))
    return Scale6x6Result(runs=runs, nsplit_values=nsplit_values,
                          scenario_id=scenario_id)
