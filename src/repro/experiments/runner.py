"""Shared experiment plumbing: strategies, configs and cached runs.

A *strategy* is the paper's (MCM template x scheduler policy) pair, e.g.
``stand_nvd`` (Standalone scheduler on a homogeneous NVDLA 3x3) or
``het_sides`` (SCAR on the Het-Sides 3x3).  Experiments ask the
:class:`ExperimentRunner` for (scenario, strategy, objective) triples; the
runner memoizes results so that e.g. Table IV and Fig. 7 share work inside
one process.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.baselines import NNBatonScheduler, StandaloneScheduler
from repro.core.budget import QUICK_BUDGET, SearchBudget
from repro.core.metrics import ScheduleMetrics
from repro.core.scar import SCARResult, SCARScheduler
from repro.core.schedule import Schedule
from repro.core.scoring import Objective, objective_by_name
from repro.dataflow.database import LayerCostDatabase
from repro.errors import ConfigError
from repro.mcm import templates
from repro.perf import PerfReport, merge_stats
from repro.workloads.model import Scenario

#: strategy name -> (MCM template, scheduler policy)
STRATEGIES: dict[str, tuple[str, str]] = {
    "stand_shi": ("simba_shi_3x3", "standalone"),
    "stand_nvd": ("simba_nvd_3x3", "standalone"),
    "nn_baton": ("simba_nvd_3x3", "nn_baton"),
    "simba_shi": ("simba_shi_3x3", "scar"),
    "simba_nvd": ("simba_nvd_3x3", "scar"),
    "het_cb": ("het_cb_3x3", "scar"),
    "het_sides": ("het_sides_3x3", "scar"),
    # Triangular-NoP variants (Fig. 12).
    "simba_t_shi": ("simba_t_shi", "scar"),
    "simba_t_nvd": ("simba_t_nvd", "scar"),
    "het_t": ("het_t", "scar"),
    # 6x6 variants (Fig. 13) -- paired with evolutionary SEG search.
    "simba6_shi": ("simba_shi_6x6", "scar"),
    "simba6_nvd": ("simba_nvd_6x6", "scar"),
    "het_cross": ("het_cross_6x6", "scar"),
}

#: The Fig. 7 / Table IV strategy set.
CORE_STRATEGIES: tuple[str, ...] = (
    "stand_shi", "stand_nvd", "simba_shi", "simba_nvd", "het_cb",
    "het_sides",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Runtime knobs shared by every experiment driver.

    ``fast`` presets keep CI benches to seconds/minutes; ``full`` uses the
    paper's defaults (nsplits=4, generous budget).  ``jobs`` fans the SCAR
    window search out over worker processes (results are bit-identical to
    serial runs, see :meth:`repro.core.scar.SCARScheduler.schedule`).
    """

    budget: SearchBudget = field(default_factory=SearchBudget)
    nsplits: int = 4
    seg_search: str = "enumerative"
    jobs: int = 1

    @classmethod
    def fast(cls, jobs: int = 1) -> "ExperimentConfig":
        return cls(budget=QUICK_BUDGET, nsplits=2, jobs=jobs)

    @classmethod
    def full(cls, jobs: int = 1) -> "ExperimentConfig":
        return cls(jobs=jobs)

    def with_nsplits(self, nsplits: int) -> "ExperimentConfig":
        return replace(self, nsplits=nsplits)


@dataclass(frozen=True)
class StrategyRun:
    """Outcome of one (scenario, strategy, objective) run."""

    strategy: str
    scenario_name: str
    objective: str
    metrics: ScheduleMetrics
    schedule: Schedule
    scar_result: SCARResult | None = None

    @property
    def latency_s(self) -> float:
        return self.metrics.latency_s

    @property
    def energy_j(self) -> float:
        return self.metrics.energy_j

    @property
    def edp(self) -> float:
        return self.metrics.edp

    def value(self, metric: str) -> float:
        """Look up latency / energy / edp by name."""
        if metric == "latency":
            return self.latency_s
        if metric == "energy":
            return self.energy_j
        if metric == "edp":
            return self.edp
        raise ConfigError(f"unknown metric {metric!r}")


class ExperimentRunner:
    """Memoizing front-end over the schedulers for experiment drivers.

    SCAR runs' :class:`~repro.perf.PerfReport` instances accumulate in
    ``perf_reports`` so drivers (and ``--perf-stats``) can report
    aggregate evaluation throughput and cache effectiveness.
    """

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()
        self._cache: dict[tuple, StrategyRun] = {}
        self._databases: dict[tuple, LayerCostDatabase] = {}
        self.perf_reports: list[PerfReport] = []

    def _database(self, clock_hz: float) -> LayerCostDatabase:
        key = (clock_hz,)
        if key not in self._databases:
            self._databases[key] = LayerCostDatabase(clock_hz=clock_hz)
        return self._databases[key]

    def run(self, scenario: Scenario, strategy: str,
            objective: str = "edp") -> StrategyRun:
        """Run (or fetch) one strategy on one scenario."""
        if strategy not in STRATEGIES:
            raise ConfigError(
                f"unknown strategy {strategy!r}; known: "
                f"{sorted(STRATEGIES)}")
        key = (scenario.name, strategy, objective, self.config.nsplits,
               self.config.budget, self.config.seg_search)
        if key in self._cache:
            return self._cache[key]

        template, policy = STRATEGIES[strategy]
        mcm = templates.build(template, scenario.use_case)
        database = self._database(mcm.clock_hz)
        scar_result: SCARResult | None = None
        if policy == "standalone":
            outcome = StandaloneScheduler(mcm, database).schedule(scenario)
            metrics, schedule = outcome.metrics, outcome.schedule
        elif policy == "nn_baton":
            outcome = NNBatonScheduler(mcm, database=database) \
                .schedule(scenario)
            metrics, schedule = outcome.metrics, outcome.schedule
        else:
            seg_search = self.config.seg_search
            if template.endswith("6x6"):
                seg_search = "evolutionary"
            scheduler = SCARScheduler(
                mcm,
                objective=objective_by_name(objective),
                nsplits=self.config.nsplits,
                budget=self.config.budget,
                database=database,
                seg_search=seg_search,
                jobs=self.config.jobs,
            )
            scar_result = scheduler.schedule(scenario)
            metrics, schedule = scar_result.metrics, scar_result.schedule
            if scar_result.perf is not None:
                self.perf_reports.append(scar_result.perf)

        run = StrategyRun(strategy=strategy, scenario_name=scenario.name,
                          objective=objective, metrics=metrics,
                          schedule=schedule, scar_result=scar_result)
        self._cache[key] = run
        return run

    def run_many(self, scenario: Scenario, strategies: tuple[str, ...],
                 objective: str = "edp") -> dict[str, StrategyRun]:
        """Run several strategies on one scenario."""
        return {name: self.run(scenario, name, objective)
                for name in strategies}

    def perf_summary(self) -> PerfReport:
        """Aggregate perf report over every SCAR run this runner made."""
        return aggregate_perf(self.perf_reports, jobs=self.config.jobs)


def aggregate_perf(reports: list[PerfReport],
                   jobs: int | None = None) -> PerfReport:
    """Merge perf reports of many runs into one summary."""
    return PerfReport(
        wall_s=sum(p.wall_s for p in reports),
        num_evaluated=sum(p.num_evaluated for p in reports),
        num_windows=sum(p.num_windows for p in reports),
        jobs=jobs if jobs is not None
        else max((p.jobs for p in reports), default=1),
        cache=merge_stats(*(p.cache for p in reports)),
    )
