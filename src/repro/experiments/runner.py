"""Shared experiment plumbing: strategies, configs and request building.

A *strategy* is the paper's (MCM template x scheduler policy) pair, e.g.
``stand_nvd`` (Standalone scheduler on a homogeneous NVDLA 3x3) or
``het_sides`` (SCAR on the Het-Sides 3x3).  Experiment drivers translate
(scenario, strategy, objective) triples into
:class:`~repro.api.request.ScheduleRequest` values via
:func:`strategy_request` and submit them to a shared
:class:`~repro.api.session.Session`, which memoizes results so that e.g.
Table IV and Fig. 7 share work inside one process.

:class:`ExperimentRunner` is the pre-``repro.api`` entry point, kept as a
thin deprecated shim over the session facade.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

from repro.api.request import ScheduleRequest
from repro.api.session import Session
from repro.core.budget import QUICK_BUDGET, SearchBudget
from repro.core.metrics import ScheduleMetrics
from repro.core.scar import SCARResult
from repro.core.schedule import Schedule
from repro.errors import ConfigError
from repro.perf import PerfReport, aggregate_reports
from repro.workloads.model import Scenario

#: strategy name -> (MCM template, scheduler policy)
STRATEGIES: dict[str, tuple[str, str]] = {
    "stand_shi": ("simba_shi_3x3", "standalone"),
    "stand_nvd": ("simba_nvd_3x3", "standalone"),
    "nn_baton": ("simba_nvd_3x3", "nn_baton"),
    "simba_shi": ("simba_shi_3x3", "scar"),
    "simba_nvd": ("simba_nvd_3x3", "scar"),
    "het_cb": ("het_cb_3x3", "scar"),
    "het_sides": ("het_sides_3x3", "scar"),
    # Triangular-NoP variants (Fig. 12).
    "simba_t_shi": ("simba_t_shi", "scar"),
    "simba_t_nvd": ("simba_t_nvd", "scar"),
    "het_t": ("het_t", "scar"),
    # 6x6 variants (Fig. 13) -- paired with evolutionary SEG search.
    "simba6_shi": ("simba_shi_6x6", "scar"),
    "simba6_nvd": ("simba_nvd_6x6", "scar"),
    "het_cross": ("het_cross_6x6", "scar"),
}

#: The Fig. 7 / Table IV strategy set.
CORE_STRATEGIES: tuple[str, ...] = (
    "stand_shi", "stand_nvd", "simba_shi", "simba_nvd", "het_cb",
    "het_sides",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Runtime knobs shared by every experiment driver.

    ``fast`` presets keep CI benches to seconds/minutes; ``full`` uses the
    paper's defaults (nsplits=4, generous budget).  ``jobs`` fans the SCAR
    window search out over worker processes (results are bit-identical to
    serial runs, see :meth:`repro.core.scar.SCARScheduler.schedule`);
    ``use_eval_cache`` toggles the segment-cost memo (also bit-identical
    either way).
    """

    budget: SearchBudget = field(default_factory=SearchBudget)
    nsplits: int = 4
    seg_search: str = "enumerative"
    jobs: int = 1
    use_eval_cache: bool = True

    @classmethod
    def fast(cls, jobs: int = 1) -> "ExperimentConfig":
        return cls(budget=QUICK_BUDGET, nsplits=2, jobs=jobs)

    @classmethod
    def full(cls, jobs: int = 1) -> "ExperimentConfig":
        return cls(jobs=jobs)

    def with_nsplits(self, nsplits: int) -> "ExperimentConfig":
        return replace(self, nsplits=nsplits)


def strategy_request(scenario: int | Scenario, strategy: str,
                     objective: str = "edp",
                     config: ExperimentConfig | None = None
                     ) -> ScheduleRequest:
    """The :class:`ScheduleRequest` for one paper strategy.

    ``scenario`` is a Table III id (compact request) or an in-memory
    :class:`~repro.workloads.model.Scenario` (inlined into the request
    spec).  6x6 templates force the evolutionary SEG search, as the paper
    pairs them.
    """
    config = config or ExperimentConfig()
    if strategy not in STRATEGIES:
        raise ConfigError(
            f"unknown strategy {strategy!r}; known: "
            f"{sorted(STRATEGIES)}")
    template, policy = STRATEGIES[strategy]
    seg_search = config.seg_search
    if template.endswith("6x6"):
        seg_search = "evolutionary"
    return ScheduleRequest.for_scenario(
        scenario, template=template, policy=policy, objective=objective,
        nsplits=config.nsplits, budget=config.budget,
        seg_search=seg_search, jobs=config.jobs,
        use_eval_cache=config.use_eval_cache)


@dataclass(frozen=True)
class StrategyRun:
    """Outcome of one (scenario, strategy, objective) run."""

    strategy: str
    scenario_name: str
    objective: str
    metrics: ScheduleMetrics
    schedule: Schedule
    scar_result: SCARResult | None = None

    @property
    def latency_s(self) -> float:
        return self.metrics.latency_s

    @property
    def energy_j(self) -> float:
        return self.metrics.energy_j

    @property
    def edp(self) -> float:
        return self.metrics.edp

    def value(self, metric: str) -> float:
        """Look up latency / energy / edp by name."""
        if metric == "latency":
            return self.latency_s
        if metric == "energy":
            return self.energy_j
        if metric == "edp":
            return self.edp
        raise ConfigError(f"unknown metric {metric!r}")


class ExperimentRunner:
    """Deprecated memoizing front-end; use :class:`repro.api.Session`.

    Kept as a thin shim so pre-``repro.api`` callers keep working: every
    run is translated to a :class:`ScheduleRequest` and submitted to an
    internal session, whose memo key covers the full request (including
    ``jobs`` and the cache flags).  SCAR perf reports accumulate in
    ``perf_reports`` exactly as before.
    """

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        warnings.warn(
            "ExperimentRunner is deprecated; submit ScheduleRequests to "
            "repro.api.Session instead", DeprecationWarning, stacklevel=2)
        self.config = config or ExperimentConfig()
        self.session = Session()
        self._runs: dict[tuple, StrategyRun] = {}

    @property
    def perf_reports(self) -> list[PerfReport]:
        return self.session.perf_reports

    def run(self, scenario: Scenario, strategy: str,
            objective: str = "edp") -> StrategyRun:
        """Run (or fetch) one strategy on one scenario.

        The memo key extends the legacy tuple with ``jobs`` and the
        cache-enable flag, so runs under different parallelism/caching
        settings never alias (the underlying session memo additionally
        keys on the full request).
        """
        key = (scenario.name, strategy, objective, self.config.nsplits,
               self.config.budget, self.config.seg_search,
               self.config.jobs, self.config.use_eval_cache)
        if key in self._runs:
            return self._runs[key]
        result = self.session.submit(
            strategy_request(scenario, strategy, objective, self.config))
        run = StrategyRun(strategy=strategy, scenario_name=scenario.name,
                          objective=objective, metrics=result.metrics,
                          schedule=result.schedule,
                          scar_result=result.raw)
        self._runs[key] = run
        return run

    def run_many(self, scenario: Scenario, strategies: tuple[str, ...],
                 objective: str = "edp") -> dict[str, StrategyRun]:
        """Run several strategies on one scenario."""
        return {name: self.run(scenario, name, objective)
                for name in strategies}

    def perf_summary(self) -> PerfReport:
        """Aggregate perf report over every SCAR run this runner made."""
        return aggregate_perf(self.perf_reports, jobs=self.config.jobs)


def aggregate_perf(reports: list[PerfReport],
                   jobs: int | None = None) -> PerfReport:
    """Merge perf reports of many runs into one summary."""
    return aggregate_reports(reports, jobs=jobs)
