"""Fig. 12: triangular-NoP ablation (Sec. V-E).

SCAR generalizes to non-mesh NoPs because it only relies on adjacency;
this experiment repeats the EDP search for scenarios 3 and 4 on the
triangular 3x3 templates (Simba-T Shi / Simba-T NVD / Het-T), normalized
by the standalone NVDLA baseline, as in Fig. 12.

Like the Pareto figures, execution goes through the sweep layer
(:func:`repro.sweep.run_requests`), so the grid can fan over service
workers and resume from a JSONL result store.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import ScheduleResult
from repro.experiments.reporting import format_table, normalize
from repro.experiments.runner import ExperimentConfig, strategy_request
from repro.sweep import ResultStore, run_requests

TRIANGULAR_STRATEGIES: tuple[str, ...] = ("simba_t_shi", "simba_t_nvd",
                                          "het_t")
FIG12_SCENARIOS: tuple[int, ...] = (3, 4)


@dataclass(frozen=True)
class TopologyResult:
    """EDP-search results on triangular topologies, plus the baseline."""

    runs: dict[tuple[str, int], ScheduleResult]
    scenario_ids: tuple[int, ...]
    strategies: tuple[str, ...]

    def normalized_edp(self, scenario_id: int) -> dict[str, float]:
        values = {s: self.runs[(s, scenario_id)].edp
                  for s in (*self.strategies, "stand_nvd")}
        return normalize(values, "stand_nvd")

    def render(self) -> str:
        rows = []
        for strategy in self.strategies:
            row: list[object] = [strategy]
            for scenario_id in self.scenario_ids:
                row.append(self.normalized_edp(scenario_id)[strategy])
            rows.append(row)
        headers = ["strategy"] + [f"sc{i} EDP (x stand_nvd)"
                                  for i in self.scenario_ids]
        return format_table(headers, rows,
                            title="Fig. 12 -- triangular NoP, EDP search")


def run_fig12(config: ExperimentConfig | None = None,
              scenario_ids: tuple[int, ...] = FIG12_SCENARIOS,
              *, store: ResultStore | None = None,
              workers: int = 1) -> TopologyResult:
    """Run the triangular-NoP EDP search (Fig. 12)."""
    cells = [(strategy, scenario_id)
             for scenario_id in scenario_ids
             for strategy in (*TRIANGULAR_STRATEGIES, "stand_nvd")]
    requests = [strategy_request(scenario_id, strategy, "edp", config)
                for strategy, scenario_id in cells]
    outcome = run_requests(requests, store=store, workers=workers)
    runs = {cell: outcome.result_at(i)  # failed cells raise their error
            for i, cell in enumerate(cells)}
    return TopologyResult(runs=runs, scenario_ids=scenario_ids,
                          strategies=TRIANGULAR_STRATEGIES)
