"""Experiment drivers: one module per paper table/figure (see DESIGN.md)."""

from repro.experiments.ablations import (
    run_nsplits_ablation,
    run_packing_ablation,
    run_prov_ablation,
)
from repro.experiments.arvr import ArvrResult, run_arvr
from repro.experiments.datacenter import DatacenterResult, run_datacenter
from repro.experiments.motivational import Fig2Result, run_fig2
from repro.experiments.pareto import (
    ParetoResult,
    run_fig8,
    run_fig11,
    run_pareto,
)
from repro.experiments.reporting import (
    ascii_scatter,
    format_table,
    normalize,
    pareto_front,
)
from repro.experiments.runner import (
    CORE_STRATEGIES,
    STRATEGIES,
    ExperimentConfig,
    ExperimentRunner,
    StrategyRun,
    aggregate_perf,
    strategy_request,
)
from repro.perf import drain_perf_reports
from repro.experiments.scale6x6 import Scale6x6Result, run_fig13
from repro.experiments.schedule_detail import BreakdownResult, run_breakdown
from repro.experiments.topology_ablation import TopologyResult, run_fig12

__all__ = [
    "ArvrResult", "BreakdownResult", "CORE_STRATEGIES",
    "DatacenterResult", "ExperimentConfig", "ExperimentRunner",
    "Fig2Result", "ParetoResult", "STRATEGIES", "Scale6x6Result",
    "StrategyRun", "TopologyResult", "aggregate_perf", "ascii_scatter",
    "drain_perf_reports", "format_table",
    "normalize", "pareto_front", "run_arvr", "run_breakdown",
    "run_datacenter", "run_fig11", "run_fig12", "run_fig13", "run_fig2",
    "run_fig8", "run_nsplits_ablation", "run_pareto", "run_packing_ablation",
    "run_prov_ablation", "strategy_request",
]
