"""Fig. 2 motivational study: a 2x2 heterogeneous MCM (3 NVDLA + 1 Shi).

Workload: three layers from ResNet-50's second block plus the first GPT
feed-forward layer, batch 1, 4096-PE chiplets with 10 MB L2.  Reproduces
the six cases:

* A1/A2 -- single model (ResNet slice) on one Shi / NVDLA chiplet
  (NN-baton-style single-chiplet scheduling);
* A3 -- single model through SCAR on the heterogeneous 2x2;
* B1 -- multi-model, NN-baton sequential on the starting chiplet;
* B2 -- multi-model, SCAR restricted to one time window (spatial);
* B3 -- multi-model, SCAR with two time windows (spatio-temporal).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.baselines import NNBatonScheduler, StandaloneScheduler
from repro.core.budget import SearchBudget
from repro.core.scar import SCARScheduler
from repro.core.scoring import edp_objective
from repro.experiments.reporting import format_table
from repro.mcm import templates
from repro.workloads.model import Model, ModelInstance, Scenario
from repro.workloads.zoo.resnet import resnet_block2_slice
from repro.workloads.zoo.transformers import gpt2_ffn_layer


def motivational_scenarios() -> tuple[Scenario, Scenario]:
    """(single-model ResNet-slice scenario, two-model scenario)."""
    resnet_slice = Model(name="resnet_block2",
                         layers=resnet_block2_slice(3))
    gpt_layer = Model(name="gpt2_ffn", layers=(gpt2_ffn_layer(),))
    single = Scenario(name="fig2_single",
                      instances=(ModelInstance(resnet_slice, 1),))
    multi = Scenario(name="fig2_multi",
                     instances=(ModelInstance(resnet_slice, 1),
                                ModelInstance(gpt_layer, 1)))
    return single, multi


@dataclass(frozen=True)
class Fig2Result:
    """EDPs of the six motivational cases plus paper-style ratios."""

    edps: dict[str, float]

    @property
    def single_ratios(self) -> dict[str, float]:
        ref = self.edps["A1_nnbaton_shi"]
        return {k: self.edps[k] / ref for k in
                ("A1_nnbaton_shi", "A2_nnbaton_nvd", "A3_scar_het")}

    @property
    def multi_ratios(self) -> dict[str, float]:
        ref = self.edps["B1_nnbaton_seq"]
        return {k: self.edps[k] / ref for k in
                ("B1_nnbaton_seq", "B2_scar_spatial", "B3_scar_temporal")}

    def render(self) -> str:
        rows = [(name, edp * 1e3) for name, edp in self.edps.items()]
        table = format_table(("case", "EDP (mJ.s)"), rows,
                             title="Fig. 2 motivational study (2x2 MCM)")
        ratios = [
            f"A2/A1 = {self.single_ratios['A2_nnbaton_nvd']:.2f} "
            "(paper: 0.78)",
            f"A3/A1 = {self.single_ratios['A3_scar_het']:.2f} "
            "(paper: 0.52)",
            f"B2/B1 = {self.multi_ratios['B2_scar_spatial']:.2f} "
            "(paper: 0.30)",
            f"B3/B1 = {self.multi_ratios['B3_scar_temporal']:.2f} "
            "(paper: 0.28)",
        ]
        return table + "\n" + "\n".join(ratios)


def run_fig2(budget: SearchBudget | None = None) -> Fig2Result:
    """Run all six Fig. 2 cases and return their EDPs."""
    budget = budget or SearchBudget()
    single, multi = motivational_scenarios()
    het = templates.build("het_2x2")
    shi = templates.custom_mesh("shi_2x2", 2, 2, ["shidiannao"] * 4)
    nvd = templates.custom_mesh("nvd_2x2", 2, 2, ["nvdla"] * 4)

    edps: dict[str, float] = {}
    edps["A1_nnbaton_shi"] = NNBatonScheduler(shi).schedule(single) \
        .metrics.edp
    edps["A2_nnbaton_nvd"] = NNBatonScheduler(nvd).schedule(single) \
        .metrics.edp
    edps["A3_scar_het"] = SCARScheduler(
        het, objective=edp_objective(), nsplits=0,
        budget=budget).schedule(single).metrics.edp

    edps["B1_nnbaton_seq"] = NNBatonScheduler(het).schedule(multi) \
        .metrics.edp
    edps["B2_scar_spatial"] = SCARScheduler(
        het, objective=edp_objective(), nsplits=0,
        budget=budget).schedule(multi).metrics.edp
    edps["B3_scar_temporal"] = SCARScheduler(
        het, objective=edp_objective(), nsplits=1,
        budget=budget).schedule(multi).metrics.edp
    return Fig2Result(edps=edps)
