"""Figs. 8 and 11: Pareto fronts of the evaluated schedule populations.

Every SCAR run carries its evaluated candidate population
(:meth:`~repro.core.scar.SCARResult.candidate_points`); standalone
baselines contribute single points.  The experiment reports the
(latency, energy) scatter and the non-dominated front per strategy,
normalized to the standalone NVDLA point as in the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import (
    Point,
    ascii_scatter,
    format_table,
    pareto_front,
)
from repro.api import Session
from repro.experiments.runner import (
    CORE_STRATEGIES,
    ExperimentConfig,
    strategy_request,
)

#: Scenario sets used by the two Pareto figures.
FIG8_SCENARIOS: tuple[int, ...] = (3, 4)
FIG11_SCENARIOS: tuple[int, ...] = (6, 7, 8, 10)


@dataclass(frozen=True)
class ParetoResult:
    """Candidate populations per (scenario, strategy)."""

    points: dict[tuple[int, str], tuple[Point, ...]]
    scenario_ids: tuple[int, ...]
    strategies: tuple[str, ...]
    searches: tuple[str, ...]

    def front(self, scenario_id: int, strategy: str) -> list[Point]:
        return pareto_front(self.points[(scenario_id, strategy)])

    def global_front(self, scenario_id: int) -> list[Point]:
        merged: list[Point] = []
        for strategy in self.strategies:
            merged.extend(self.points[(scenario_id, strategy)])
        return pareto_front(merged)

    def render(self) -> str:
        blocks = []
        for scenario_id in self.scenario_ids:
            rows = []
            for strategy in self.strategies:
                front = self.front(scenario_id, strategy)
                best_lat = min(p[0] for p in front)
                best_energy = min(p[1] for p in front)
                best_edp = min(p[0] * p[1] for p in front)
                rows.append((strategy, len(self.points[(scenario_id,
                                                        strategy)]),
                             best_lat, best_energy, best_edp))
            blocks.append(format_table(
                ("strategy", "points", "best lat (s)", "best E (J)",
                 "best EDP (J.s)"),
                rows, title=f"Pareto summary -- scenario {scenario_id}"))
            series = {strategy: self.front(scenario_id, strategy)
                      for strategy in self.strategies}
            blocks.append(ascii_scatter(
                series, title=f"Pareto fronts -- scenario {scenario_id}"))
        return "\n\n".join(blocks)


def run_pareto(scenario_ids: tuple[int, ...],
               config: ExperimentConfig | None = None,
               strategies: tuple[str, ...] = CORE_STRATEGIES,
               searches: tuple[str, ...] = ("latency", "energy", "edp")
               ) -> ParetoResult:
    """Collect candidate populations across search targets (Fig. 8 / 11)."""
    session = Session()
    points: dict[tuple[int, str], tuple[Point, ...]] = {}
    for scenario_id in scenario_ids:
        for strategy in strategies:
            collected: list[Point] = []
            for search in searches:
                run = session.submit(
                    strategy_request(scenario_id, strategy, search,
                                     config))
                collected.extend(run.candidate_points())
            points[(scenario_id, strategy)] = tuple(collected)
    return ParetoResult(points=points, scenario_ids=scenario_ids,
                        strategies=strategies, searches=searches)


def run_fig8(config: ExperimentConfig | None = None) -> ParetoResult:
    """Fig. 8: datacenter scenarios 3 and 4 across all search targets."""
    return run_pareto(FIG8_SCENARIOS, config)


def run_fig11(config: ExperimentConfig | None = None) -> ParetoResult:
    """Fig. 11: AR/VR scenarios 6, 7, 8 and 10 under the EDP search."""
    return run_pareto(FIG11_SCENARIOS, config, searches=("edp",))
