"""Figs. 8 and 11: Pareto fronts of the evaluated schedule populations.

Every SCAR run carries its evaluated candidate population
(:meth:`~repro.core.scar.SCARResult.candidate_points`); standalone
baselines contribute single points.  The experiment reports the
(latency, energy) scatter and the non-dominated front per strategy,
normalized to the standalone NVDLA point as in the paper's figures.

Execution goes through the sweep layer
(:func:`repro.sweep.run_requests`): the (scenario, strategy, search)
grid is expanded to requests up front, optionally fanned over service
workers and resumable from a JSONL result store -- the figures are
just campaigns with a fixed grid.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import (
    Point,
    ascii_scatter,
    format_table,
    pareto_front,
)
from repro.experiments.runner import (
    CORE_STRATEGIES,
    ExperimentConfig,
    strategy_request,
)
from repro.sweep import ResultStore, run_requests

#: Scenario sets used by the two Pareto figures.
FIG8_SCENARIOS: tuple[int, ...] = (3, 4)
FIG11_SCENARIOS: tuple[int, ...] = (6, 7, 8, 10)


@dataclass(frozen=True)
class ParetoResult:
    """Candidate populations per (scenario, strategy)."""

    points: dict[tuple[int, str], tuple[Point, ...]]
    scenario_ids: tuple[int, ...]
    strategies: tuple[str, ...]
    searches: tuple[str, ...]

    def front(self, scenario_id: int, strategy: str) -> list[Point]:
        return pareto_front(self.points[(scenario_id, strategy)])

    def global_front(self, scenario_id: int) -> list[Point]:
        merged: list[Point] = []
        for strategy in self.strategies:
            merged.extend(self.points[(scenario_id, strategy)])
        return pareto_front(merged)

    def render(self) -> str:
        blocks = []
        for scenario_id in self.scenario_ids:
            rows = []
            for strategy in self.strategies:
                front = self.front(scenario_id, strategy)
                best_lat = min(p[0] for p in front)
                best_energy = min(p[1] for p in front)
                best_edp = min(p[0] * p[1] for p in front)
                rows.append((strategy, len(self.points[(scenario_id,
                                                        strategy)]),
                             best_lat, best_energy, best_edp))
            blocks.append(format_table(
                ("strategy", "points", "best lat (s)", "best E (J)",
                 "best EDP (J.s)"),
                rows, title=f"Pareto summary -- scenario {scenario_id}"))
            series = {strategy: self.front(scenario_id, strategy)
                      for strategy in self.strategies}
            blocks.append(ascii_scatter(
                series, title=f"Pareto fronts -- scenario {scenario_id}"))
        return "\n\n".join(blocks)


def run_pareto(scenario_ids: tuple[int, ...],
               config: ExperimentConfig | None = None,
               strategies: tuple[str, ...] = CORE_STRATEGIES,
               searches: tuple[str, ...] = ("latency", "energy", "edp"),
               *, store: ResultStore | None = None,
               workers: int = 1) -> ParetoResult:
    """Collect candidate populations across search targets (Fig. 8 / 11).

    ``workers`` fans the grid over service worker threads (results are
    bit-identical to serial); ``store`` makes the campaign resumable --
    rerunning with the same store skips every finished cell.
    """
    cells = [(scenario_id, strategy, search)
             for scenario_id in scenario_ids
             for strategy in strategies
             for search in searches]
    requests = [strategy_request(scenario_id, strategy, search, config)
                for scenario_id, strategy, search in cells]
    outcome = run_requests(requests, store=store, workers=workers)
    points: dict[tuple[int, str], tuple[Point, ...]] = {
        (scenario_id, strategy): ()
        for scenario_id in scenario_ids for strategy in strategies}
    for i, (scenario_id, strategy, _) in enumerate(cells):
        run = outcome.result_at(i)  # failed cells raise their error
        points[(scenario_id, strategy)] += tuple(run.candidate_points())
    return ParetoResult(points=points, scenario_ids=scenario_ids,
                        strategies=strategies, searches=searches)


def run_fig8(config: ExperimentConfig | None = None, *,
             store: ResultStore | None = None,
             workers: int = 1) -> ParetoResult:
    """Fig. 8: datacenter scenarios 3 and 4 across all search targets."""
    return run_pareto(FIG8_SCENARIOS, config, store=store,
                      workers=workers)


def run_fig11(config: ExperimentConfig | None = None, *,
              store: ResultStore | None = None,
              workers: int = 1) -> ParetoResult:
    """Fig. 11: AR/VR scenarios 6, 7, 8 and 10 under the EDP search."""
    return run_pareto(FIG11_SCENARIOS, config, searches=("edp",),
                      store=store, workers=workers)
