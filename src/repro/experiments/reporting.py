"""Plain-text reporting helpers for the experiment drivers.

Experiments print the same rows/series the paper's tables and figures
report; these helpers render aligned ASCII tables, normalized ratios and
Pareto fronts without any plotting dependency.
"""

from __future__ import annotations

from typing import Sequence

Point = tuple[float, float]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned ASCII table (floats shown with 4 significant)."""

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(len(row))))
    return "\n".join(lines)


def normalize(values: dict[str, float], baseline: str) -> dict[str, float]:
    """Divide every value by the baseline entry (the paper's 'normalized
    by standalone NVDLA' convention)."""
    if baseline not in values:
        raise KeyError(f"baseline {baseline!r} missing from {sorted(values)}")
    ref = values[baseline]
    if ref == 0:
        raise ZeroDivisionError(f"baseline {baseline!r} value is zero")
    return {name: value / ref for name, value in values.items()}


def pareto_front(points: Sequence[Point]) -> list[Point]:
    """Non-dominated (latency, energy) points, sorted by latency.

    A point dominates another when it is <= in both coordinates and < in
    at least one.
    """
    front: list[Point] = []
    best_energy = float("inf")
    for candidate in sorted(set(points)):
        if candidate[1] < best_energy:
            front.append(candidate)
            best_energy = candidate[1]
    return front


def ascii_scatter(series: dict[str, Sequence[Point]], width: int = 64,
                  height: int = 20, title: str | None = None) -> str:
    """Rough log-free scatter plot of (latency, energy) series.

    Each series gets the first letter of its name as the marker; later
    series overwrite earlier ones on collisions.  Intended for quick
    terminal inspection of Pareto structure, not publication.
    """
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        return "(no points)"
    min_x = min(p[0] for p in all_points)
    max_x = max(p[0] for p in all_points)
    min_y = min(p[1] for p in all_points)
    max_y = max(p[1] for p in all_points)
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for name, points in series.items():
        marker = name[0].upper()
        for x, y in points:
            col = int((x - min_x) / span_x * (width - 1))
            row = int((y - min_y) / span_y * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"energy [{min_y:.3g}, {max_y:.3g}] J (vertical) vs "
                 f"latency [{min_x:.3g}, {max_x:.3g}] s (horizontal)")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("legend: " + ", ".join(f"{name[0].upper()}={name}"
                                        for name in series))
    return "\n".join(lines)
