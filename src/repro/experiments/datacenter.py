"""Table IV and Fig. 7: datacenter (MLPerf) scheduling results, 3x3 MCMs.

Table IV reports latency and EDP of the top candidate per strategy under
the Latency Search and the EDP Search for scenarios 1-5.  Fig. 7 extends
this to the full 3x3 grid (search metric x evaluation metric), normalized
by the standalone NVDLA baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import ScheduleResult, Session
from repro.experiments.reporting import format_table, normalize
from repro.experiments.runner import (
    CORE_STRATEGIES,
    ExperimentConfig,
    strategy_request,
)
from repro.workloads.scenarios import DATACENTER_IDS

SEARCHES_TABLE4 = ("latency", "edp")
SEARCHES_FIG7 = ("latency", "energy", "edp")
EVAL_METRICS = ("latency", "energy", "edp")


@dataclass(frozen=True)
class DatacenterResult:
    """All (strategy, scenario, search-objective) runs for scenarios 1-5."""

    runs: dict[tuple[str, int, str], ScheduleResult]
    scenario_ids: tuple[int, ...]
    strategies: tuple[str, ...]

    def value(self, strategy: str, scenario_id: int, search: str,
              metric: str) -> float:
        return self.runs[(strategy, scenario_id, search)].value(metric)

    def normalized_grid(self, search: str, metric: str,
                        baseline: str = "stand_nvd") -> dict[str, dict[int, float]]:
        """Fig. 7 cell: per-strategy values normalized by the baseline."""
        grid: dict[str, dict[int, float]] = {s: {} for s in self.strategies}
        for scenario_id in self.scenario_ids:
            values = {s: self.value(s, scenario_id, search, metric)
                      for s in self.strategies}
            normed = normalize(values, baseline)
            for strategy in self.strategies:
                grid[strategy][scenario_id] = normed[strategy]
        return grid

    def render_table4(self) -> str:
        """The Table IV layout: latency & EDP per search per scenario."""
        blocks = []
        for search in SEARCHES_TABLE4:
            rows = []
            for strategy in self.strategies:
                row: list[object] = [strategy]
                for scenario_id in self.scenario_ids:
                    row.append(self.value(strategy, scenario_id, search,
                                          "latency"))
                for scenario_id in self.scenario_ids:
                    row.append(self.value(strategy, scenario_id, search,
                                          "edp"))
                rows.append(row)
            headers = ["strategy"] \
                + [f"lat(s) sc{i}" for i in self.scenario_ids] \
                + [f"EDP(J.s) sc{i}" for i in self.scenario_ids]
            blocks.append(format_table(
                headers, rows, title=f"Table IV -- {search} search"))
        return "\n\n".join(blocks)

    def render_fig7(self) -> str:
        """The Fig. 7 grid, normalized by standalone NVDLA."""
        blocks = []
        for search in SEARCHES_FIG7:
            for metric in EVAL_METRICS:
                grid = self.normalized_grid(search, metric)
                rows = [[s] + [grid[s][i] for i in self.scenario_ids]
                        for s in self.strategies]
                headers = ["strategy"] + [f"sc{i}" for i in self.scenario_ids]
                blocks.append(format_table(
                    headers, rows,
                    title=(f"Fig. 7 -- {search} search, {metric} eval "
                           f"(x stand_nvd)")))
        return "\n\n".join(blocks)


def run_datacenter(config: ExperimentConfig | None = None,
                   scenario_ids: tuple[int, ...] = DATACENTER_IDS,
                   searches: tuple[str, ...] = SEARCHES_FIG7,
                   strategies: tuple[str, ...] = CORE_STRATEGIES
                   ) -> DatacenterResult:
    """Run the datacenter suite (Table IV rows + Fig. 7 grid inputs)."""
    session = Session()
    runs: dict[tuple[str, int, str], ScheduleResult] = {}
    for scenario_id in scenario_ids:
        for search in searches:
            for strategy in strategies:
                runs[(strategy, scenario_id, search)] = session.submit(
                    strategy_request(scenario_id, strategy, search,
                                     config))
    return DatacenterResult(runs=runs, scenario_ids=scenario_ids,
                            strategies=strategies)
