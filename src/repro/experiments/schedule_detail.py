"""Fig. 9 and Table VI: the top-scoring Het-Sides schedule for Scenario 4.

Reproduces the per-window breakdown table: each model's latency
contribution per window, its ideal (sum-of-windows) latency, layer counts
per window, and the chiplet allocation (the Fig. 9 spatial view is
rendered as text).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Session
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentConfig, strategy_request
from repro.workloads.scenarios import scenario


@dataclass(frozen=True)
class BreakdownResult:
    """Per-window, per-model latency/layer breakdown (Table VI layout)."""

    scenario_id: int
    strategy: str
    model_names: tuple[str, ...]
    window_latencies: tuple[float, ...]
    per_model_latency: dict[str, tuple[float, ...]]
    per_model_layers: dict[str, tuple[int, ...]]
    schedule_text: str
    grid_text: str

    @property
    def total_latency_s(self) -> float:
        return sum(self.window_latencies)

    def ideal_latency(self, model: str) -> float:
        """Sum of the model's own window latencies (its 'ideal tot')."""
        return sum(self.per_model_latency[model])

    def render(self) -> str:
        num_windows = len(self.window_latencies)
        headers = ["model"] + [f"W{i}" for i in range(num_windows)] \
            + ["ideal tot", "#layers"]
        rows: list[list[object]] = []
        for name in self.model_names:
            lat = self.per_model_latency[name]
            layers = self.per_model_layers[name]
            rows.append([name, *lat, self.ideal_latency(name),
                         sum(layers)])
        rows.append(["window", *self.window_latencies,
                     self.total_latency_s,
                     sum(sum(self.per_model_layers[n])
                         for n in self.model_names)])
        table = format_table(
            headers, rows,
            title=(f"Table VI -- per-window latency (s), scenario "
                   f"{self.scenario_id}, {self.strategy}"))
        return "\n\n".join((
            table,
            "MCM dataflow pattern:\n" + self.grid_text,
            "Fig. 9 -- schedule:\n" + self.schedule_text,
        ))


def run_breakdown(scenario_id: int = 4, strategy: str = "het_sides",
                  config: ExperimentConfig | None = None,
                  objective: str = "edp") -> BreakdownResult:
    """Run the EDP search and extract the Fig. 9 / Table VI breakdown."""
    session = Session()
    sc = scenario(scenario_id)
    run = session.submit(
        strategy_request(scenario_id, strategy, objective, config))

    model_names = sc.model_names
    num_windows = run.metrics.windows[-1].index + 1
    per_model_latency = {name: [0.0] * num_windows for name in model_names}
    per_model_layers = {name: [0] * num_windows for name in model_names}
    window_latencies = [0.0] * num_windows
    for window_metrics, window in zip(run.metrics.windows,
                                      run.schedule.windows):
        idx = window_metrics.index
        window_latencies[idx] = window_metrics.latency_s
        for entry in window_metrics.per_model:
            per_model_latency[model_names[entry.model]][idx] = \
                entry.latency_s
        for chain in window.chains:
            name = model_names[chain[0].model]
            per_model_layers[name][idx] = sum(seg.num_layers
                                              for seg in chain)

    from repro.mcm import templates
    from repro.experiments.runner import STRATEGIES
    mcm = templates.build(STRATEGIES[strategy][0], sc.use_case)
    return BreakdownResult(
        scenario_id=scenario_id,
        strategy=strategy,
        model_names=model_names,
        window_latencies=tuple(window_latencies),
        per_model_latency={k: tuple(v)
                           for k, v in per_model_latency.items()},
        per_model_layers={k: tuple(v) for k, v in per_model_layers.items()},
        schedule_text=run.schedule.describe(sc),
        grid_text=mcm.grid_diagram(),
    )
