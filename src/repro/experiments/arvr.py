"""Table V and Fig. 10: AR/VR (XRBench) EDP-search results, 3x3 MCMs.

Scenarios 6-10 at the edge operating point (256 PEs/chiplet).  Table V
reports latency and EDP relative to the standalone NVDLA baseline for the
EDP search; Fig. 10 plots the same EDP ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import ScheduleResult, Session
from repro.experiments.reporting import format_table, normalize
from repro.experiments.runner import (
    CORE_STRATEGIES,
    ExperimentConfig,
    strategy_request,
)
from repro.workloads.scenarios import ARVR_IDS


@dataclass(frozen=True)
class ArvrResult:
    """EDP-search runs for scenarios 6-10."""

    runs: dict[tuple[str, int], ScheduleResult]
    scenario_ids: tuple[int, ...]
    strategies: tuple[str, ...]

    def relative(self, metric: str,
                 baseline: str = "stand_nvd") -> dict[str, dict[int, float]]:
        """Per-strategy metric relative to standalone NVDLA (Table V)."""
        grid: dict[str, dict[int, float]] = {s: {} for s in self.strategies}
        for scenario_id in self.scenario_ids:
            values = {s: self.runs[(s, scenario_id)].value(metric)
                      for s in self.strategies}
            normed = normalize(values, baseline)
            for strategy in self.strategies:
                grid[strategy][scenario_id] = normed[strategy]
        return grid

    def average_improvement(self, strategy: str,
                            baseline: str = "stand_nvd") -> float:
        """Mean EDP reduction of ``strategy`` vs ``baseline`` (fraction)."""
        rel = self.relative("edp", baseline)[strategy]
        return 1.0 - sum(rel.values()) / len(rel)

    def render(self) -> str:
        blocks = []
        for metric in ("latency", "edp"):
            grid = self.relative(metric)
            rows = [[s] + [grid[s][i] for i in self.scenario_ids]
                    for s in self.strategies]
            headers = ["strategy"] + [f"sc{i}" for i in self.scenario_ids]
            blocks.append(format_table(
                headers, rows,
                title=(f"Table V -- EDP search, relative {metric} "
                       f"(x stand_nvd)")))
        return "\n\n".join(blocks)


def run_arvr(config: ExperimentConfig | None = None,
             scenario_ids: tuple[int, ...] = ARVR_IDS,
             strategies: tuple[str, ...] = CORE_STRATEGIES) -> ArvrResult:
    """Run the AR/VR suite under the EDP search (Table V / Fig. 10)."""
    session = Session()
    runs: dict[tuple[str, int], ScheduleResult] = {}
    for scenario_id in scenario_ids:
        for strategy in strategies:
            runs[(strategy, scenario_id)] = session.submit(
                strategy_request(scenario_id, strategy, "edp", config))
    return ArvrResult(runs=runs, scenario_ids=scenario_ids,
                      strategies=strategies)
