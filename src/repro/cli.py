"""Command-line interface: ``scar <experiment>`` / ``python -m repro``.

Regenerates any paper table/figure from the terminal::

    scar table4 --fast          # Table IV on the reduced budget
    scar fig9                   # Fig. 9 / Table VI breakdown
    scar schedule --scenario 4 --template het_sides_3x3
    scar schedule --scenario 4 --fast --format json   # wire document
    scar list                   # available experiments

The ``schedule`` command is a thin shell over :mod:`repro.api`: it builds
one ``ScheduleRequest``, submits it to a ``Session`` and prints either
the human-readable breakdown or (``--format json``) the result's JSON
wire document; ``--output`` writes that same document to a file.

``--fast`` uses the CI budget (seconds-to-minutes); the default budget
matches the paper's settings and can take several minutes per experiment.
``--jobs N`` fans the window search over N worker processes (bit-identical
results); ``--perf-stats`` prints evaluation-throughput and cache-hit
statistics after the run (see DESIGN.md, "Evaluation acceleration").
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    ExperimentConfig,
    aggregate_perf,
    drain_perf_reports,
    run_arvr,
    run_breakdown,
    run_datacenter,
    run_fig2,
    run_fig8,
    run_fig11,
    run_fig12,
    run_fig13,
    run_nsplits_ablation,
    run_packing_ablation,
    run_prov_ablation,
)

_EXPERIMENTS: dict[str, tuple[str, Callable[[ExperimentConfig], str]]] = {
    "fig2": ("Fig. 2 motivational 2x2 study",
             lambda cfg: run_fig2(cfg.budget).render()),
    "table4": ("Table IV datacenter latency/EDP search",
               lambda cfg: run_datacenter(cfg).render_table4()),
    "fig7": ("Fig. 7 normalized search grid",
             lambda cfg: run_datacenter(cfg).render_fig7()),
    "fig8": ("Fig. 8 datacenter Pareto fronts",
             lambda cfg: run_fig8(cfg).render()),
    "fig9": ("Fig. 9 / Table VI Het-Sides schedule breakdown",
             lambda cfg: run_breakdown(config=cfg).render()),
    "table5": ("Table V / Fig. 10 AR-VR EDP search",
               lambda cfg: run_arvr(cfg).render()),
    "fig11": ("Fig. 11 AR/VR Pareto fronts",
              lambda cfg: run_fig11(cfg).render()),
    "fig12": ("Fig. 12 triangular-NoP ablation",
              lambda cfg: run_fig12(cfg).render()),
    "fig13": ("Fig. 13 6x6 evolutionary scaling",
              lambda cfg: run_fig13(cfg).render()),
    "abl-nsplits": ("Time-partitioning ablation",
                    lambda cfg: run_nsplits_ablation(cfg).render()),
    "abl-prov": ("Rule-based vs exhaustive PROV ablation",
                 lambda cfg: run_prov_ablation(cfg).render()),
    "abl-packing": ("Greedy vs uniform packing ablation",
                    lambda cfg: run_packing_ablation(cfg).render()),
}


def _cmd_list() -> int:
    for name, (description, _) in _EXPERIMENTS.items():
        print(f"{name:12s} {description}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.api import ScheduleRequest, Session
    from repro.mcm import templates

    config = ExperimentConfig.fast() if args.fast else ExperimentConfig()
    request = ScheduleRequest(
        scenario_id=args.scenario, template=args.template,
        policy=args.policy, objective=args.objective,
        nsplits=config.nsplits, budget=config.budget, jobs=args.jobs)
    result = Session().submit(request)
    if args.output:
        from repro.config import save_json
        save_json(result.to_dict(), args.output)
    if args.format == "json":
        print(result.to_json())
    else:
        sc = request.resolve_scenario()
        print(templates.build(args.template, sc.use_case).summary())
        print(sc.summary())
        print(result.schedule.describe(sc))
        print(result.metrics.summary())
        if args.perf_stats and result.perf is not None:
            print()
            print(result.perf.render())
        if args.output:
            print(f"schedule written to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scar",
        description="SCAR reproduction: regenerate paper experiments.")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")

    from repro.api import DEFAULT_REGISTRY

    sched = sub.add_parser("schedule",
                           help="schedule one scenario on one template")
    sched.add_argument("--scenario", type=int, default=4,
                       help="Table III scenario id (1-10)")
    sched.add_argument("--template", default="het_sides_3x3",
                       help="MCM template name")
    sched.add_argument("--policy", default="scar",
                       choices=DEFAULT_REGISTRY.names(),
                       help="scheduler policy (default: scar)")
    sched.add_argument("--objective", default="edp",
                       choices=("latency", "energy", "edp"))
    sched.add_argument("--format", default="text",
                       choices=("text", "json"),
                       help="output format: human-readable text or the "
                       "repro.api JSON wire document")
    sched.add_argument("--output", default=None,
                       help="write the schedule-result JSON document here")
    _add_common_options(sched)

    for name, (description, _) in _EXPERIMENTS.items():
        exp = sub.add_parser(name, help=description)
        _add_common_options(exp)
    return parser


def _positive_int(value: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value!r}") from None
    if parsed < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer >= 1, got {value!r}")
    return parsed


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fast", action="store_true",
                        help="use the reduced search budget")
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        metavar="N",
                        help="worker processes for the window search "
                        "(results are bit-identical to serial)")
    parser.add_argument("--perf-stats", action="store_true",
                        help="print evaluation throughput and cache-hit "
                        "statistics after the run")


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None or args.command == "list":
        return _cmd_list()
    if args.command == "schedule":
        return _cmd_schedule(args)
    config = ExperimentConfig.fast(jobs=args.jobs) if args.fast \
        else ExperimentConfig(jobs=args.jobs)
    drain_perf_reports()  # start the perf log fresh for this command
    _, runner = _EXPERIMENTS[args.command]
    print(runner(config))
    if args.perf_stats:
        reports = drain_perf_reports()
        if reports:
            print()
            print(aggregate_perf(reports, jobs=args.jobs).render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
