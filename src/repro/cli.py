"""Command-line interface: ``scar <experiment>`` / ``python -m repro``.

Regenerates any paper table/figure from the terminal::

    scar table4 --fast          # Table IV on the reduced budget
    scar fig9                   # Fig. 9 / Table VI breakdown
    scar schedule --scenario 4 --template het_sides_3x3
    scar schedule --scenario 4 --fast --format json   # wire document
    scar schedule --scenario-file mix.json --fast     # generated workload
    scar generate --kind random-mix --seed 7 --count 4 --output-dir work/
    scar sweep --scenarios 1,2 --policies scar,standalone \
        --store campaign.jsonl --workers 4 --fast     # resumable campaign
    scar sweep --scenarios 1,2 --store campaign.jsonl --status
    scar simulate --family uunifast --seed 7 --fast   # dynamic tenants
    scar serve --port 8787 --workers 2                # HTTP job service
    scar lint src/              # project-invariant static checkers
    scar list                   # available experiments

The ``schedule`` command is a thin shell over :mod:`repro.api`: it builds
one ``ScheduleRequest``, submits it to a ``Session`` and prints either
the human-readable breakdown or (``--format json``) the result's JSON
wire document; ``--output`` writes that same document to a file.
``--scenario-file`` schedules a scenario description file (e.g. one
written by ``scar generate``) as an inline-spec request.  Failures on
the JSON path print a structured error document (``kind: "error"``)
instead of a traceback.  The ``generate`` and ``sweep`` commands drive
:mod:`repro.workloads.generator` and :mod:`repro.sweep` (seeded
scenario families; resumable grid campaigns -- see DESIGN.md "Scenario
generation and sweeps"); ``sweep --status`` reports a campaign's
finished/pending cells against its store without running anything.
The ``simulate`` command replays a dynamic tenant arrival/departure
trace through :mod:`repro.sim` -- re-scheduling the active tenant set
at every event and reporting deadline misses, SLA slack and schedule
churn (see DESIGN.md "The simulation layer").  The ``serve`` command
runs the
:mod:`repro.service` HTTP front-end (``POST /v1/jobs`` and friends, see
DESIGN.md "The repro.service layer") until interrupted.

``--fast`` uses the CI budget (seconds-to-minutes); the default budget
matches the paper's settings and can take several minutes per experiment.
``--jobs N`` fans the window search over N worker processes (bit-identical
results); ``--backend`` picks the engine execution backend explicitly and
``--beam K`` narrows the window search to the K best segmentation combos
(default: exhaustive, the paper's exact behaviour -- see DESIGN.md, "The
search engine layer").  ``--perf-stats`` prints evaluation-throughput,
delta-evaluation and cache-hit statistics after the run.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import Callable

from repro.experiments import (
    ExperimentConfig,
    aggregate_perf,
    drain_perf_reports,
    run_arvr,
    run_breakdown,
    run_datacenter,
    run_fig2,
    run_fig8,
    run_fig11,
    run_fig12,
    run_fig13,
    run_nsplits_ablation,
    run_packing_ablation,
    run_prov_ablation,
)

_EXPERIMENTS: dict[str, tuple[str, Callable[[ExperimentConfig], str]]] = {
    "fig2": ("Fig. 2 motivational 2x2 study",
             lambda cfg: run_fig2(cfg.budget).render()),
    "table4": ("Table IV datacenter latency/EDP search",
               lambda cfg: run_datacenter(cfg).render_table4()),
    "fig7": ("Fig. 7 normalized search grid",
             lambda cfg: run_datacenter(cfg).render_fig7()),
    "fig8": ("Fig. 8 datacenter Pareto fronts",
             lambda cfg: run_fig8(cfg).render()),
    "fig9": ("Fig. 9 / Table VI Het-Sides schedule breakdown",
             lambda cfg: run_breakdown(config=cfg).render()),
    "table5": ("Table V / Fig. 10 AR-VR EDP search",
               lambda cfg: run_arvr(cfg).render()),
    "fig11": ("Fig. 11 AR/VR Pareto fronts",
              lambda cfg: run_fig11(cfg).render()),
    "fig12": ("Fig. 12 triangular-NoP ablation",
              lambda cfg: run_fig12(cfg).render()),
    "fig13": ("Fig. 13 6x6 evolutionary scaling",
              lambda cfg: run_fig13(cfg).render()),
    "abl-nsplits": ("Time-partitioning ablation",
                    lambda cfg: run_nsplits_ablation(cfg).render()),
    "abl-prov": ("Rule-based vs exhaustive PROV ablation",
                 lambda cfg: run_prov_ablation(cfg).render()),
    "abl-packing": ("Greedy vs uniform packing ablation",
                    lambda cfg: run_packing_ablation(cfg).render()),
}


def _cmd_list() -> int:
    for name, (description, _) in _EXPERIMENTS.items():
        print(f"{name:12s} {description}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.api import ScheduleRequest, Session
    from repro.config import load_json, scenario_from_dict
    from repro.errors import ConfigError, ReproError
    from repro.mcm import templates

    config = ExperimentConfig.fast() if args.fast else ExperimentConfig()
    try:
        if args.scenario is not None and args.scenario_file:
            raise ConfigError(
                "use exactly one of --scenario and --scenario-file")
        if args.scenario_file:
            # Validate the document up front so malformed files surface
            # as config errors (an ErrorDocument under --format json),
            # then submit the normalized inline spec.
            workload = scenario_from_dict(load_json(args.scenario_file))
        else:
            workload = args.scenario if args.scenario is not None else 4
        request = ScheduleRequest.for_scenario(
            workload, template=args.template,
            policy=args.policy, objective=args.objective,
            nsplits=config.nsplits, budget=config.budget, jobs=args.jobs,
            backend=args.backend, beam=args.beam,
            eval_mode=args.eval_mode)
        result = Session().submit(request)
    except ReproError as exc:
        return _report_error(exc, args.format)
    if args.output:
        from repro.config import save_json

        try:
            save_json(result.to_dict(), args.output)
        except OSError as exc:
            return _report_error(exc, args.format)
    if args.format == "json":
        print(result.to_json())
    else:
        sc = request.resolve_scenario()
        print(templates.build(args.template, sc.use_case).summary())
        print(sc.summary())
        print(result.schedule.describe(sc))
        print(result.metrics.summary())
        if args.perf_stats and result.perf is not None:
            print()
            print(result.perf.render())
        if args.output:
            print(f"schedule written to {args.output}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    import json
    import re
    from pathlib import Path

    from repro.config import save_json, scenario_to_dict
    from repro.errors import ReproError
    from repro.workloads import GeneratorSpec, generate

    try:
        spec = GeneratorSpec(
            kind=args.kind.replace("-", "_"), seed=args.seed,
            count=args.count, use_case=args.use_case,
            tenants=args.tenants, model=args.model,
            models=tuple(args.models) if args.models else None,
            batches=tuple(args.batches) if args.batches else None)
        scenarios = generate(spec)
    except ReproError as exc:
        return _report_error(exc, args.format)
    documents = [scenario_to_dict(sc) for sc in scenarios]
    if not args.output_dir:
        payload = documents[0] if len(documents) == 1 else documents
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    out_dir = Path(args.output_dir)
    paths = []
    try:
        out_dir.mkdir(parents=True, exist_ok=True)
        for scenario, document in zip(scenarios, documents):
            name = re.sub(r"[^A-Za-z0-9._-]+", "-", scenario.name)
            path = out_dir / f"{name}.json"
            save_json(document, path)
            paths.append(path)
    except OSError as exc:
        return _report_error(exc, args.format)
    if args.format == "json":
        print(json.dumps({"kind": "generated_scenarios",
                          "files": [str(p) for p in paths]},
                         indent=2, sort_keys=True))
    else:
        for scenario, path in zip(scenarios, paths):
            print(f"{path}: {scenario.name} "
                  f"({', '.join(scenario.model_names)})")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from repro.api import scenario_spec
    from repro.config import load_json, scenario_from_dict
    from repro.errors import ConfigError, ReproError
    from repro.sweep import (
        ResultStore,
        SweepSpec,
        run_sweep,
        sweep_report,
        sweep_status,
    )

    try:
        if args.spec:
            # The spec document carries the whole grid; reject every
            # flag it replaces rather than silently ignoring it.
            overridden = [flag for flag, value in (
                ("--scenarios", args.scenarios),
                ("--scenario-file", args.scenario_file),
                ("--templates", args.templates),
                ("--policies", args.policies),
                ("--objectives", args.objectives),
                ("--nsplits", args.nsplits),
                ("--backends", args.backends),
                ("--beams", args.beams),
                ("--eval-modes", args.eval_modes),
                ("--fast", args.fast or None),
                ("--jobs", args.jobs if args.jobs != 1 else None),
            ) if value]
            if overridden:
                raise ConfigError(
                    "--spec replaces the grid flags; drop "
                    + ", ".join(overridden))
            spec = SweepSpec.from_dict(load_json(args.spec))
        else:
            scenarios: list = list(args.scenarios or [])
            for path in args.scenario_file or []:
                # Normalize through the scenario IR so the cell's
                # cache key (store/memo identity) depends on the
                # workload, not on the file's formatting or omitted
                # optional keys.
                scenarios.append(
                    scenario_spec(scenario_from_dict(load_json(path))))
            if not scenarios:
                raise ConfigError(
                    "sweep needs --spec, --scenarios or --scenario-file")
            config = ExperimentConfig.fast() if args.fast \
                else ExperimentConfig()
            spec = SweepSpec(
                scenarios=tuple(scenarios),
                templates=tuple(args.templates or ["het_sides_3x3"]),
                policies=tuple(args.policies or ["scar"]),
                objectives=tuple(args.objectives or ["edp"]),
                nsplits=tuple(args.nsplits) if args.nsplits
                else (config.nsplits,),
                backends=tuple(args.backends) if args.backends
                else (None,),
                beams=tuple(args.beams) if args.beams else (None,),
                eval_modes=tuple(args.eval_modes) if args.eval_modes
                else (None,),
                budget=config.budget, jobs=args.jobs)
        store = ResultStore(args.store) if args.store else None
        if args.status:
            # Read-only progress view: expand the grid, check each
            # cell against the store, run nothing.
            status = sweep_status(spec, store)
            if args.format == "json":
                print(json.dumps(status.to_document(), indent=2,
                                 sort_keys=True))
            else:
                print(status.render())
            return 0
        outcome = run_sweep(spec, store=store, workers=args.workers)
    except ReproError as exc:
        return _report_error(exc, args.format)
    report = sweep_report(outcome)
    if args.format == "json":
        print(json.dumps(report.to_document(), indent=2, sort_keys=True))
    else:
        print(report.render())
        if args.perf_stats and outcome.perf is not None:
            print()
            print(outcome.perf.render())
    return 1 if outcome.failures else 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import json

    from repro.config import load_json
    from repro.errors import ConfigError, ReproError
    from repro.sim import (
        Trace,
        TraceSpec,
        build_report,
        generate_trace,
        replay,
    )

    config = ExperimentConfig.fast() if args.fast else ExperimentConfig()
    try:
        if args.trace and args.spec:
            raise ConfigError(
                "use at most one of --trace and --spec")
        if args.trace:
            trace = Trace.from_dict(load_json(args.trace))
        elif args.spec:
            trace = generate_trace(TraceSpec.from_dict(
                load_json(args.spec)))
        else:
            trace = generate_trace(TraceSpec(
                family=args.family, seed=args.seed,
                tenants=args.tenants, horizon=args.horizon,
                use_case=args.use_case,
                utilization=args.utilization))
        client = None
        if args.service:
            from repro.service import ServiceClient

            client = ServiceClient(args.service)
        outcomes = replay(
            trace, mode=args.mode, template=args.template,
            policy=args.policy, objective=args.objective,
            nsplits=config.nsplits, budget=config.budget,
            backend=args.backend, beam=args.beam,
            eval_mode=args.eval_mode, jobs=args.jobs,
            client=client)
        report = build_report(trace, args.mode, outcomes)
    except ReproError as exc:
        return _report_error(exc, args.format)
    if args.output:
        from repro.config import save_json

        try:
            save_json(report.to_dict(), args.output)
        except OSError as exc:
            return _report_error(exc, args.format)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render())
        if args.output:
            print(f"sim report written to {args.output}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import lint_paths
    from repro.errors import ReproError

    paths = args.paths
    if not paths:
        # Bare `scar lint` at the repo root lints the library tree.
        paths = ["src"] if Path("src").is_dir() else ["."]
    try:
        report = lint_paths(paths, select=args.select,
                            ignore=args.ignore, jobs=args.jobs,
                            cache_path=args.cache,
                            update_schemas=args.update_schemas)
    except ReproError as exc:
        # Usage/config failures (unknown code, unreadable file) exit 2
        # so CI can tell "findings" (1) from "lint could not run".
        _report_error(exc, args.format)
        return 2
    if args.output:
        from repro.config import save_json

        try:
            save_json(report.to_dict(), args.output)
        except OSError as exc:
            # Same contract as `scar schedule --output`: report the
            # write failure as an error document, never a traceback.
            return _report_error(exc, args.format)
    if args.format == "json":
        print(report.to_json())
    elif args.format == "github":
        # GitHub Actions workflow-command annotations: one ::error
        # line per finding, pinned to file/line/col in the PR diff.
        for finding in report.findings:
            print(f"::error file={finding.path},line={finding.line},"
                  f"col={finding.col},title={finding.code}::"
                  f"{finding.message}")
        print(report.summary_line())
    else:
        print(report.render())
        if args.output:
            print(f"lint report written to {args.output}")
    if args.stats:
        for line in report.stats_lines():
            print(line)
    return 0 if report.clean else 1


def _report_error(exc: Exception, output_format: str) -> int:
    """Print a failure without a traceback; JSON gets the error document."""
    from repro.api import ErrorDocument

    if output_format == "json":
        print(ErrorDocument.from_exception(exc).to_json())
    else:
        print(f"error: {exc}", file=sys.stderr)
    return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api import Session
    from repro.service import SchedulerService, ServiceServer
    from repro.sweep import ResultStore

    store = ResultStore(args.store) if args.store is not None else None
    service = SchedulerService(Session(max_memo=args.max_memo,
                                       backend=args.backend,
                                       eval_mode=args.eval_mode),
                               workers=args.workers,
                               retain=args.retain,
                               job_backend=args.job_backend,
                               max_pending=args.max_pending,
                               store=store)
    try:
        server = ServiceServer((args.host, args.port), service)
    except (OSError, OverflowError) as exc:  # Overflow: port > 65535
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        service.close()
        return 1
    extras = "" if store is None else f", store {args.store}"
    print(f"repro scheduling service on {server.url}/v1/jobs "
          f"({args.workers} {args.job_backend} "
          f"worker{'s' if args.workers != 1 else ''}{extras}); "
          f"Ctrl-C to stop")
    # SIGTERM (systemd/docker stop) takes the same graceful path as
    # Ctrl-C: without it, process-backed pool workers forked after the
    # bind outlive the parent and keep the listening socket open, so
    # the next replica on this port binds EADDRINUSE or hangs clients.
    def _terminate(_signum, _frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
        # Prompt shutdown: Ctrl-C under a deep backlog cancels the
        # queued jobs instead of draining them for hours.
        service.close(cancel_pending=True)
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="scar",
        description="SCAR reproduction: regenerate paper experiments.")
    parser.add_argument("--version", action="version",
                        version=f"scar {__version__}")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")

    from repro.api import DEFAULT_REGISTRY

    sched = sub.add_parser("schedule",
                           help="schedule one scenario on one template")
    sched.add_argument("--scenario", type=int, default=None,
                       help="Table III scenario id (1-10; default: 4)")
    sched.add_argument("--scenario-file", default=None, metavar="JSON",
                       help="schedule a scenario description file instead "
                       "of a Table III id (e.g. one written by "
                       "'scar generate')")
    sched.add_argument("--template", default="het_sides_3x3",
                       help="MCM template name")
    sched.add_argument("--policy", default="scar",
                       choices=DEFAULT_REGISTRY.names(),
                       help="scheduler policy (default: scar)")
    sched.add_argument("--objective", default="edp",
                       choices=("latency", "energy", "edp"))
    sched.add_argument("--format", default="text",
                       choices=("text", "json"),
                       help="output format: human-readable text or the "
                       "repro.api JSON wire document")
    sched.add_argument("--output", default=None,
                       help="write the schedule-result JSON document here")
    _add_engine_options(sched)
    _add_common_options(sched)

    generate = sub.add_parser(
        "generate",
        help="generate seeded scenario description files")
    generate.add_argument("--kind", default="random-mix",
                          choices=("random-mix", "replicated"),
                          help="scenario family (default: random-mix)")
    generate.add_argument("--seed", type=int, default=0,
                          help="generator seed (same seed = identical "
                          "scenarios)")
    generate.add_argument("--count", type=_positive_int, default=1,
                          metavar="N",
                          help="scenarios to generate (default: 1)")
    generate.add_argument("--tenants", type=_positive_int, default=3,
                          metavar="N",
                          help="tenants per scenario (default: 3)")
    generate.add_argument("--use-case", default="datacenter",
                          choices=("datacenter", "arvr"),
                          help="constrains the model/batch pools to the "
                          "Table III families (default: datacenter)")
    generate.add_argument("--model", default=None,
                          help="replicated: the zoo model to replicate")
    generate.add_argument("--models", type=_csv_strs, default=None,
                          metavar="A,B,...",
                          help="random-mix: override the model pool")
    generate.add_argument("--batches", type=_csv_ints, default=None,
                          metavar="N,M,...",
                          help="override the batch pool (replicated: one "
                          "tenant per batch)")
    generate.add_argument("--output-dir", default=None, metavar="DIR",
                          help="write one <scenario>.json per scenario "
                          "(default: print the documents to stdout)")
    generate.add_argument("--format", default="text",
                          choices=("text", "json"),
                          help="summary format with --output-dir")

    sweep = sub.add_parser(
        "sweep",
        help="run a scheduling campaign over a scenario/policy grid")
    sweep.add_argument("--spec", default=None, metavar="JSON",
                       help="load a sweep_spec document instead of the "
                       "grid flags below")
    sweep.add_argument("--scenarios", type=_csv_ints, default=None,
                       metavar="1,2,...",
                       help="Table III scenario ids to sweep")
    sweep.add_argument("--scenario-file", action="append", default=None,
                       metavar="JSON",
                       help="add a scenario description file to the grid "
                       "(repeatable)")
    sweep.add_argument("--templates", type=_csv_strs, default=None,
                       metavar="A,B,...",
                       help="MCM templates (default: het_sides_3x3)")
    sweep.add_argument("--policies", type=_csv_strs, default=None,
                       metavar="A,B,...",
                       help="scheduler policies (default: scar)")
    sweep.add_argument("--objectives", type=_csv_strs, default=None,
                       metavar="A,B,...",
                       help="search objectives (default: edp)")
    sweep.add_argument("--nsplits", type=_csv_ints, default=None,
                       metavar="N,M,...",
                       help="time-partitioning depths (default: from "
                       "--fast/full config)")
    sweep.add_argument("--backends", type=_csv_strs, default=None,
                       metavar="A,B,...",
                       help="engine execution backends (default: the "
                       "session default)")
    sweep.add_argument("--eval-modes", type=_csv_strs, default=None,
                       metavar="MODES",
                       help="comma-separated candidate-costing kernels "
                       "to sweep (scalar, vector; default scalar)")
    sweep.add_argument("--beams", type=_csv_ints, default=None,
                       metavar="K,L,...",
                       help="window-search beam widths (default: "
                       "exhaustive)")
    sweep.add_argument("--store", default=None, metavar="JSONL",
                       help="resumable result store; finished cells are "
                       "skipped on rerun")
    sweep.add_argument("--status", action="store_true",
                       help="report campaign progress (finished/pending "
                       "cells against --store) without running anything")
    sweep.add_argument("--workers", type=_positive_int, default=1,
                       metavar="N",
                       help="service worker threads (default: 1; results "
                       "are bit-identical across worker counts)")
    sweep.add_argument("--format", default="text",
                       choices=("text", "json"),
                       help="report format (json: the sweep_report "
                       "document)")
    _add_common_options(sweep)

    simulate = sub.add_parser(
        "simulate",
        help="replay a dynamic tenant arrival/departure trace")
    simulate.add_argument("--trace", default=None, metavar="JSON",
                          help="replay a trace document "
                          "(kind: \"trace\")")
    simulate.add_argument("--spec", default=None, metavar="JSON",
                          help="generate the trace from a trace_spec "
                          "document instead")
    simulate.add_argument("--family", default="arrivals",
                          choices=("arrivals", "uunifast"),
                          help="without --trace/--spec: the seeded trace "
                          "family (default: arrivals)")
    simulate.add_argument("--seed", type=int, default=0,
                          help="trace seed (same seed = identical trace)")
    simulate.add_argument("--tenants", type=_positive_int, default=4,
                          metavar="N",
                          help="tenant lifecycles to generate "
                          "(default: 4)")
    simulate.add_argument("--horizon", type=_positive_int, default=16,
                          metavar="T",
                          help="trace length in ticks (default: 16)")
    simulate.add_argument("--use-case", default="datacenter",
                          choices=("datacenter", "arvr"),
                          help="constrains the model/batch pools "
                          "(default: datacenter)")
    simulate.add_argument("--utilization", type=float, default=0.5,
                          metavar="U",
                          help="uunifast: total utilization budget in "
                          "(0, 1] (default: 0.5)")
    simulate.add_argument("--template", default="het_sides_3x3",
                          help="MCM template name")
    simulate.add_argument("--policy", default="scar",
                          choices=DEFAULT_REGISTRY.names(),
                          help="scheduler policy (default: scar)")
    simulate.add_argument("--objective", default="edp",
                          choices=("latency", "energy", "edp"))
    simulate.add_argument("--mode", default="warm",
                          choices=("warm", "cold"),
                          help="warm: one session re-used across events "
                          "(memo + evaluator caches); cold: from "
                          "scratch per event.  Results are bit-"
                          "identical either way (default: warm)")
    simulate.add_argument("--service", default=None, metavar="URL",
                          help="submit each event's request to a live "
                          "'scar serve' replica instead of scheduling "
                          "in-process")
    simulate.add_argument("--format", default="text",
                          choices=("text", "json"),
                          help="output format: human-readable text or "
                          "the sim_report JSON wire document")
    simulate.add_argument("--output", default=None,
                          help="write the sim_report JSON document here")
    _add_engine_options(simulate)
    _add_common_options(simulate)

    lint = sub.add_parser(
        "lint",
        help="run the project-invariant static checkers (SCAR001..)")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files/directories to lint (default: src/ "
                      "when it exists, else the working directory)")
    lint.add_argument("--select", type=_csv_strs, default=None,
                      metavar="CODES",
                      help="run only these checker codes "
                      "(e.g. SCAR001,SCAR004)")
    lint.add_argument("--ignore", type=_csv_strs, default=None,
                      metavar="CODES",
                      help="skip these checker codes")
    lint.add_argument("--format", default="text",
                      choices=("text", "json", "github"),
                      help="output format: one finding per line, the "
                      "lint_report JSON wire document, or GitHub "
                      "Actions ::error annotations")
    lint.add_argument("--jobs", type=_positive_int, default=1,
                      metavar="N",
                      help="per-file analysis worker processes "
                      "(default: 1)")
    lint.add_argument("--cache", default=None, metavar="PATH",
                      help="incremental per-file result cache (JSONL, "
                      "append-only); warm runs re-analyze only "
                      "changed files plus their import-graph "
                      "dependents")
    lint.add_argument("--output", default=None,
                      help="write the lint_report JSON document here")
    lint.add_argument("--stats", action="store_true",
                      help="print per-checker wall time and the "
                      "cache hit rate after the report")
    lint.add_argument("--update-schemas", action="store_true",
                      help="regenerate the SCAR008 golden "
                      "analysis/schemas.json from the current tree "
                      "before checking (wire changes must land with "
                      "this golden update)")

    serve = sub.add_parser("serve",
                           help="run the HTTP job-scheduling service")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787,
                       help="bind port (default: 8787; 0 = ephemeral)")
    serve.add_argument("--workers", type=_positive_int, default=2,
                       metavar="N",
                       help="job worker threads (default: 2)")
    serve.add_argument("--max-memo", type=_nonnegative_int, default=None,
                       metavar="N",
                       help="LRU cap on the session result memo "
                       "(default: unbounded; 0 disables it)")
    serve.add_argument("--retain", type=_positive_int, default=None,
                       metavar="N",
                       help="keep only the N most recent finished job "
                       "records/results; size comfortably above the "
                       "number of jobs in flight (default: unbounded)")
    serve.add_argument("--backend", default=None,
                       choices=_backend_choices(),
                       help="engine execution backend for requests that "
                       "do not pick one (default: infer from each "
                       "request's --jobs; results are bit-identical "
                       "across backends)")
    serve.add_argument("--eval-mode", default=None,
                       choices=("scalar", "vector"),
                       help="candidate-costing kernel for requests that "
                       "do not pick one (default scalar; vector needs "
                       "numpy, results are bit-identical)")
    serve.add_argument("--job-backend", default="process",
                       choices=("thread", "process"),
                       help="run each job's search on a process pool "
                       "(default; escapes the GIL so concurrent jobs "
                       "overlap) or in the worker thread itself")
    serve.add_argument("--max-pending", type=_positive_int, default=None,
                       metavar="N",
                       help="admission control: reject submits past N "
                       "queued jobs with HTTP 429 service_overloaded "
                       "(default: unbounded)")
    serve.add_argument("--store", default=None, metavar="PATH",
                       help="shared JSONL schedule cache (the sweep "
                       "ResultStore): results are served from / "
                       "recorded to it, so replicas sharing one PATH "
                       "share finished schedules (default: none)")

    for name, (description, _) in _EXPERIMENTS.items():
        exp = sub.add_parser(name, help=description)
        _add_common_options(exp)
    return parser


def _int_at_least(minimum: int, what: str):
    """An argparse type validating an integer ``>= minimum``."""

    def parse(value: str) -> int:
        try:
            parsed = int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected {what}, got {value!r}") from None
        if parsed < minimum:
            raise argparse.ArgumentTypeError(
                f"expected {what} >= {minimum}, got {value!r}")
        return parsed

    return parse


_positive_int = _int_at_least(1, "a positive integer")
_nonnegative_int = _int_at_least(0, "an integer")


def _csv_ints(value: str) -> list[int]:
    """An argparse type for comma-separated integer lists."""
    try:
        return [int(item) for item in value.split(",") if item.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {value!r}") from None


def _csv_strs(value: str) -> list[str]:
    """An argparse type for comma-separated name lists."""
    return [item.strip() for item in value.split(",") if item.strip()]


def _backend_choices() -> tuple[str, ...]:
    from repro.engine import backend_names

    return backend_names()


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """Search-engine knobs (the ``schedule`` command only)."""
    parser.add_argument("--backend", default=None,
                        choices=_backend_choices(),
                        help="engine execution backend (default: infer "
                        "from --jobs; results are bit-identical across "
                        "backends)")
    parser.add_argument("--beam", type=_positive_int, default=None,
                        metavar="K",
                        help="beam width for the window search: keep "
                        "only the K best proxy-scored segmentation "
                        "combos (default: exhaustive search, the "
                        "paper's exact behaviour)")
    parser.add_argument("--eval-mode", default=None,
                        choices=("scalar", "vector"),
                        help="candidate-costing kernel: the pure-Python "
                        "scalar reference (default) or the numpy tensor "
                        "kernel (bit-identical results, requires numpy)")


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fast", action="store_true",
                        help="use the reduced search budget")
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        metavar="N",
                        help="worker processes for the window search "
                        "(results are bit-identical to serial)")
    parser.add_argument("--perf-stats", action="store_true",
                        help="print evaluation throughput and cache-hit "
                        "statistics after the run")


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None or args.command == "list":
        return _cmd_list()
    if args.command == "schedule":
        return _cmd_schedule(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "serve":
        return _cmd_serve(args)
    config = ExperimentConfig.fast(jobs=args.jobs) if args.fast \
        else ExperimentConfig(jobs=args.jobs)
    drain_perf_reports()  # start the perf log fresh for this command
    _, runner = _EXPERIMENTS[args.command]
    print(runner(config))
    if args.perf_stats:
        reports = drain_perf_reports()
        if reports:
            print()
            print(aggregate_perf(reports, jobs=args.jobs).render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
