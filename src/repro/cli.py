"""Command-line interface: ``scar <experiment>`` / ``python -m repro``.

Regenerates any paper table/figure from the terminal::

    scar table4 --fast          # Table IV on the reduced budget
    scar fig9                   # Fig. 9 / Table VI breakdown
    scar schedule --scenario 4 --template het_sides_3x3
    scar schedule --scenario 4 --fast --format json   # wire document
    scar serve --port 8787 --workers 2                # HTTP job service
    scar list                   # available experiments

The ``schedule`` command is a thin shell over :mod:`repro.api`: it builds
one ``ScheduleRequest``, submits it to a ``Session`` and prints either
the human-readable breakdown or (``--format json``) the result's JSON
wire document; ``--output`` writes that same document to a file.
Failures on the JSON path print a structured error document (``kind:
"error"``) instead of a traceback.  The ``serve`` command runs the
:mod:`repro.service` HTTP front-end (``POST /v1/jobs`` and friends, see
DESIGN.md "The repro.service layer") until interrupted.

``--fast`` uses the CI budget (seconds-to-minutes); the default budget
matches the paper's settings and can take several minutes per experiment.
``--jobs N`` fans the window search over N worker processes (bit-identical
results); ``--backend`` picks the engine execution backend explicitly and
``--beam K`` narrows the window search to the K best segmentation combos
(default: exhaustive, the paper's exact behaviour -- see DESIGN.md, "The
search engine layer").  ``--perf-stats`` prints evaluation-throughput,
delta-evaluation and cache-hit statistics after the run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    ExperimentConfig,
    aggregate_perf,
    drain_perf_reports,
    run_arvr,
    run_breakdown,
    run_datacenter,
    run_fig2,
    run_fig8,
    run_fig11,
    run_fig12,
    run_fig13,
    run_nsplits_ablation,
    run_packing_ablation,
    run_prov_ablation,
)

_EXPERIMENTS: dict[str, tuple[str, Callable[[ExperimentConfig], str]]] = {
    "fig2": ("Fig. 2 motivational 2x2 study",
             lambda cfg: run_fig2(cfg.budget).render()),
    "table4": ("Table IV datacenter latency/EDP search",
               lambda cfg: run_datacenter(cfg).render_table4()),
    "fig7": ("Fig. 7 normalized search grid",
             lambda cfg: run_datacenter(cfg).render_fig7()),
    "fig8": ("Fig. 8 datacenter Pareto fronts",
             lambda cfg: run_fig8(cfg).render()),
    "fig9": ("Fig. 9 / Table VI Het-Sides schedule breakdown",
             lambda cfg: run_breakdown(config=cfg).render()),
    "table5": ("Table V / Fig. 10 AR-VR EDP search",
               lambda cfg: run_arvr(cfg).render()),
    "fig11": ("Fig. 11 AR/VR Pareto fronts",
              lambda cfg: run_fig11(cfg).render()),
    "fig12": ("Fig. 12 triangular-NoP ablation",
              lambda cfg: run_fig12(cfg).render()),
    "fig13": ("Fig. 13 6x6 evolutionary scaling",
              lambda cfg: run_fig13(cfg).render()),
    "abl-nsplits": ("Time-partitioning ablation",
                    lambda cfg: run_nsplits_ablation(cfg).render()),
    "abl-prov": ("Rule-based vs exhaustive PROV ablation",
                 lambda cfg: run_prov_ablation(cfg).render()),
    "abl-packing": ("Greedy vs uniform packing ablation",
                    lambda cfg: run_packing_ablation(cfg).render()),
}


def _cmd_list() -> int:
    for name, (description, _) in _EXPERIMENTS.items():
        print(f"{name:12s} {description}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.api import ScheduleRequest, Session
    from repro.errors import ReproError
    from repro.mcm import templates

    config = ExperimentConfig.fast() if args.fast else ExperimentConfig()
    try:
        request = ScheduleRequest(
            scenario_id=args.scenario, template=args.template,
            policy=args.policy, objective=args.objective,
            nsplits=config.nsplits, budget=config.budget, jobs=args.jobs,
            backend=args.backend, beam=args.beam)
        result = Session().submit(request)
    except ReproError as exc:
        return _report_error(exc, args.format)
    if args.output:
        from repro.config import save_json

        try:
            save_json(result.to_dict(), args.output)
        except OSError as exc:
            return _report_error(exc, args.format)
    if args.format == "json":
        print(result.to_json())
    else:
        sc = request.resolve_scenario()
        print(templates.build(args.template, sc.use_case).summary())
        print(sc.summary())
        print(result.schedule.describe(sc))
        print(result.metrics.summary())
        if args.perf_stats and result.perf is not None:
            print()
            print(result.perf.render())
        if args.output:
            print(f"schedule written to {args.output}")
    return 0


def _report_error(exc: Exception, output_format: str) -> int:
    """Print a failure without a traceback; JSON gets the error document."""
    from repro.api import ErrorDocument

    if output_format == "json":
        print(ErrorDocument.from_exception(exc).to_json())
    else:
        print(f"error: {exc}", file=sys.stderr)
    return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api import Session
    from repro.service import SchedulerService, ServiceServer

    service = SchedulerService(Session(max_memo=args.max_memo,
                                       backend=args.backend),
                               workers=args.workers,
                               retain=args.retain)
    try:
        server = ServiceServer((args.host, args.port), service)
    except (OSError, OverflowError) as exc:  # Overflow: port > 65535
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        service.close()
        return 1
    print(f"repro scheduling service on {server.url}/v1/jobs "
          f"({args.workers} worker{'s' if args.workers != 1 else ''}); "
          f"Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        # Prompt shutdown: Ctrl-C under a deep backlog cancels the
        # queued jobs instead of draining them for hours.
        service.close(cancel_pending=True)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scar",
        description="SCAR reproduction: regenerate paper experiments.")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")

    from repro.api import DEFAULT_REGISTRY

    sched = sub.add_parser("schedule",
                           help="schedule one scenario on one template")
    sched.add_argument("--scenario", type=int, default=4,
                       help="Table III scenario id (1-10)")
    sched.add_argument("--template", default="het_sides_3x3",
                       help="MCM template name")
    sched.add_argument("--policy", default="scar",
                       choices=DEFAULT_REGISTRY.names(),
                       help="scheduler policy (default: scar)")
    sched.add_argument("--objective", default="edp",
                       choices=("latency", "energy", "edp"))
    sched.add_argument("--format", default="text",
                       choices=("text", "json"),
                       help="output format: human-readable text or the "
                       "repro.api JSON wire document")
    sched.add_argument("--output", default=None,
                       help="write the schedule-result JSON document here")
    _add_engine_options(sched)
    _add_common_options(sched)

    serve = sub.add_parser("serve",
                           help="run the HTTP job-scheduling service")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787,
                       help="bind port (default: 8787; 0 = ephemeral)")
    serve.add_argument("--workers", type=_positive_int, default=2,
                       metavar="N",
                       help="job worker threads (default: 2)")
    serve.add_argument("--max-memo", type=_nonnegative_int, default=None,
                       metavar="N",
                       help="LRU cap on the session result memo "
                       "(default: unbounded; 0 disables it)")
    serve.add_argument("--retain", type=_positive_int, default=None,
                       metavar="N",
                       help="keep only the N most recent finished job "
                       "records/results; size comfortably above the "
                       "number of jobs in flight (default: unbounded)")
    serve.add_argument("--backend", default=None,
                       choices=_backend_choices(),
                       help="engine execution backend for requests that "
                       "do not pick one (default: infer from each "
                       "request's --jobs; results are bit-identical "
                       "across backends)")

    for name, (description, _) in _EXPERIMENTS.items():
        exp = sub.add_parser(name, help=description)
        _add_common_options(exp)
    return parser


def _int_at_least(minimum: int, what: str):
    """An argparse type validating an integer ``>= minimum``."""

    def parse(value: str) -> int:
        try:
            parsed = int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected {what}, got {value!r}") from None
        if parsed < minimum:
            raise argparse.ArgumentTypeError(
                f"expected {what} >= {minimum}, got {value!r}")
        return parsed

    return parse


_positive_int = _int_at_least(1, "a positive integer")
_nonnegative_int = _int_at_least(0, "an integer")


def _backend_choices() -> tuple[str, ...]:
    from repro.engine import backend_names

    return backend_names()


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """Search-engine knobs (the ``schedule`` command only)."""
    parser.add_argument("--backend", default=None,
                        choices=_backend_choices(),
                        help="engine execution backend (default: infer "
                        "from --jobs; results are bit-identical across "
                        "backends)")
    parser.add_argument("--beam", type=_positive_int, default=None,
                        metavar="K",
                        help="beam width for the window search: keep "
                        "only the K best proxy-scored segmentation "
                        "combos (default: exhaustive search, the "
                        "paper's exact behaviour)")


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fast", action="store_true",
                        help="use the reduced search budget")
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        metavar="N",
                        help="worker processes for the window search "
                        "(results are bit-identical to serial)")
    parser.add_argument("--perf-stats", action="store_true",
                        help="print evaluation throughput and cache-hit "
                        "statistics after the run")


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None or args.command == "list":
        return _cmd_list()
    if args.command == "schedule":
        return _cmd_schedule(args)
    if args.command == "serve":
        return _cmd_serve(args)
    config = ExperimentConfig.fast(jobs=args.jobs) if args.fast \
        else ExperimentConfig(jobs=args.jobs)
    drain_perf_reports()  # start the perf log fresh for this command
    _, runner = _EXPERIMENTS[args.command]
    print(runner(config))
    if args.perf_stats:
        reports = drain_perf_reports()
        if reports:
            print()
            print(aggregate_perf(reports, jobs=args.jobs).render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
