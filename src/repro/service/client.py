"""Typed HTTP client for the scheduling service.

:class:`ServiceClient` mirrors the :class:`~repro.api.Session` /
:class:`~repro.service.SchedulerService` surface over the wire, so an
experiment written against handles runs unchanged against a local
in-process server (:func:`repro.service.local_service`) or a remote
``scar serve`` instance::

    client = ServiceClient("http://127.0.0.1:8787")
    handle = client.submit(request)
    result = handle.result(timeout=300)     # a ScheduleResult

Error documents coming back over HTTP are re-raised as the typed
:mod:`repro.errors` exception they encode, so remote failures look
exactly like local ones.  The one exception the client absorbs itself
is admission-control pushback: a 429 ``service_overloaded`` rejection
is retried with capped exponential backoff (honouring the server's
``Retry-After``) before surfacing, so bursty callers degrade to
waiting instead of erroring.  Pure stdlib (``urllib.request``).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterable

from repro.api.request import ScheduleRequest, ScheduleResult
from repro.api.wire import ErrorDocument, is_error_document
from repro.errors import ServiceError, ServiceOverloadedError
from repro.service.jobs import JobRecord


class RemoteJob:
    """Handle to one job living in a remote service (same shape as
    :class:`~repro.service.scheduler.JobHandle`)."""

    def __init__(self, client: "ServiceClient", job_id: str) -> None:
        self._client = client
        self.job_id = job_id

    def record(self) -> JobRecord:
        return self._client.job(self.job_id)

    @property
    def state(self) -> str:
        return self.record().state

    def done(self) -> bool:
        return self.record().terminal

    def wait(self, timeout: float | None = None) -> JobRecord:
        return self._client.wait(self.job_id, timeout=timeout)

    def result(self, timeout: float | None = None) -> ScheduleResult:
        return self._client.wait_result(self.job_id, timeout=timeout)

    def cancel(self) -> JobRecord:
        return self._client.cancel(self.job_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteJob({self.job_id!r})"


class ServiceClient:
    """JSON-over-HTTP client speaking the ``/v1/jobs`` endpoints.

    ``overload_retries`` bounds how many times a submit rejected with
    ``service_overloaded`` (HTTP 429) is retried; the delay doubles
    from ``backoff_s`` per attempt, never exceeds ``backoff_cap_s``,
    and never undercuts the server's ``Retry-After``.
    ``overload_retries=0`` surfaces the first rejection directly.
    """

    def __init__(self, base_url: str, *, timeout_s: float = 30.0,
                 poll_s: float = 0.05, overload_retries: int = 6,
                 backoff_s: float = 0.05,
                 backoff_cap_s: float = 2.0) -> None:
        if overload_retries < 0:
            raise ValueError(
                f"overload_retries must be >= 0, got {overload_retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self.overload_retries = overload_retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s

    # -- submission --------------------------------------------------------

    def submit(self, request: ScheduleRequest, *,
               priority: int = 0) -> RemoteJob:
        document = self._post_with_backoff(self._jobs_path(priority),
                                           request.to_dict())
        return RemoteJob(self, JobRecord.from_dict(document).job_id)

    def submit_many(self, requests: Iterable[ScheduleRequest], *,
                    priority: int = 0) -> list[RemoteJob]:
        documents = self._post_with_backoff(
            self._jobs_path(priority),
            [request.to_dict() for request in requests])
        return [RemoteJob(self, JobRecord.from_dict(doc).job_id)
                for doc in documents]

    def _post_with_backoff(self, path: str,
                           payload: dict | list) -> Any:
        """POST, absorbing up to ``overload_retries`` 429 rejections.

        Submission is idempotent to retry here because a rejected
        submit queued nothing (batch admission is all-or-nothing on
        the server).
        """
        attempt = 0
        while True:
            try:
                return self._call("POST", path, payload=payload)
            except ServiceOverloadedError as exc:
                if attempt >= self.overload_retries:
                    raise
                delay = min(self.backoff_s * (2 ** attempt),
                            self.backoff_cap_s)
                retry_after = getattr(exc, "retry_after_s", None)
                if retry_after is not None:
                    delay = max(delay, min(retry_after,
                                           self.backoff_cap_s))
                time.sleep(delay)
                attempt += 1

    # -- observation -------------------------------------------------------

    def job(self, job_id: str) -> JobRecord:
        return JobRecord.from_dict(self._call("GET",
                                              f"/v1/jobs/{job_id}"))

    def jobs(self) -> list[JobRecord]:
        return [JobRecord.from_dict(doc)
                for doc in self._call("GET", "/v1/jobs")]

    def wait(self, job_id: str,
             timeout: float | None = None) -> JobRecord:
        """Poll until the job is terminal; returns the final record."""
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record.terminal:
                return record
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record.state} after "
                    f"{timeout}s")
            time.sleep(self.poll_s)

    def result(self, job_id: str) -> ScheduleResult:
        """The finished job's result; remote failures re-raise typed."""
        return ScheduleResult.from_dict(
            self._call("GET", f"/v1/jobs/{job_id}/result"))

    def wait_result(self, job_id: str,
                    timeout: float | None = None) -> ScheduleResult:
        """Poll the *result* endpoint until the job finishes.

        Unlike wait-then-fetch, the 200 response that reports completion
        *is* the result, so a ``--retain`` cap on the server can never
        evict a result between observing DONE and retrieving it.
        """
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        while True:
            try:
                return self.result(job_id)
            except ServiceError as exc:
                if getattr(exc, "code", None) != "job_not_done":
                    raise
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} not finished after {timeout}s")
            time.sleep(self.poll_s)

    def cancel(self, job_id: str) -> JobRecord:
        return JobRecord.from_dict(self._call("DELETE",
                                              f"/v1/jobs/{job_id}"))

    def health(self) -> dict:
        return self._call("GET", "/v1/health")

    # -- plumbing ----------------------------------------------------------

    @staticmethod
    def _jobs_path(priority: int) -> str:
        return "/v1/jobs" if priority == 0 \
            else f"/v1/jobs?priority={priority}"

    def _call(self, method: str, path: str,
              payload: dict | list | None = None) -> Any:
        data = None if payload is None \
            else json.dumps(payload).encode("utf-8")
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req,
                                        timeout=self.timeout_s) as resp:
                body = resp.read()
        except urllib.error.HTTPError as exc:
            body = exc.read()
            self._raise_from_body(body, exc)
            raise  # unreachable: _raise_from_body always raises
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: "
                f"{exc.reason}") from exc
        return json.loads(body.decode("utf-8"))

    def _raise_from_body(self, body: bytes,
                         exc: urllib.error.HTTPError) -> None:
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            document = None
        if is_error_document(document):
            error = ErrorDocument.from_dict(document).exception()
            retry_after = exc.headers.get("Retry-After") \
                if exc.headers is not None else None
            if retry_after is not None:
                try:
                    error.retry_after_s = float(retry_after)
                except ValueError:
                    pass  # HTTP-date form: ignore, use our own backoff
            raise error from None
        raise ServiceError(
            f"HTTP {exc.code} from {exc.url}: {exc.reason}") from exc
