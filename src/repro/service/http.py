"""Stdlib HTTP front-end speaking the ``repro.api`` wire documents.

Endpoints (all JSON, all under ``/v1``)::

    POST   /v1/jobs[?priority=N]   submit a schedule_request document
                                   (or a JSON array of them: a batch)
                                   -> job document / array of them
    GET    /v1/jobs                -> array of job documents
    GET    /v1/jobs/<id>           -> job document (poll this for state)
    GET    /v1/jobs/<id>/result    -> schedule_result document (DONE),
                                      the job's error document (FAILED,
                                      HTTP 500) or a job_not_done /
                                      job_cancelled error (HTTP 409)
    DELETE /v1/jobs/<id>           -> job document after cancellation
    GET    /v1/health              -> {"status": "ok", ...}

Every failure body is a structured :class:`~repro.api.ErrorDocument` --
no tracebacks cross the wire.  :class:`ServiceServer` is a
``ThreadingHTTPServer`` bound to one :class:`SchedulerService`;
:func:`local_service` runs one in a background thread for tests,
examples and notebooks.
"""

from __future__ import annotations

import contextlib
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.api.request import ScheduleRequest
from repro.api.session import Session
from repro.api.wire import ErrorDocument
from repro.errors import (
    ConfigError,
    JobNotFoundError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.service import jobs as jobstate
from repro.service.scheduler import SchedulerService


class ServiceServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`SchedulerService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 service: SchedulerService) -> None:
        super().__init__(address, _JobsHandler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


#: Hard cap on request bodies (a generous multiple of the largest
#: inline-scenario batch we expect); bigger declarations get a 413.
_MAX_BODY_BYTES = 16 * 1024 * 1024


class _JobsHandler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"
    #: Socket timeout: a client that declares a body and stalls cannot
    #: pin its handler thread forever.
    timeout = 60

    # Quiet by default: per-request logging would swamp test output.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    @property
    def service(self) -> SchedulerService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ----------------------------------------------------------

    def _send(self, status: int, payload: dict | list,
              headers: dict[str, str] | None = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_exception(self, exc: ReproError) -> None:
        """Map a typed exception to its wire document + HTTP status.

        Overload rejections carry ``Retry-After`` so well-behaved
        clients (and :class:`~repro.service.ServiceClient`) know the
        server's suggested backoff floor.
        """
        headers = None
        if isinstance(exc, ServiceOverloadedError):
            retry_after = getattr(exc, "retry_after_s", None) or 1.0
            headers = {"Retry-After": str(max(1, round(retry_after)))}
        self._send(_status_for(exc),
                   ErrorDocument.from_exception(exc).to_dict(),
                   headers=headers)

    def _send_error_doc(self, status: int, code: str, message: str,
                        field: str | None = None) -> None:
        self._send(status, ErrorDocument(code=code, message=message,
                                         field=field).to_dict())

    def _drain_body(self) -> bytes | None:
        """Read the full request body; ``None`` means already answered.

        Always called before any response is written: with HTTP/1.1
        keep-alive, unread body bytes would be parsed as the next
        request line on the persistent connection.  A malformed or
        negative Content-Length is treated as an empty body and the
        connection is closed after the response, so stale bytes cannot
        poison the next request (and ``read(-1)`` can never pin the
        handler thread until the peer disconnects).  Bodies declared
        larger than ``_MAX_BODY_BYTES`` are refused with 413 before any
        buffering, so one request cannot exhaust server memory.
        """
        if self.headers.get("Transfer-Encoding"):
            # Chunked bodies are not supported; answering without
            # draining the chunk framing would desync keep-alive, so
            # refuse and close.
            self.close_connection = True
            self._send_error_doc(
                501, "bad_request",
                "Transfer-Encoding is not supported; send a "
                "Content-Length body")
            return None
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length < 0:
            self.close_connection = True
            return b""
        if length > _MAX_BODY_BYTES:
            self.close_connection = True
            self._send_error_doc(
                413, "bad_request",
                f"request body too large ({length} bytes; "
                f"max {_MAX_BODY_BYTES})")
            return None
        return self.rfile.read(length)

    @staticmethod
    def _parse_json(body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigError(f"request body is not JSON: {exc}") from exc

    def _route(self) -> tuple[list[str], dict[str, list[str]]]:
        split = urlsplit(self.path)
        parts = [part for part in split.path.split("/") if part]
        return parts, parse_qs(split.query)

    # -- verbs -------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server convention
        body = self._drain_body()
        if body is None:
            return
        parts, query = self._route()
        if parts != ["v1", "jobs"]:
            self._send_error_doc(404, "unknown_endpoint",
                                 f"no such endpoint: POST {self.path}")
            return
        try:
            priority = int(query.get("priority", ["0"])[0])
        except ValueError:
            self._send_error_doc(400, "bad_request",
                                 "priority must be an integer",
                                 field="priority")
            return
        try:
            document = self._parse_json(body)
            if isinstance(document, list):
                requests = []
                for i, entry in enumerate(document):
                    try:
                        requests.append(ScheduleRequest.from_dict(entry))
                    except ReproError as exc:
                        self._bad_entry(exc, i)
                handles = self.service.submit_many(requests,
                                                   priority=priority)
                # The submit-time snapshot: a fast-terminal job under a
                # tight retain cap may already be evicted, but the
                # acceptance (and its job id) must still be answerable.
                self._send(201, [handle.submitted_record.to_dict()
                                 for handle in handles])
            else:
                request = ScheduleRequest.from_dict(document)
                handle = self.service.submit(request, priority=priority)
                self._send(201, handle.submitted_record.to_dict())
        except _BadBatchEntry as exc:
            self._send(400, exc.document.to_dict())
        except ReproError as exc:
            self._send_exception(exc)

    def _bad_entry(self, exc: ReproError, index: int) -> None:
        raise _BadBatchEntry(ErrorDocument.from_exception(
            exc, field=f"requests[{index}]"))

    def do_GET(self) -> None:  # noqa: N802
        if self._drain_body() is None:
            return
        parts, _ = self._route()
        try:
            if parts == ["v1", "health"]:
                self._send(200, {"status": "ok",
                                 **self.service.state_counts()})
            elif parts == ["v1", "jobs"]:
                self._send(200, [record.to_dict()
                                 for record in self.service.jobs()])
            elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                self._send(200, self.service.job(parts[2]).to_dict())
            elif len(parts) == 4 and parts[:2] == ["v1", "jobs"] \
                    and parts[3] == "result":
                self._send_result(parts[2])
            else:
                self._send_error_doc(404, "unknown_endpoint",
                                     f"no such endpoint: GET {self.path}")
        except ReproError as exc:
            self._send_exception(exc)

    def _send_result(self, job_id: str) -> None:
        # One atomic snapshot: a separate job()-then-result() pair could
        # lose the result to retain-eviction between the two calls.
        record, result = self.service.snapshot(job_id)
        if record.state == jobstate.DONE:
            assert result is not None
            self._send(200, result.to_dict())
        elif record.state == jobstate.FAILED:
            assert record.error is not None
            self._send(500, record.error.to_dict())
        elif record.state == jobstate.CANCELLED:
            self._send_error_doc(409, "job_cancelled",
                                 f"job {job_id} was cancelled")
        else:
            self._send_error_doc(409, "job_not_done",
                                 f"job {job_id} is {record.state}; "
                                 f"poll GET /v1/jobs/{job_id}")

    def do_DELETE(self) -> None:  # noqa: N802
        if self._drain_body() is None:
            return
        parts, _ = self._route()
        if len(parts) != 3 or parts[:2] != ["v1", "jobs"]:
            self._send_error_doc(404, "unknown_endpoint",
                                 f"no such endpoint: DELETE {self.path}")
            return
        try:
            self._send(200, self.service.cancel(parts[2]).to_dict())
        except ReproError as exc:
            self._send_exception(exc)


class _BadBatchEntry(Exception):
    """Internal: one entry of a batch POST failed to parse."""

    def __init__(self, document: ErrorDocument) -> None:
        super().__init__(document.message)
        self.document = document


def _status_for(exc: ReproError) -> int:
    """HTTP status for a service-boundary exception."""
    if isinstance(exc, JobNotFoundError):
        return 404
    if isinstance(exc, ServiceOverloadedError):
        return 429
    if isinstance(exc, ServiceError):
        return 409
    if isinstance(exc, ConfigError):
        return 400
    return 500


@contextlib.contextmanager
def local_service(session: Session | None = None, *, workers: int = 2,
                  host: str = "127.0.0.1", port: int = 0,
                  **service_kwargs):
    """A live service + HTTP server in this process, for tests/demos.

    Yields ``(url, service)``; the server thread and worker pool shut
    down on exit.  ``port=0`` picks a free ephemeral port.  Extra
    keyword arguments (``retain``, ``job_backend``, ``max_pending``,
    ``store``) pass through to :class:`SchedulerService`.
    """
    service = SchedulerService(session, workers=workers,
                               **service_kwargs)
    server = ServiceServer((host, port), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True,
                              name="repro-service-http")
    thread.start()
    try:
        yield server.url, service
    finally:
        server.shutdown()
        server.server_close()
        thread.join()
        service.close()
