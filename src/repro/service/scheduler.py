"""The job scheduler: a bounded worker pool over a :class:`Session`.

:class:`SchedulerService` turns the blocking ``Session.submit`` call
into asynchronous jobs: callers get a :class:`JobHandle` back
immediately, jobs run on ``workers`` daemon threads popping a priority
queue (lower ``priority`` first, FIFO within a priority), and every
result is produced by the *same* ``Session.submit`` path -- same memo,
same cache keys -- so a job's schedule/metrics are bit-identical to a
direct in-process submit of the same request.

Cancellation is cooperative: a ``QUEUED`` job cancels immediately; a
``RUNNING`` job finishes its (atomic) policy run and is then marked
``CANCELLED`` with its result discarded.  ``close()`` drains the queue
(remaining jobs still run) and joins the workers; the service is usable
as a context manager.

Three knobs make the service scale past a single box's GIL:

``job_backend="process"``  workers dispatch each search to a process
                           pool mirroring the session (same registry,
                           same default engine backend), so concurrent
                           CPU-bound jobs actually overlap; results are
                           adopted back into the session memo and are
                           bit-identical to in-process ``submit``.
``max_pending=N``          admission control: submits past N queued
                           jobs are rejected with
                           :class:`~repro.errors.ServiceOverloadedError`
                           (HTTP 429 + ``Retry-After`` at the
                           transport) instead of growing the queue
                           without bound.
``store=ResultStore``      cross-replica schedule cache: finished
                           results are appended to a shared JSONL
                           store keyed by ``ScheduleRequest.cache_key``
                           and consulted (with a :meth:`refresh
                           <repro.sweep.store.ResultStore.refresh>` on
                           miss) before searching, so identical
                           requests across ``scar serve`` replicas hit
                           a memo instead of a search.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable

from repro.api.request import ScheduleRequest, ScheduleResult
from repro.api.session import Session, run_pooled_request
from repro.api.wire import ErrorDocument
from repro.errors import (
    ConfigError,
    JobNotFoundError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.perf import CacheStats, TimingSummary
from repro.service import jobs as jobstate
from repro.service.jobs import JobRecord

if TYPE_CHECKING:  # import cycle: sweep.runner drives this service
    from repro.sweep.store import ResultStore

#: Job execution backends: in the worker thread, or fanned out to a
#: process pool built by :meth:`Session.process_pool`.
JOB_BACKENDS = ("thread", "process")

#: Queue sentinel priority: sorts after every real job, so close() drains
#: the backlog before the workers exit.
_SHUTDOWN_PRIORITY = float("inf")


class _Completion:
    """Terminal-outcome slot shared between the service and one handle.

    The worker fills ``record``/``result`` *before* setting ``event``,
    so any waiter that wakes reads a complete outcome.  Retain-eviction
    drops the service's reference only -- a live :class:`JobHandle`
    keeps its own, so an in-process caller can never lose a result it
    is waiting on.
    """

    __slots__ = ("event", "record", "result")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.record: JobRecord | None = None
        self.result: ScheduleResult | None = None

    def finish(self, record: JobRecord,
               result: ScheduleResult | None = None) -> None:
        self.record = record
        self.result = result
        self.event.set()


class JobHandle:
    """Caller-facing view of one submitted job.

    ``record()`` snapshots the immutable :class:`JobRecord`; ``result()``
    blocks until the job is terminal and either returns the
    ``ScheduleResult`` or raises the job's typed error (``FAILED``) /
    :class:`~repro.errors.ServiceError` (``CANCELLED``).  The handle
    holds the job's :class:`_Completion`, so waiting through it is
    immune to retain-eviction (unlike by-id access, which lives inside
    the retention window).
    """

    def __init__(self, service: "SchedulerService", job_id: str,
                 submitted_record: JobRecord,
                 completion: _Completion) -> None:
        self._service = service
        self._completion = completion
        self.job_id = job_id
        #: The QUEUED record snapshotted at submit time, so accepting a
        #: job can always be acknowledged even if a tight ``retain`` cap
        #: evicts it immediately after it finishes.
        self.submitted_record = submitted_record

    def record(self) -> JobRecord:
        try:
            return self._service.job(self.job_id)
        except JobNotFoundError:
            # Evicted from the service; the handle still knows the
            # final (or at least the submitted) state.
            return self._completion.record or self.submitted_record

    @property
    def state(self) -> str:
        return self.record().state

    def done(self) -> bool:
        return self.record().terminal

    def wait(self, timeout: float | None = None) -> JobRecord:
        if not self._completion.event.wait(timeout):
            raise ServiceError(
                f"job {self.job_id} still {self.record().state} after "
                f"{timeout}s")
        record = self._completion.record
        assert record is not None  # set before the event fires
        return record

    def result(self, timeout: float | None = None) -> ScheduleResult:
        record = self.wait(timeout)
        if record.state == jobstate.DONE:
            result = self._completion.result
            assert result is not None
            return result
        if record.state == jobstate.FAILED:
            assert record.error is not None
            raise record.error.exception()
        raise ServiceError(f"job {self.job_id} was cancelled")

    def cancel(self) -> JobRecord:
        return self._service.cancel(self.job_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobHandle({self.job_id!r}, state={self.state!r})"


class SchedulerService:
    """Asynchronous job front-end over one :class:`Session`.

    ``workers`` bounds concurrency.  The throughput win of ``workers >
    1`` comes from overlapping requests whose own ``jobs=N`` fan work out
    to processes (the GIL is released while waiting on the pool) and
    from overlapping queue/IO handling; the determinism contract is
    unconditional either way.

    ``retain`` bounds memory like ``Session(max_memo=N)`` does for the
    result memo: only the N most recent *terminal* jobs keep their
    records and results; older ones are evicted and subsequently raise
    :class:`~repro.errors.JobNotFoundError`.  ``None`` (the default)
    retains everything.

    ``job_backend="process"`` runs each job's search on a process pool
    (size ``workers``) instead of the worker thread itself, so
    CPU-bound jobs overlap in wall time; the worker threads then only
    shepherd queue state and IPC.  A non-default registry must be
    picklable to cross into the pool (see ``Session.submit_many``);
    keep the default ``"thread"`` backend for closure-based test
    policies.  ``max_pending`` bounds the admission queue (``None`` =
    unbounded): a submit that would leave more than ``max_pending``
    jobs ``QUEUED`` raises
    :class:`~repro.errors.ServiceOverloadedError`; batch submits are
    all-or-nothing.  ``store`` attaches a shared
    :class:`~repro.sweep.store.ResultStore` consulted before every
    search and appended after, the cross-replica schedule cache.
    """

    def __init__(self, session: Session | None = None, *,
                 workers: int = 1, retain: int | None = None,
                 job_backend: str = "thread",
                 max_pending: int | None = None,
                 store: "ResultStore | None" = None) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if retain is not None and retain < 1:
            raise ConfigError(f"retain must be None or >= 1, got {retain}")
        if job_backend not in JOB_BACKENDS:
            raise ConfigError(
                f"unknown job_backend {job_backend!r}; "
                f"expected one of {JOB_BACKENDS}")
        if max_pending is not None and max_pending < 1:
            raise ConfigError(
                f"max_pending must be None or >= 1, got {max_pending}")
        self.session = session if session is not None else Session()
        self.workers = workers
        self.retain = retain
        self.job_backend = job_backend
        self.max_pending = max_pending
        self._store = store
        self._store_stats = CacheStats()  # guarded by: _lock
        self._pool = self.session.process_pool(workers) \
            if job_backend == "process" else None
        self._queue: queue.PriorityQueue = queue.PriorityQueue()
        self._lock = threading.Lock()
        self._records: dict[str, JobRecord] = {}  # guarded by: _lock
        self._results: dict[str, ScheduleResult] = {}  # guarded by: _lock
        self._completions: dict[str, _Completion] = {}  # guarded by: _lock
        self._enqueued_at: dict[str, float] = {}  # guarded by: _lock
        self._cancel_requested: set[str] = set()  # guarded by: _lock
        #: per-state record tally, maintained incrementally on every
        #: transition so /v1/health and admission checks are O(states),
        #: not O(jobs).
        self._counts: dict[str, int] = {  # guarded by: _lock
            state: 0 for state in jobstate.JOB_STATES}
        #: job id -> terminal sequence number, in terminal order; the
        #: eviction order for ``retain`` (an ordered dict so eviction
        #: pops are O(1) instead of ``list.remove``'s O(n)).
        self._terminal_order: OrderedDict[str, int] = \
            OrderedDict()  # guarded by: _lock
        self._terminal_seq = itertools.count()
        # results fetched at least once
        self._retrieved: set[str] = set()  # guarded by: _lock
        #: (terminal seq, job id) min-heap of retrieved jobs: the
        #: eviction preference queue.  Entries are lazily invalidated --
        #: an already-evicted head is popped and skipped -- which keeps
        #: the bit-identical "oldest retrieved first" policy of the old
        #: linear scan at O(log n).
        self._retrieved_heap: list[tuple[int, str]] = []  # guarded by: _lock
        self._seq = itertools.count()
        self._closed = False  # guarded by: _lock
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"repro-service-worker-{i}")
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission --------------------------------------------------------

    def submit(self, request: ScheduleRequest, *,
               priority: int = 0) -> JobHandle:
        """Queue one request; lower ``priority`` runs first.

        Raises :class:`~repro.errors.ServiceOverloadedError` when the
        admission queue (``max_pending``) is full.
        """
        with self._lock:
            self._admit_locked(1)
            return self._submit_locked(request, priority)

    def submit_many(self, requests: Iterable[ScheduleRequest], *,
                    priority: int = 0) -> list[JobHandle]:
        """Queue a batch atomically; handles come back in request order.

        One lock section covers the whole batch, so a concurrent
        ``close()`` either rejects it entirely or accepts it entirely --
        never a partially queued batch behind an error.  Admission
        control is likewise all-or-nothing: a batch that does not fit
        under ``max_pending`` is rejected whole, queueing nothing.
        """
        requests = list(requests)
        with self._lock:
            self._admit_locked(len(requests))
            return [self._submit_locked(request, priority)
                    for request in requests]

    def _admit_locked(self, batch: int) -> None:
        if self.max_pending is None:
            return
        queued = self._counts[jobstate.QUEUED]
        if queued + batch > self.max_pending:
            what = "1 new job" if batch == 1 else f"batch of {batch}"
            raise ServiceOverloadedError(
                f"service overloaded: {queued} of max_pending="
                f"{self.max_pending} jobs queued, no room for {what}; "
                f"retry with backoff")

    def _submit_locked(self, request: ScheduleRequest,
                       priority: int) -> JobHandle:
        if self._closed:
            raise ServiceError("service is closed; no new jobs")
        seq = next(self._seq)
        job_id = f"job-{seq:06d}"
        record = JobRecord(job_id=job_id, request=request,
                           priority=priority,
                           events=(jobstate.JobEvent(
                               seq=0, state=jobstate.QUEUED),))
        self._records[job_id] = record
        self._counts[jobstate.QUEUED] += 1
        completion = _Completion()
        self._completions[job_id] = completion
        self._enqueued_at[job_id] = time.monotonic()
        # Enqueue under the same lock as the closed check: a close()
        # racing in between would drain the workers before this put
        # landed, stranding an accepted job QUEUED forever.  The queue
        # is unbounded, so put never blocks.
        self._queue.put((priority, seq, job_id))
        return JobHandle(self, job_id, record, completion)

    # -- observation -------------------------------------------------------

    def job(self, job_id: str) -> JobRecord:
        """Snapshot one job's record (unknown/evicted ids raise
        :class:`~repro.errors.JobNotFoundError`)."""
        with self._lock:
            try:
                return self._records[job_id]
            except KeyError:
                raise JobNotFoundError(
                    f"unknown job id {job_id!r}") from None

    def jobs(self) -> list[JobRecord]:
        """Snapshots of every job, in submission order."""
        with self._lock:
            return list(self._records.values())

    def wait(self, job_id: str,
             timeout: float | None = None) -> JobRecord:
        """Block until the job is terminal; returns the final record.

        By-id access: with ``retain=N`` the record is only reachable
        inside the retention window.  Prefer ``JobHandle.wait``, which
        is eviction-immune.
        """
        completion = self._completion(job_id)
        if not completion.event.wait(timeout):
            # The job may have finished (and even been retain-evicted)
            # between the wait timing out and this point; the completion
            # slot outlives eviction, so fall back to it -- like
            # JobHandle.record() -- instead of racing job() into a
            # spurious JobNotFoundError.
            record = completion.record
            if record is not None:
                return record
            try:
                state = self.job(job_id).state
            except JobNotFoundError:
                record = completion.record
                assert record is not None  # evicted implies terminal
                return record
            raise ServiceError(
                f"job {job_id} still {state} after {timeout}s")
        record = completion.record
        assert record is not None
        return record

    def snapshot(self, job_id: str) \
            -> tuple[JobRecord, ScheduleResult | None]:
        """Atomically read a job's record and (if DONE) its result.

        One lock section, so retain-eviction can never fall between
        observing a terminal state and fetching the payload -- the HTTP
        result endpoint is built on this.
        """
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise JobNotFoundError(f"unknown job id {job_id!r}")
            result = self._results.get(job_id)
            if record.state == jobstate.DONE:
                self._mark_retrieved_locked(job_id)
            return record, result

    def result(self, job_id: str) -> ScheduleResult:
        """The finished job's result (non-blocking; see also ``wait``).

        ``FAILED`` jobs re-raise their typed error; ``CANCELLED`` and
        still-pending jobs raise :class:`~repro.errors.ServiceError`.
        """
        # One lock acquisition for the state check and the result
        # lookup: with retain-eviction a job can disappear between the
        # two, which must surface as JobNotFoundError, not a KeyError.
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise JobNotFoundError(f"unknown job id {job_id!r}")
            if record.state == jobstate.DONE:
                self._mark_retrieved_locked(job_id)
                return self._results[job_id]
        if record.state == jobstate.FAILED:
            assert record.error is not None
            raise record.error.exception()
        if record.state == jobstate.CANCELLED:
            raise ServiceError(f"job {job_id} was cancelled")
        raise ServiceError(
            f"job {job_id} is {record.state}, not finished")

    # -- cancellation ------------------------------------------------------

    def cancel(self, job_id: str) -> JobRecord:
        """Request cancellation (idempotent; cooperative while RUNNING).

        ``QUEUED`` jobs flip to ``CANCELLED`` immediately; ``RUNNING``
        jobs are flagged and become ``CANCELLED`` when their policy run
        completes (the computed result is discarded).  Terminal jobs are
        returned unchanged.
        """
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise JobNotFoundError(f"unknown job id {job_id!r}")
            if record.terminal:
                return record
            if record.state == jobstate.QUEUED:
                queue_s = time.monotonic() - self._enqueued_at[job_id]
                record = record.transition(jobstate.CANCELLED,
                                           note="cancelled while queued",
                                           queue_s=queue_s)
                self._replace_locked(job_id, record)
                self._completions[job_id].finish(record)
                self._mark_terminal_locked(job_id)
                self._evict_locked()
                return record
            # RUNNING: flag it; the worker finishes the transition.
            self._cancel_requested.add(job_id)
            return record

    # -- reporting ---------------------------------------------------------

    def state_counts(self) -> dict[str, int]:
        """Cheap per-state job tally (the ``/v1/health`` payload).

        Served from the incrementally maintained counters -- O(states),
        so a health poll stays cheap no matter how many records the
        retention window holds.
        """
        with self._lock:
            return {**self._counts, "total": len(self._records)}

    def perf_summary(self) -> dict:
        """Service-level stats: job states, queue/run times, session perf.

        ``queue`` / ``run`` aggregate per-job wall times
        (:class:`~repro.perf.TimingSummary`); ``session`` is the wrapped
        session's aggregate :class:`~repro.perf.PerfReport` (including
        the engine's delta-evaluation ``num_segments*`` counters and
        per-table cache/eviction stats); ``backend`` echoes the
        session's default execution backend (``None`` = per-request
        inference from ``jobs``).  ``job_backend`` is how jobs execute
        (worker thread vs process pool) and ``store`` the cross-replica
        cache's hit/miss stats (``None`` when no store is attached).
        """
        with self._lock:
            records = list(self._records.values())
            counts = {**self._counts, "total": len(records)}
            store_stats = self._store_stats.to_dict() \
                if self._store is not None else None
        queue_summary = TimingSummary.from_samples(
            record.queue_s for record in records
            if record.queue_s is not None)
        run_summary = TimingSummary.from_samples(
            record.run_s for record in records
            if record.run_s is not None)
        return {
            "jobs": counts,
            "queue": queue_summary.to_dict(),
            "run": run_summary.to_dict(),
            "backend": self.session.backend,
            "job_backend": self.job_backend,
            "store": store_stats,
            "session": self.session.perf_summary().to_dict(),
        }

    # -- lifecycle ---------------------------------------------------------

    def close(self, *, wait: bool = True,
              cancel_pending: bool = False) -> None:
        """Stop accepting jobs and join the workers.

        By default the queued backlog still runs (graceful drain).
        ``cancel_pending=True`` cancels every still-``QUEUED`` job
        instead, so shutdown is prompt even under a deep backlog; jobs
        already ``RUNNING`` finish their atomic policy run either way.

        ``wait=True`` means "workers joined on return" for *every*
        caller, not just the first: a second concurrent closer blocks
        until the drain completes rather than returning early because
        the closed flag was already up.
        """
        with self._lock:
            first = not self._closed
            self._closed = True
            if cancel_pending:
                for job_id, record in list(self._records.items()):
                    if record.state != jobstate.QUEUED:
                        continue
                    queue_s = time.monotonic() \
                        - self._enqueued_at[job_id]
                    cancelled = record.transition(
                        jobstate.CANCELLED,
                        note="cancelled at shutdown", queue_s=queue_s)
                    self._replace_locked(job_id, cancelled)
                    self._completions[job_id].finish(cancelled)
                    self._mark_terminal_locked(job_id)
                self._evict_locked()
        if first:
            for _ in self._threads:
                self._queue.put(
                    (_SHUTDOWN_PRIORITY, next(self._seq), None))
        if wait:
            for thread in self._threads:
                thread.join()
            if self._pool is not None:
                self._pool.shutdown(wait=True)
        elif first and self._pool is not None:
            # Nobody joins the workers on this path, so a reaper thread
            # shuts the pool down once they drain -- shutting it down
            # now would fail the backlog's pool submits.
            threading.Thread(target=self._reap_pool, daemon=True,
                             name="repro-service-reaper").start()

    def _reap_pool(self) -> None:
        for thread in self._threads:
            thread.join()
        assert self._pool is not None
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "SchedulerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _completion(self, job_id: str) -> _Completion:
        with self._lock:
            try:
                return self._completions[job_id]
            except KeyError:
                raise JobNotFoundError(
                    f"unknown job id {job_id!r}") from None

    def _worker(self) -> None:
        while True:
            _, _, job_id = self._queue.get()
            if job_id is None:  # shutdown sentinel
                self._queue.task_done()
                return
            try:
                self._run_one(job_id)
            finally:
                self._queue.task_done()

    def _run_one(self, job_id: str) -> None:
        with self._lock:
            record = self._records.get(job_id)
            if record is None or record.state != jobstate.QUEUED:
                # Cancelled off the queue (and possibly evicted already);
                # the stale queue entry is a no-op.
                return
            queue_s = time.monotonic() - self._enqueued_at[job_id]
            record = record.transition(jobstate.RUNNING, queue_s=queue_s)
            self._replace_locked(job_id, record)
        started = time.monotonic()
        try:
            result = self._execute(record.request)
        except Exception as exc:  # noqa: BLE001 - mapped to wire error
            self._finish(job_id, jobstate.FAILED, started,
                         error=ErrorDocument.from_exception(exc))
        else:
            self._finish(job_id, jobstate.DONE, started, result=result)

    def _execute(self, request: ScheduleRequest) -> ScheduleResult:
        """One job's search: memo, then shared store, then compute.

        The lookup order preserves the bit-identity contract: a session
        memo hit returns the identical object ``Session.submit`` would;
        a store hit rebuilds the exact wire payload another replica
        computed (adopted into the memo, but *not* the perf log -- its
        engine counters belong to the replica that searched); a miss
        computes here (worker thread or process pool) and is recorded
        back to the store for the other replicas.
        """
        cached = self.session.cached(request)
        if cached is not None:
            return cached
        key = request.cache_key() \
            if self._store is not None and request.memoize else None
        if key is not None:
            stored = self._store.get(key)
            if stored is None and self._store.refresh():
                stored = self._store.get(key)
            with self._lock:
                self._store_stats.record(stored is not None)
            if stored is not None:
                self.session.remember(request, stored)
                return stored
        if self._pool is None:
            result = self.session.submit(request)
        else:
            result = self._pool.submit(run_pooled_request,
                                       request).result()
            self.session.remember(request, result, log_perf=True)
        if key is not None:
            self._store.record(result, key=key)
        return result

    def _finish(self, job_id: str, state: str, started: float, *,
                result: ScheduleResult | None = None,
                error: ErrorDocument | None = None,
                note: str = "") -> None:
        run_s = time.monotonic() - started
        with self._lock:
            # The cancel flag is honoured under the same lock that sets
            # it, so a cancel() racing the end of the run can never be
            # silently dropped into a DONE.
            if state == jobstate.DONE \
                    and job_id in self._cancel_requested:
                state = jobstate.CANCELLED
                result = None
                note = "cancelled during run; result discarded"
            record = self._records[job_id].transition(
                state, note=note, error=error, run_s=run_s)
            self._replace_locked(job_id, record)
            if result is not None:
                self._results[job_id] = result
            self._cancel_requested.discard(job_id)
            self._completions[job_id].finish(record, result)
            self._mark_terminal_locked(job_id)
            self._evict_locked()

    def _replace_locked(self, job_id: str, record: JobRecord) -> None:
        """Swap in a transitioned record, keeping the state counters."""
        self._counts[self._records[job_id].state] -= 1
        self._counts[record.state] += 1
        self._records[job_id] = record

    def _mark_terminal_locked(self, job_id: str) -> None:
        self._terminal_order[job_id] = next(self._terminal_seq)

    def _mark_retrieved_locked(self, job_id: str) -> None:
        if job_id in self._retrieved:
            return
        self._retrieved.add(job_id)
        tseq = self._terminal_order.get(job_id)
        if tseq is not None:  # retrieval implies DONE implies terminal
            heapq.heappush(self._retrieved_heap, (tseq, job_id))

    def _evict_locked(self) -> None:
        """Drop terminal jobs past the ``retain`` cap, oldest first,
        preferring jobs whose result was already retrieved.

        Caller holds ``self._lock``.  Live (QUEUED/RUNNING) jobs are
        never candidates, so the worker loop and open handles on pending
        work stay valid.  The retrieved-first preference means a
        well-paced client rarely loses an unfetched result; when *every*
        candidate is unretrieved the oldest goes anyway -- the cap is a
        hard memory bound, so ``retain`` should be sized comfortably
        above the number of jobs in flight.  The victim choice -- the
        oldest-terminal retrieved job, else the oldest terminal job --
        comes from the retrieved heap and the terminal order dict in
        O(log n), bit-identical to the old linear scan.
        """
        if self.retain is None:
            return
        while len(self._terminal_order) > self.retain:
            job_id = None
            while self._retrieved_heap:
                _, candidate = self._retrieved_heap[0]
                if candidate in self._terminal_order:
                    job_id = candidate
                    heapq.heappop(self._retrieved_heap)
                    break
                heapq.heappop(self._retrieved_heap)  # already evicted
            if job_id is None:
                job_id = next(iter(self._terminal_order))
            del self._terminal_order[job_id]
            record = self._records.pop(job_id)
            self._counts[record.state] -= 1
            self._results.pop(job_id, None)
            self._completions.pop(job_id, None)
            self._enqueued_at.pop(job_id, None)
            self._cancel_requested.discard(job_id)
            self._retrieved.discard(job_id)
