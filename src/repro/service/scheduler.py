"""The job scheduler: a bounded worker pool over a :class:`Session`.

:class:`SchedulerService` turns the blocking ``Session.submit`` call
into asynchronous jobs: callers get a :class:`JobHandle` back
immediately, jobs run on ``workers`` daemon threads popping a priority
queue (lower ``priority`` first, FIFO within a priority), and every
result is produced by the *same* ``Session.submit`` path -- same memo,
same cache keys -- so a job's schedule/metrics are bit-identical to a
direct in-process submit of the same request.

Cancellation is cooperative: a ``QUEUED`` job cancels immediately; a
``RUNNING`` job finishes its (atomic) policy run and is then marked
``CANCELLED`` with its result discarded.  ``close()`` drains the queue
(remaining jobs still run) and joins the workers; the service is usable
as a context manager.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import Iterable

from repro.api.request import ScheduleRequest, ScheduleResult
from repro.api.session import Session
from repro.api.wire import ErrorDocument
from repro.errors import ConfigError, JobNotFoundError, ServiceError
from repro.perf import TimingSummary
from repro.service import jobs as jobstate
from repro.service.jobs import JobRecord

#: Queue sentinel priority: sorts after every real job, so close() drains
#: the backlog before the workers exit.
_SHUTDOWN_PRIORITY = float("inf")


class _Completion:
    """Terminal-outcome slot shared between the service and one handle.

    The worker fills ``record``/``result`` *before* setting ``event``,
    so any waiter that wakes reads a complete outcome.  Retain-eviction
    drops the service's reference only -- a live :class:`JobHandle`
    keeps its own, so an in-process caller can never lose a result it
    is waiting on.
    """

    __slots__ = ("event", "record", "result")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.record: JobRecord | None = None
        self.result: ScheduleResult | None = None

    def finish(self, record: JobRecord,
               result: ScheduleResult | None = None) -> None:
        self.record = record
        self.result = result
        self.event.set()


class JobHandle:
    """Caller-facing view of one submitted job.

    ``record()`` snapshots the immutable :class:`JobRecord`; ``result()``
    blocks until the job is terminal and either returns the
    ``ScheduleResult`` or raises the job's typed error (``FAILED``) /
    :class:`~repro.errors.ServiceError` (``CANCELLED``).  The handle
    holds the job's :class:`_Completion`, so waiting through it is
    immune to retain-eviction (unlike by-id access, which lives inside
    the retention window).
    """

    def __init__(self, service: "SchedulerService", job_id: str,
                 submitted_record: JobRecord,
                 completion: _Completion) -> None:
        self._service = service
        self._completion = completion
        self.job_id = job_id
        #: The QUEUED record snapshotted at submit time, so accepting a
        #: job can always be acknowledged even if a tight ``retain`` cap
        #: evicts it immediately after it finishes.
        self.submitted_record = submitted_record

    def record(self) -> JobRecord:
        try:
            return self._service.job(self.job_id)
        except JobNotFoundError:
            # Evicted from the service; the handle still knows the
            # final (or at least the submitted) state.
            return self._completion.record or self.submitted_record

    @property
    def state(self) -> str:
        return self.record().state

    def done(self) -> bool:
        return self.record().terminal

    def wait(self, timeout: float | None = None) -> JobRecord:
        if not self._completion.event.wait(timeout):
            raise ServiceError(
                f"job {self.job_id} still {self.record().state} after "
                f"{timeout}s")
        record = self._completion.record
        assert record is not None  # set before the event fires
        return record

    def result(self, timeout: float | None = None) -> ScheduleResult:
        record = self.wait(timeout)
        if record.state == jobstate.DONE:
            result = self._completion.result
            assert result is not None
            return result
        if record.state == jobstate.FAILED:
            assert record.error is not None
            raise record.error.exception()
        raise ServiceError(f"job {self.job_id} was cancelled")

    def cancel(self) -> JobRecord:
        return self._service.cancel(self.job_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobHandle({self.job_id!r}, state={self.state!r})"


class SchedulerService:
    """Asynchronous job front-end over one :class:`Session`.

    ``workers`` bounds concurrency.  The throughput win of ``workers >
    1`` comes from overlapping requests whose own ``jobs=N`` fan work out
    to processes (the GIL is released while waiting on the pool) and
    from overlapping queue/IO handling; the determinism contract is
    unconditional either way.

    ``retain`` bounds memory like ``Session(max_memo=N)`` does for the
    result memo: only the N most recent *terminal* jobs keep their
    records and results; older ones are evicted and subsequently raise
    :class:`~repro.errors.JobNotFoundError`.  ``None`` (the default)
    retains everything.
    """

    def __init__(self, session: Session | None = None, *,
                 workers: int = 1, retain: int | None = None) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if retain is not None and retain < 1:
            raise ConfigError(f"retain must be None or >= 1, got {retain}")
        self.session = session if session is not None else Session()
        self.workers = workers
        self.retain = retain
        self._queue: queue.PriorityQueue = queue.PriorityQueue()
        self._lock = threading.Lock()
        self._records: dict[str, JobRecord] = {}
        self._results: dict[str, ScheduleResult] = {}
        self._completions: dict[str, _Completion] = {}
        self._enqueued_at: dict[str, float] = {}
        self._cancel_requested: set[str] = set()
        self._terminal_order: list[str] = []  # eviction order for retain
        self._retrieved: set[str] = set()  # results fetched at least once
        self._seq = itertools.count()
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"repro-service-worker-{i}")
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission --------------------------------------------------------

    def submit(self, request: ScheduleRequest, *,
               priority: int = 0) -> JobHandle:
        """Queue one request; lower ``priority`` runs first."""
        with self._lock:
            return self._submit_locked(request, priority)

    def submit_many(self, requests: Iterable[ScheduleRequest], *,
                    priority: int = 0) -> list[JobHandle]:
        """Queue a batch atomically; handles come back in request order.

        One lock section covers the whole batch, so a concurrent
        ``close()`` either rejects it entirely or accepts it entirely --
        never a partially queued batch behind an error.
        """
        requests = list(requests)
        with self._lock:
            return [self._submit_locked(request, priority)
                    for request in requests]

    def _submit_locked(self, request: ScheduleRequest,
                       priority: int) -> JobHandle:
        if self._closed:
            raise ServiceError("service is closed; no new jobs")
        seq = next(self._seq)
        job_id = f"job-{seq:06d}"
        record = JobRecord(job_id=job_id, request=request,
                           priority=priority,
                           events=(jobstate.JobEvent(
                               seq=0, state=jobstate.QUEUED),))
        self._records[job_id] = record
        completion = _Completion()
        self._completions[job_id] = completion
        self._enqueued_at[job_id] = time.monotonic()
        # Enqueue under the same lock as the closed check: a close()
        # racing in between would drain the workers before this put
        # landed, stranding an accepted job QUEUED forever.  The queue
        # is unbounded, so put never blocks.
        self._queue.put((priority, seq, job_id))
        return JobHandle(self, job_id, record, completion)

    # -- observation -------------------------------------------------------

    def job(self, job_id: str) -> JobRecord:
        """Snapshot one job's record (unknown/evicted ids raise
        :class:`~repro.errors.JobNotFoundError`)."""
        with self._lock:
            try:
                return self._records[job_id]
            except KeyError:
                raise JobNotFoundError(
                    f"unknown job id {job_id!r}") from None

    def jobs(self) -> list[JobRecord]:
        """Snapshots of every job, in submission order."""
        with self._lock:
            return list(self._records.values())

    def wait(self, job_id: str,
             timeout: float | None = None) -> JobRecord:
        """Block until the job is terminal; returns the final record.

        By-id access: with ``retain=N`` the record is only reachable
        inside the retention window.  Prefer ``JobHandle.wait``, which
        is eviction-immune.
        """
        completion = self._completion(job_id)
        if not completion.event.wait(timeout):
            raise ServiceError(
                f"job {job_id} still {self.job(job_id).state} after "
                f"{timeout}s")
        record = completion.record
        assert record is not None
        return record

    def snapshot(self, job_id: str) \
            -> tuple[JobRecord, ScheduleResult | None]:
        """Atomically read a job's record and (if DONE) its result.

        One lock section, so retain-eviction can never fall between
        observing a terminal state and fetching the payload -- the HTTP
        result endpoint is built on this.
        """
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise JobNotFoundError(f"unknown job id {job_id!r}")
            result = self._results.get(job_id)
            if record.state == jobstate.DONE:
                self._retrieved.add(job_id)
            return record, result

    def result(self, job_id: str) -> ScheduleResult:
        """The finished job's result (non-blocking; see also ``wait``).

        ``FAILED`` jobs re-raise their typed error; ``CANCELLED`` and
        still-pending jobs raise :class:`~repro.errors.ServiceError`.
        """
        # One lock acquisition for the state check and the result
        # lookup: with retain-eviction a job can disappear between the
        # two, which must surface as JobNotFoundError, not a KeyError.
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise JobNotFoundError(f"unknown job id {job_id!r}")
            if record.state == jobstate.DONE:
                self._retrieved.add(job_id)
                return self._results[job_id]
        if record.state == jobstate.FAILED:
            assert record.error is not None
            raise record.error.exception()
        if record.state == jobstate.CANCELLED:
            raise ServiceError(f"job {job_id} was cancelled")
        raise ServiceError(
            f"job {job_id} is {record.state}, not finished")

    # -- cancellation ------------------------------------------------------

    def cancel(self, job_id: str) -> JobRecord:
        """Request cancellation (idempotent; cooperative while RUNNING).

        ``QUEUED`` jobs flip to ``CANCELLED`` immediately; ``RUNNING``
        jobs are flagged and become ``CANCELLED`` when their policy run
        completes (the computed result is discarded).  Terminal jobs are
        returned unchanged.
        """
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise JobNotFoundError(f"unknown job id {job_id!r}")
            if record.terminal:
                return record
            if record.state == jobstate.QUEUED:
                queue_s = time.monotonic() - self._enqueued_at[job_id]
                record = record.transition(jobstate.CANCELLED,
                                           note="cancelled while queued",
                                           queue_s=queue_s)
                self._records[job_id] = record
                self._completions[job_id].finish(record)
                self._terminal_order.append(job_id)
                self._evict_locked()
                return record
            # RUNNING: flag it; the worker finishes the transition.
            self._cancel_requested.add(job_id)
            return record

    # -- reporting ---------------------------------------------------------

    @staticmethod
    def _tally(records: list[JobRecord]) -> dict[str, int]:
        counts = {state: 0 for state in jobstate.JOB_STATES}
        counts["total"] = len(records)
        for record in records:
            counts[record.state] += 1
        return counts

    def state_counts(self) -> dict[str, int]:
        """Cheap per-state job tally (the ``/v1/health`` payload)."""
        with self._lock:
            return self._tally(list(self._records.values()))

    def perf_summary(self) -> dict:
        """Service-level stats: job states, queue/run times, session perf.

        ``queue`` / ``run`` aggregate per-job wall times
        (:class:`~repro.perf.TimingSummary`); ``session`` is the wrapped
        session's aggregate :class:`~repro.perf.PerfReport` (including
        the engine's delta-evaluation ``num_segments*`` counters and
        per-table cache/eviction stats); ``backend`` echoes the
        session's default execution backend (``None`` = per-request
        inference from ``jobs``).
        """
        with self._lock:
            records = list(self._records.values())
        queue_summary = TimingSummary.from_samples(
            record.queue_s for record in records
            if record.queue_s is not None)
        run_summary = TimingSummary.from_samples(
            record.run_s for record in records
            if record.run_s is not None)
        return {
            "jobs": self._tally(records),
            "queue": queue_summary.to_dict(),
            "run": run_summary.to_dict(),
            "backend": self.session.backend,
            "session": self.session.perf_summary().to_dict(),
        }

    # -- lifecycle ---------------------------------------------------------

    def close(self, *, wait: bool = True,
              cancel_pending: bool = False) -> None:
        """Stop accepting jobs and join the workers.

        By default the queued backlog still runs (graceful drain).
        ``cancel_pending=True`` cancels every still-``QUEUED`` job
        instead, so shutdown is prompt even under a deep backlog; jobs
        already ``RUNNING`` finish their atomic policy run either way.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if cancel_pending:
                for job_id, record in list(self._records.items()):
                    if record.state != jobstate.QUEUED:
                        continue
                    queue_s = time.monotonic() \
                        - self._enqueued_at[job_id]
                    cancelled = record.transition(
                        jobstate.CANCELLED,
                        note="cancelled at shutdown", queue_s=queue_s)
                    self._records[job_id] = cancelled
                    self._completions[job_id].finish(cancelled)
                    self._terminal_order.append(job_id)
                self._evict_locked()
        for _ in self._threads:
            self._queue.put((_SHUTDOWN_PRIORITY, next(self._seq), None))
        if wait:
            for thread in self._threads:
                thread.join()

    def __enter__(self) -> "SchedulerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _completion(self, job_id: str) -> _Completion:
        with self._lock:
            try:
                return self._completions[job_id]
            except KeyError:
                raise JobNotFoundError(
                    f"unknown job id {job_id!r}") from None

    def _worker(self) -> None:
        while True:
            _, _, job_id = self._queue.get()
            if job_id is None:  # shutdown sentinel
                self._queue.task_done()
                return
            try:
                self._run_one(job_id)
            finally:
                self._queue.task_done()

    def _run_one(self, job_id: str) -> None:
        with self._lock:
            record = self._records.get(job_id)
            if record is None or record.state != jobstate.QUEUED:
                # Cancelled off the queue (and possibly evicted already);
                # the stale queue entry is a no-op.
                return
            queue_s = time.monotonic() - self._enqueued_at[job_id]
            record = record.transition(jobstate.RUNNING, queue_s=queue_s)
            self._records[job_id] = record
        started = time.monotonic()
        try:
            result = self.session.submit(record.request)
        except Exception as exc:  # noqa: BLE001 - mapped to wire error
            self._finish(job_id, jobstate.FAILED, started,
                         error=ErrorDocument.from_exception(exc))
        else:
            self._finish(job_id, jobstate.DONE, started, result=result)

    def _finish(self, job_id: str, state: str, started: float, *,
                result: ScheduleResult | None = None,
                error: ErrorDocument | None = None,
                note: str = "") -> None:
        run_s = time.monotonic() - started
        with self._lock:
            # The cancel flag is honoured under the same lock that sets
            # it, so a cancel() racing the end of the run can never be
            # silently dropped into a DONE.
            if state == jobstate.DONE \
                    and job_id in self._cancel_requested:
                state = jobstate.CANCELLED
                result = None
                note = "cancelled during run; result discarded"
            record = self._records[job_id].transition(
                state, note=note, error=error, run_s=run_s)
            self._records[job_id] = record
            if result is not None:
                self._results[job_id] = result
            self._cancel_requested.discard(job_id)
            self._completions[job_id].finish(record, result)
            self._terminal_order.append(job_id)
            self._evict_locked()

    def _evict_locked(self) -> None:
        """Drop terminal jobs past the ``retain`` cap, oldest first,
        preferring jobs whose result was already retrieved.

        Caller holds ``self._lock``.  Live (QUEUED/RUNNING) jobs are
        never candidates, so the worker loop and open handles on pending
        work stay valid.  The retrieved-first preference means a
        well-paced client rarely loses an unfetched result; when *every*
        candidate is unretrieved the oldest goes anyway -- the cap is a
        hard memory bound, so ``retain`` should be sized comfortably
        above the number of jobs in flight.
        """
        if self.retain is None:
            return
        while len(self._terminal_order) > self.retain:
            job_id = next((j for j in self._terminal_order
                           if j in self._retrieved),
                          self._terminal_order[0])
            self._terminal_order.remove(job_id)
            del self._records[job_id]
            self._results.pop(job_id, None)
            self._completions.pop(job_id, None)
            self._enqueued_at.pop(job_id, None)
            self._cancel_requested.discard(job_id)
            self._retrieved.discard(job_id)
