"""Job value objects: lifecycle records, progress events, wire forms.

A *job* is one :class:`~repro.api.ScheduleRequest` travelling through the
scheduling service.  Its lifecycle is a small state machine::

    QUEUED ──> RUNNING ──> DONE
       │          ├──────> FAILED
       └──────────┴──────> CANCELLED

:class:`JobRecord` is an immutable snapshot of one job: every transition
produces a *new* record (via :meth:`JobRecord.transition`) carrying a
monotonic :class:`JobEvent` trail, so observers can never see a
half-updated job.  Records round-trip through the same kind/version JSON
envelope as requests and results (``kind: "job"``,
``JobRecord.from_dict(to_dict(x)) == x``), which is what the HTTP layer
puts on the wire.

Wall-time fields (``queue_s``, ``run_s``) are measurements, not
identity: they round-trip exactly (floats) but are nondeterministic
across runs, exactly like ``PerfReport.wall_s``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any

from repro.api.request import ScheduleRequest
from repro.api.wire import (
    WIRE_VERSION,
    ErrorDocument,
    check_envelope,
    loads_document,
)
from repro.errors import ConfigError, ServiceError

#: Lifecycle states.
QUEUED = "QUEUED"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
CANCELLED = "CANCELLED"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: States a job can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: Legal state-machine edges.
TRANSITIONS: dict[str, frozenset[str]] = {
    QUEUED: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset({DONE, FAILED, CANCELLED}),
    DONE: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}

_JOB_KIND = "job"


@dataclass(frozen=True)
class JobEvent:
    """One progress event: the job entered ``state`` as step ``seq``.

    ``seq`` is strictly increasing along a record's event trail (the
    monotonicity is enforced by ``JobRecord.__post_init__``), so any
    observer replaying events sees progress move forward only.
    """

    seq: int
    state: str
    note: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"seq": self.seq, "state": self.state, "note": self.note}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobEvent":
        try:
            return cls(seq=data["seq"], state=data["state"],
                       note=data.get("note", ""))
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed job event: {exc}") from exc


@dataclass(frozen=True)
class JobRecord:
    """Immutable snapshot of one job's lifecycle.

    ``queue_s`` is the time the job spent ``QUEUED`` (set when it starts
    running or is cancelled off the queue); ``run_s`` the wall time of
    the policy run (set on any terminal transition out of ``RUNNING``).
    ``error`` carries the structured failure document of a ``FAILED``
    job.  The schedule result itself stays in the service -- a record is
    pure metadata and therefore cheap to snapshot, list and serialize.
    """

    job_id: str
    request: ScheduleRequest
    state: str = QUEUED
    priority: int = 0
    events: tuple[JobEvent, ...] = ()
    error: ErrorDocument | None = None
    queue_s: float | None = None
    run_s: float | None = None

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ConfigError(f"unknown job state {self.state!r}; "
                              f"valid: {JOB_STATES}")
        seqs = [event.seq for event in self.events]
        if any(b <= a for a, b in zip(seqs, seqs[1:])):
            raise ConfigError(
                f"job {self.job_id}: event seq must be strictly "
                f"increasing, got {seqs}")

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, state: str, *, note: str = "",
                   error: ErrorDocument | None = None,
                   queue_s: float | None = None,
                   run_s: float | None = None) -> "JobRecord":
        """A new record moved to ``state`` (illegal edges raise).

        Appends the matching :class:`JobEvent` with the next ``seq``;
        timing/error fields only ever fill in, never reset.
        """
        if state not in TRANSITIONS.get(self.state, frozenset()):
            raise ServiceError(
                f"job {self.job_id}: illegal transition "
                f"{self.state} -> {state}")
        next_seq = self.events[-1].seq + 1 if self.events else 0
        return replace(
            self, state=state,
            events=self.events + (JobEvent(seq=next_seq, state=state,
                                           note=note),),
            error=error if error is not None else self.error,
            queue_s=queue_s if queue_s is not None else self.queue_s,
            run_s=run_s if run_s is not None else self.run_s)

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": _JOB_KIND,
            "version": WIRE_VERSION,
            "job_id": self.job_id,
            "request": self.request.to_dict(),
            "state": self.state,
            "priority": self.priority,
            "events": [event.to_dict() for event in self.events],
            "error": None if self.error is None else self.error.to_dict(),
            "queue_s": self.queue_s,
            "run_s": self.run_s,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobRecord":
        check_envelope(data, _JOB_KIND)
        try:
            return cls(
                job_id=data["job_id"],
                request=ScheduleRequest.from_dict(data["request"]),
                state=data["state"],
                priority=data["priority"],
                events=tuple(JobEvent.from_dict(event)
                             for event in data["events"]),
                error=None if data.get("error") is None
                else ErrorDocument.from_dict(data["error"]),
                queue_s=data.get("queue_s"),
                run_s=data.get("run_s"),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed job document: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "JobRecord":
        return cls.from_dict(loads_document(text, "job document"))
