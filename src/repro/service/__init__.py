"""Asynchronous job-oriented scheduling service over :mod:`repro.api`.

The second supported entry point beside the in-process
:class:`~repro.api.Session` facade::

    from repro.api import ScheduleRequest
    from repro.service import SchedulerService

    with SchedulerService(workers=2) as service:
        handle = service.submit(ScheduleRequest(scenario_id=4))
        print(handle.result().metrics.summary())   # == Session.submit

and over HTTP (``scar serve`` on one side, :class:`ServiceClient` on the
other)::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8787")
    result = client.submit(request).result(timeout=300)

Jobs carry the ``QUEUED -> RUNNING -> DONE | FAILED | CANCELLED`` state
machine of :mod:`repro.service.jobs`; results are bit-identical to
``Session.submit`` because every job runs through the same session
memo/cache-key path.  See DESIGN.md ("The repro.service layer").
"""

from repro.service.http import ServiceServer, local_service
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    TRANSITIONS,
    JobEvent,
    JobRecord,
)
from repro.service.client import RemoteJob, ServiceClient
from repro.service.scheduler import JobHandle, SchedulerService

__all__ = [
    "CANCELLED", "DONE", "FAILED", "JOB_STATES", "JobEvent", "JobHandle",
    "JobRecord", "QUEUED", "RUNNING", "RemoteJob", "SchedulerService",
    "ServiceClient", "ServiceServer", "TERMINAL_STATES", "TRANSITIONS",
    "local_service",
]
