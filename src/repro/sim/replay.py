"""Trace replay: re-schedule the active tenant set on every event.

The event loop walks a :class:`~repro.sim.trace.Trace` in canonical
order, maintains the active tenant set as a
:class:`~repro.workloads.model.Scenario` (tenant ids become instance
names, sorted so scenario identity is a pure function of the set) and
re-schedules after each event through the public API.

Two local modes share the loop:

* ``"warm"`` -- one long-lived :class:`~repro.api.session.Session` with
  ``warm_caches=True``: recurring tenant sets hit the session's result
  memo, and re-visited (scenario, template) pairs start with their
  evaluator caches warm.
* ``"cold"`` -- a fresh session per event: every event pays the full
  from-scratch search.

The parity contract -- THE property the sim layer is built around --
is that warm replay is *bit-identical* per event to cold replay
(:meth:`ScheduleResult.same_payload`), just cheaper: memo entries and
evaluator-cache entries are pure functions of their keys.
:func:`replay_parity` checks it event by event; the ``BENCH_sim`` gate
additionally requires the warm mode to re-cost >= 40% fewer segments.

A third mode drives a live service replica instead: pass ``client=``
(a :class:`~repro.service.client.ServiceClient`) and every event's
request is submitted as a job; the replica's own session provides the
warmth.  Per-event segment accounting then comes from the result's perf
report (the replica's counters), and memo hits are not observable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.api.request import ScheduleRequest, ScheduleResult
from repro.api.session import Session
from repro.core.budget import SearchBudget
from repro.errors import ConfigError
from repro.sim.trace import TenantEvent, Trace
from repro.workloads import zoo
from repro.workloads.model import ModelInstance, Scenario

MODES = ("warm", "cold")


@dataclass(frozen=True)
class EventOutcome:
    """What one trace event's re-scheduling produced.

    ``result`` is ``None`` when the active set was empty (nothing to
    schedule).  ``tenants`` is the active set in scenario instance
    order; ``deadlines`` the matching SLAs.  ``num_segments`` /
    ``num_segments_recosted`` count this event's evaluator work (0 for
    session-memo hits: a served result re-costs nothing) and ``wall_s``
    its wall time -- perf quantities, excluded from the parity contract
    like :attr:`ScheduleResult.perf` itself.
    """

    event: TenantEvent
    tenants: tuple[str, ...]
    deadlines: tuple[float | None, ...]
    result: ScheduleResult | None
    wall_s: float = 0.0
    num_segments: int = 0
    num_segments_recosted: int = 0
    memo_hit: bool = False

    def placements(self) -> dict[str, tuple]:
        """Tenant id -> placement signature, for churn accounting.

        The signature is the tenant's full spatio-temporal footprint:
        ``(window, start, stop, node)`` per segment, across windows.
        Two consecutive events where a tenant's signatures differ means
        the re-schedule *moved* it.
        """
        if self.result is None:
            return {}
        signatures: dict[str, list[tuple]] = \
            {tenant: [] for tenant in self.tenants}
        for window in self.result.schedule.windows:
            for chain in window.chains:
                for segment in chain:
                    tenant = self.tenants[segment.model]
                    signatures[tenant].append(
                        (window.index, segment.start, segment.stop,
                         segment.node))
        return {tenant: tuple(parts)
                for tenant, parts in signatures.items()}


@dataclass
class _ActiveSet:
    """The replayed tenant population (insertion-order independent)."""

    trace: Trace
    tenants: dict[str, tuple[str, int, float | None]] = \
        field(default_factory=dict)

    def apply(self, event: TenantEvent) -> None:
        if event.kind == "arrive":
            assert event.model is not None and event.batch is not None
            self.tenants[event.tenant] = \
                (event.model, event.batch, event.deadline_s)
        else:
            del self.tenants[event.tenant]

    def ordered(self) -> tuple[str, ...]:
        """Active tenant ids, sorted -- the scenario instance order.

        Sorted (not insertion) order makes scenario identity a pure
        function of the *set*, so a tenant set reached along different
        event paths maps to one scenario spec and one session memo key.
        """
        return tuple(sorted(self.tenants))

    def scenario(self) -> Scenario | None:
        ids = self.ordered()
        if not ids:
            return None
        instances = tuple(
            ModelInstance(zoo.build(self.tenants[tenant][0]),
                          self.tenants[tenant][1], instance_name=tenant)
            for tenant in ids)
        return Scenario(name=f"sim:{self.trace.name}:" + "+".join(ids),
                        instances=instances,
                        use_case=self.trace.use_case)

    def deadlines(self) -> tuple[float | None, ...]:
        return tuple(self.tenants[tenant][2]
                     for tenant in self.ordered())


def _segment_counts(session: Session,
                    position_before: int) -> tuple[int, int]:
    """This submit's (num_segments, num_segments_recosted).

    Reads the session perf log delta rather than ``result.perf``: a
    memo-served result carries the *original* run's report, but costs
    this event nothing (no new report is logged).
    """
    new = session.perf_reports_tail(
        session.perf_log_position() - position_before)
    return (sum(p.num_segments for p in new),
            sum(p.num_segments_recosted for p in new))


def replay(trace: Trace, *, mode: str = "warm",
           template: str = "het_sides_3x3", policy: str = "scar",
           objective: str = "edp", nsplits: int = 4,
           budget: SearchBudget | None = None,
           backend: str | None = None, beam: int | None = None,
           eval_mode: str | None = None,
           jobs: int = 1, client=None) -> list[EventOutcome]:
    """Replay ``trace``, re-scheduling after every event.

    Returns one :class:`EventOutcome` per trace event, in order.  The
    outcomes' results are deterministic (mode- and client-independent,
    the parity contract); the perf fields are not.  ``client`` switches
    submission to a live service replica (``mode`` then only labels the
    report -- warmth is the replica's).
    """
    if mode not in MODES:
        raise ConfigError(f"unknown replay mode {mode!r}; known: {MODES}")
    warm_session = Session(warm_caches=True) \
        if client is None and mode == "warm" else None

    active = _ActiveSet(trace)
    outcomes: list[EventOutcome] = []
    for event in trace.events:
        active.apply(event)
        scenario = active.scenario()
        if scenario is None:
            outcomes.append(EventOutcome(
                event=event, tenants=(), deadlines=(), result=None))
            continue
        request = ScheduleRequest.for_scenario(
            scenario, template=template, policy=policy,
            objective=objective, nsplits=nsplits,
            budget=budget if budget is not None else SearchBudget(),
            backend=backend, beam=beam, eval_mode=eval_mode, jobs=jobs)

        wall_start = time.perf_counter()
        if client is not None:
            result = client.submit(request).result()
            wall = time.perf_counter() - wall_start
            perf = result.perf
            segments = 0 if perf is None else perf.num_segments
            recosted = 0 if perf is None else perf.num_segments_recosted
            memo_hit = False
        else:
            session = warm_session if warm_session is not None \
                else Session()
            memo_hit = session.cached(request) is not None
            position_before = session.perf_log_position()
            result = session.submit(request)
            wall = time.perf_counter() - wall_start
            segments, recosted = _segment_counts(session, position_before)
        outcomes.append(EventOutcome(
            event=event, tenants=active.ordered(),
            deadlines=active.deadlines(), result=result, wall_s=wall,
            num_segments=segments, num_segments_recosted=recosted,
            memo_hit=memo_hit))
    return outcomes


def replay_parity(trace: Trace, **kwargs) -> tuple[
        list[EventOutcome], list[EventOutcome], list[bool]]:
    """Run warm and cold replays and compare them event by event.

    Returns ``(warm, cold, parity)`` where ``parity[i]`` is the
    per-event :meth:`ScheduleResult.same_payload` verdict (``True`` for
    events with an empty active set on both sides).  Any ``False`` is a
    determinism bug -- warmth must never change results.
    """
    kwargs.pop("mode", None)
    warm = replay(trace, mode="warm", **kwargs)
    cold = replay(trace, mode="cold", **kwargs)
    parity = []
    for w, c in zip(warm, cold):
        if w.result is None or c.result is None:
            parity.append(w.result is None and c.result is None)
        else:
            parity.append(w.result.same_payload(c.result))
    return warm, cold, parity
