"""Seeded tenant event traces: the dynamic-workload input of the sim layer.

A :class:`Trace` is an ordered sequence of :class:`TenantEvent` values --
tenants ARRIVE and DEPART at integer ticks, each arrival carrying the
tenant's model, batch and latency deadline (its SLA).  Replaying a trace
(:mod:`repro.sim.replay`) re-schedules the active tenant set at every
event, which is the paper's setting made dynamic: many tenants sharing
one MCM package, coming and going.

Traces are either written by hand (JSON, ``kind:"trace"``) or generated
from a :class:`TraceSpec` (``kind:"trace_spec"``) via
:func:`generate_trace`.  Two seeded families exist:

* ``"arrivals"`` -- each tenant draws model/batch independently from the
  use-case Table III pools (the :mod:`repro.workloads.generator` shape,
  extended in time);
* ``"uunifast"`` -- the classic UUNIFAST utilization-splitting algorithm
  assigns each tenant a share of a total utilization budget, which maps
  to its batch size (heavier share, larger batch); the real-time
  task-generation idiom, driving load rather than drawing it.

Determinism contract (lint-guarded by SCAR002): the same spec produces a
byte-identical trace JSON.  All randomness flows through string-seeded
``random.Random`` streams -- one per tenant -- so traces are stable
across processes and hash randomization, and growing ``tenants`` keeps
earlier tenants' events identical.

Event ordering is canonical: sorted by ``(tick, kind, tenant)`` with
departures before arrivals at the same tick (capacity frees up first),
so trace identity is a pure function of its events.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass
from typing import Any, Sequence

from repro.api.wire import WIRE_VERSION, check_envelope, loads_document
from repro.errors import ConfigError
from repro.workloads import zoo
from repro.workloads.scenarios import use_case_batches, use_case_models

TRACE_KIND = "trace"
TRACE_SPEC_KIND = "trace_spec"

#: Event kinds, in same-tick execution order (departures free capacity
#: before the tick's arrivals are admitted).
EVENT_KINDS = ("depart", "arrive")

_FAMILIES = ("arrivals", "uunifast")


@dataclass(frozen=True)
class TenantEvent:
    """One tenant lifecycle edge.

    ``arrive`` events carry the tenant's workload (``model`` from the
    zoo, ``batch``) and its SLA (``deadline_s``: the end-to-end latency
    bound the tenant expects per scheduling round; ``None`` = best
    effort).  ``depart`` events carry only the tenant id -- workload
    fields on a departure are rejected rather than ignored, mirroring
    the generator's kind-irrelevant-field policy.
    """

    tick: int
    kind: str
    tenant: str
    model: str | None = None
    batch: int | None = None
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigError(
                f"unknown event kind {self.kind!r}; known: {EVENT_KINDS}")
        if not isinstance(self.tick, int) or isinstance(self.tick, bool) \
                or self.tick < 0:
            raise ConfigError(
                f"event tick must be a non-negative int, got {self.tick!r}")
        if not self.tenant or not isinstance(self.tenant, str):
            raise ConfigError(
                f"event tenant must be a non-empty string, "
                f"got {self.tenant!r}")
        if self.kind == "arrive":
            if self.model is None or self.batch is None:
                raise ConfigError(
                    f"arrive event for {self.tenant!r} needs model and "
                    f"batch")
            if self.batch < 1:
                raise ConfigError(
                    f"arrive event for {self.tenant!r}: batch must be "
                    f">= 1, got {self.batch}")
            if self.deadline_s is not None and self.deadline_s <= 0:
                raise ConfigError(
                    f"arrive event for {self.tenant!r}: deadline_s must "
                    f"be positive, got {self.deadline_s}")
        else:  # depart
            if self.model is not None or self.batch is not None \
                    or self.deadline_s is not None:
                raise ConfigError(
                    f"depart event for {self.tenant!r} must not carry "
                    f"model/batch/deadline_s")

    def sort_key(self) -> tuple[int, int, str]:
        """The canonical event order (departs first within a tick)."""
        return (self.tick, EVENT_KINDS.index(self.kind), self.tenant)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"tick": self.tick, "kind": self.kind,
                                "tenant": self.tenant}
        if self.kind == "arrive":
            data["model"] = self.model
            data["batch"] = self.batch
            data["deadline_s"] = self.deadline_s
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TenantEvent":
        try:
            return cls(tick=data["tick"], kind=data["kind"],
                       tenant=data["tenant"], model=data.get("model"),
                       batch=data.get("batch"),
                       deadline_s=data.get("deadline_s"))
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed tenant event: {exc}") from exc


@dataclass(frozen=True)
class Trace:
    """An ordered tenant event sequence over one use case.

    Validation enforces the replayable invariants up front: events in
    canonical order, every arrival introduces a not-currently-active
    tenant, every departure names an active one, and a re-arriving
    tenant carries the same workload each time (tenant identity means
    workload identity, so scenario construction is a pure function of
    the active set).
    """

    name: str
    events: tuple[TenantEvent, ...]
    use_case: str = "datacenter"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("trace needs a non-empty name")
        object.__setattr__(self, "events", tuple(self.events))
        active: set[str] = set()
        seen: dict[str, tuple] = {}
        previous: TenantEvent | None = None
        for event in self.events:
            if previous is not None \
                    and event.sort_key() < previous.sort_key():
                raise ConfigError(
                    f"trace {self.name!r}: events out of canonical order "
                    f"at tick {event.tick} ({event.tenant!r}); sort by "
                    f"(tick, depart-before-arrive, tenant)")
            if event.kind == "arrive":
                if event.tenant in active:
                    raise ConfigError(
                        f"trace {self.name!r}: tenant {event.tenant!r} "
                        f"arrives at tick {event.tick} while already "
                        f"active")
                workload = (event.model, event.batch, event.deadline_s)
                if seen.setdefault(event.tenant, workload) != workload:
                    raise ConfigError(
                        f"trace {self.name!r}: tenant {event.tenant!r} "
                        f"re-arrives with a different workload; tenant "
                        f"ids must map to one (model, batch, deadline)")
                active.add(event.tenant)
            else:
                if event.tenant not in active:
                    raise ConfigError(
                        f"trace {self.name!r}: tenant {event.tenant!r} "
                        f"departs at tick {event.tick} without being "
                        f"active")
                active.discard(event.tenant)
            previous = event

    def tenants(self) -> tuple[str, ...]:
        """All tenant ids that ever arrive, sorted."""
        return tuple(sorted({e.tenant for e in self.events
                             if e.kind == "arrive"}))

    def deadlines(self) -> dict[str, float | None]:
        """Tenant id -> its SLA (validation guarantees one per tenant)."""
        return {e.tenant: e.deadline_s for e in self.events
                if e.kind == "arrive"}

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": TRACE_KIND,
            "version": WIRE_VERSION,
            "name": self.name,
            "use_case": self.use_case,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Trace":
        check_envelope(data, TRACE_KIND)
        try:
            return cls(
                name=data["name"],
                use_case=data.get("use_case", "datacenter"),
                events=tuple(TenantEvent.from_dict(entry)
                             for entry in data["events"]),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed trace: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        return cls.from_dict(loads_document(text, "trace"))


@dataclass(frozen=True)
class TraceSpec:
    """Declarative description of one seeded trace family.

    ``family`` selects the sampler; ``tenants`` lifecycles are generated
    over ``horizon`` integer ticks, each tenant from its own string-
    seeded RNG stream, so growing ``tenants`` or re-generating is
    bit-identical for existing tenants.

    ``arrivals`` draws each tenant's model and batch uniformly from the
    use-case pools (``models`` / ``batches`` override them).

    ``uunifast`` splits ``utilization`` (total load, in units of "pool-
    maximum batches"; default 0.5 = half the package's heaviest uniform
    load) across the tenants with the UUNIFAST algorithm and maps each
    share to a batch from the sorted pool -- so the *load profile* is
    the seeded quantity, the real-time-systems idiom.  ``batches``
    overrides the pool being mapped onto; a per-tenant ``model`` pool
    is drawn as in ``arrivals``.

    Deadlines are drawn log-uniformly from ``deadline_range`` (seconds);
    ``None`` generates best-effort tenants.
    """

    family: str
    seed: int = 0
    tenants: int = 4
    horizon: int = 16
    use_case: str = "datacenter"
    models: tuple[str, ...] | None = None
    batches: tuple[int, ...] | None = None
    utilization: float = 0.5
    deadline_range: tuple[float, float] | None = (0.05, 0.5)
    name: str | None = None

    def __post_init__(self) -> None:
        if self.family not in _FAMILIES:
            raise ConfigError(
                f"unknown trace family {self.family!r}; "
                f"known: {_FAMILIES}")
        if self.tenants < 1:
            raise ConfigError(
                f"tenants must be >= 1, got {self.tenants}")
        if self.horizon < 2:
            raise ConfigError(
                f"horizon must be >= 2 ticks, got {self.horizon}")
        if not 0.0 < self.utilization <= 1.0:
            raise ConfigError(
                f"utilization must be in (0, 1], got {self.utilization}")
        if self.models is not None:
            object.__setattr__(self, "models", tuple(self.models))
        if self.batches is not None:
            batches = tuple(self.batches)
            if not batches or any(b < 1 for b in batches):
                raise ConfigError(
                    f"batches must be a non-empty pool of ints >= 1, "
                    f"got {self.batches!r}")
            object.__setattr__(self, "batches", batches)
        if self.deadline_range is not None:
            low, high = self.deadline_range
            if not 0 < low <= high:
                raise ConfigError(
                    f"deadline_range must satisfy 0 < low <= high, "
                    f"got {self.deadline_range!r}")
            object.__setattr__(self, "deadline_range",
                               (float(low), float(high)))

    def trace_name(self) -> str:
        return self.name or (f"sim:{self.family}:{self.use_case}:"
                             f"s{self.seed}x{self.tenants}")

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": TRACE_SPEC_KIND,
            "version": WIRE_VERSION,
            "family": self.family,
            "seed": self.seed,
            "tenants": self.tenants,
            "horizon": self.horizon,
            "use_case": self.use_case,
            "models": None if self.models is None else list(self.models),
            "batches": None if self.batches is None
            else list(self.batches),
            "utilization": self.utilization,
            "deadline_range": None if self.deadline_range is None
            else list(self.deadline_range),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceSpec":
        check_envelope(data, TRACE_SPEC_KIND)
        try:
            return cls(
                family=data["family"],
                seed=data.get("seed", 0),
                tenants=data.get("tenants", 4),
                horizon=data.get("horizon", 16),
                use_case=data.get("use_case", "datacenter"),
                models=None if data.get("models") is None
                else tuple(data["models"]),
                batches=None if data.get("batches") is None
                else tuple(data["batches"]),
                utilization=data.get("utilization", 0.5),
                deadline_range=None
                if data.get("deadline_range") is None
                else tuple(data["deadline_range"]),
                name=data.get("name"),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed trace spec: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TraceSpec":
        return cls.from_dict(loads_document(text, "trace spec"))


# -- generation ------------------------------------------------------------


def _uunifast(total: float, count: int,
              rng: random.Random) -> tuple[float, ...]:
    """The UUNIFAST utilization split: ``count`` shares summing to
    ``total``, uniformly distributed over the valid simplex (Bini &
    Buttazzo's algorithm, the standard real-time task generator)."""
    shares = []
    remaining = total
    for i in range(1, count):
        next_remaining = remaining * rng.random() ** (1.0 / (count - i))
        shares.append(remaining - next_remaining)
        remaining = next_remaining
    shares.append(remaining)
    return tuple(shares)


def _lifecycle(rng: random.Random,
               horizon: int) -> tuple[int, int]:
    """(arrive, depart) ticks with at least one tick of residency."""
    arrive = rng.randrange(0, horizon - 1)
    depart = rng.randrange(arrive + 1, horizon)
    return arrive, depart


def _deadline(rng: random.Random,
              deadline_range: tuple[float, float] | None) -> float | None:
    """A log-uniform SLA draw (scale-free across the range)."""
    if deadline_range is None:
        return None
    low, high = deadline_range
    if low == high:
        return low
    return math.exp(rng.uniform(math.log(low), math.log(high)))


def generate_trace(spec: TraceSpec) -> Trace:
    """Materialize a spec's trace, deterministically.

    Tenant ``i`` depends only on ``(spec, i)`` -- its RNG stream is
    seeded ``trace:<family>:<seed>:<i>`` -- except for the ``uunifast``
    utilization split, which by construction couples all shares through
    one stream (``trace:uunifast:<seed>:shares``).
    """
    model_pool = tuple(spec.models) if spec.models is not None \
        else use_case_models(spec.use_case)
    batch_pool = tuple(sorted(spec.batches)) if spec.batches is not None \
        else tuple(sorted(use_case_batches(spec.use_case)))
    for model_name in model_pool:
        zoo.build(model_name)  # validates the pool up front

    shares: tuple[float, ...] | None = None
    if spec.family == "uunifast":
        share_rng = random.Random(
            f"trace:uunifast:{spec.seed}:shares:{spec.tenants}")
        shares = _uunifast(spec.utilization, spec.tenants, share_rng)

    events: list[TenantEvent] = []
    for i in range(spec.tenants):
        rng = random.Random(f"trace:{spec.family}:{spec.seed}:{i}")
        model = rng.choice(model_pool)
        if spec.family == "arrivals":
            batch = rng.choice(batch_pool)
        else:
            assert shares is not None
            # Map the tenant's utilization share onto the sorted batch
            # pool: share/utilization is its fraction of total load.
            fraction = shares[i] / spec.utilization
            index = min(int(fraction * len(batch_pool)),
                        len(batch_pool) - 1)
            batch = batch_pool[index]
        arrive, depart = _lifecycle(rng, spec.horizon)
        deadline = _deadline(rng, spec.deadline_range)
        tenant = f"{model}#t{i}"
        events.append(TenantEvent(tick=arrive, kind="arrive",
                                  tenant=tenant, model=model, batch=batch,
                                  deadline_s=deadline))
        events.append(TenantEvent(tick=depart, kind="depart",
                                  tenant=tenant))
    events.sort(key=TenantEvent.sort_key)
    return Trace(name=spec.trace_name(), events=tuple(events),
                 use_case=spec.use_case)
