"""Simulation metrics: deadlines, SLA slack, churn and reschedule cost.

Turns a replay's per-event outcomes into a ``kind:"sim_report"`` wire
document.  The headline quantities:

* **deadline-miss rate** -- fraction of deadline-carrying tenants whose
  end-to-end latency exceeded their SLA at any event they were active
  for (the real-time analyzer's verdict, per tenant);
* **per-tenant slack** -- worst-case ``deadline - latency`` across the
  tenant's active events (negative = missed);
* **churn** -- per event, the fraction of tenants present in both the
  previous and current schedule whose placement signature (window,
  layer span, chiplet node) changed: how much the re-schedule moved;
* **reschedule cost** -- wall time and segment (re-)costings per event,
  the quantities the warm replay's caches are there to shrink.

Like every perf report in the repo, wall-time fields are documented as
non-identity: two replays of the same trace produce identical metrics
*except* ``total_wall_s``/``mean_wall_s`` (compare with
:func:`strip_nonidentity`, which the CI determinism smoke does).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Sequence

from repro.api.wire import WIRE_VERSION, check_envelope, loads_document
from repro.errors import ConfigError
from repro.sim.replay import EventOutcome
from repro.sim.trace import Trace

SIM_REPORT_KIND = "sim_report"


@dataclass(frozen=True)
class TenantReport:
    """One tenant's SLA verdict over the whole replay.

    ``worst_latency_s`` is the tenant's maximum end-to-end latency
    across the events it was active for; ``min_slack_s`` the matching
    worst-case slack (``None`` deadline -> ``None`` slack, never a
    miss).  ``events_active`` counts scheduled events the tenant
    participated in (0 means it never coexisted with a schedulable
    set -- vacuously no miss).
    """

    tenant: str
    model: str
    batch: int
    deadline_s: float | None
    worst_latency_s: float
    min_slack_s: float | None
    missed: bool
    events_active: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "model": self.model,
            "batch": self.batch,
            "deadline_s": self.deadline_s,
            "worst_latency_s": self.worst_latency_s,
            "min_slack_s": self.min_slack_s,
            "missed": self.missed,
            "events_active": self.events_active,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TenantReport":
        try:
            return cls(
                tenant=data["tenant"], model=data["model"],
                batch=data["batch"], deadline_s=data.get("deadline_s"),
                worst_latency_s=data["worst_latency_s"],
                min_slack_s=data.get("min_slack_s"),
                missed=data["missed"],
                events_active=data["events_active"],
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed tenant report: {exc}") from exc


@dataclass(frozen=True)
class SimReport:
    """The replay's aggregate verdict (``kind:"sim_report"``)."""

    trace: str
    mode: str
    num_events: int
    num_scheduled: int
    deadline_miss_rate: float
    tenants: tuple[TenantReport, ...]
    mean_churn: float
    total_wall_s: float
    mean_wall_s: float
    total_segments: int
    total_segments_recosted: int
    memo_hits: int

    def render(self) -> str:
        """Human-readable block (the CLI text format)."""
        lines = [
            f"trace {self.trace} ({self.mode} replay): "
            f"{self.num_scheduled}/{self.num_events} events scheduled, "
            f"{self.memo_hits} memo hits",
            f"deadlines      {self.deadline_miss_rate:.1%} missed "
            f"({sum(1 for t in self.tenants if t.missed)}/"
            f"{sum(1 for t in self.tenants if t.deadline_s is not None)}"
            f" SLA tenants)",
            f"churn          {self.mean_churn:.1%} of shared tenants "
            f"moved per event",
            f"reschedule     {self.mean_wall_s * 1e3:.1f} ms mean "
            f"({self.total_wall_s * 1e3:.1f} ms total), "
            f"{self.total_segments_recosted}/{self.total_segments} "
            f"segments re-costed",
        ]
        for tenant in self.tenants:
            slack = "best-effort" if tenant.min_slack_s is None else \
                f"slack {tenant.min_slack_s * 1e3:+.2f} ms" \
                + (" MISS" if tenant.missed else "")
            lines.append(
                f"  - {tenant.tenant} (batch {tenant.batch}): "
                f"worst {tenant.worst_latency_s * 1e3:.2f} ms, {slack}")
        return "\n".join(lines)

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": SIM_REPORT_KIND,
            "version": WIRE_VERSION,
            "trace": self.trace,
            "mode": self.mode,
            "num_events": self.num_events,
            "num_scheduled": self.num_scheduled,
            "deadline_miss_rate": self.deadline_miss_rate,
            "tenants": [tenant.to_dict() for tenant in self.tenants],
            "mean_churn": self.mean_churn,
            "total_wall_s": self.total_wall_s,
            "mean_wall_s": self.mean_wall_s,
            "total_segments": self.total_segments,
            "total_segments_recosted": self.total_segments_recosted,
            "memo_hits": self.memo_hits,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SimReport":
        check_envelope(data, SIM_REPORT_KIND)
        try:
            return cls(
                trace=data["trace"], mode=data["mode"],
                num_events=data["num_events"],
                num_scheduled=data["num_scheduled"],
                deadline_miss_rate=data["deadline_miss_rate"],
                tenants=tuple(TenantReport.from_dict(entry)
                              for entry in data["tenants"]),
                mean_churn=data["mean_churn"],
                total_wall_s=data["total_wall_s"],
                mean_wall_s=data["mean_wall_s"],
                total_segments=data["total_segments"],
                total_segments_recosted=data["total_segments_recosted"],
                memo_hits=data["memo_hits"],
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed sim report: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SimReport":
        return cls.from_dict(loads_document(text, "sim report"))


def strip_nonidentity(data: dict[str, Any]) -> dict[str, Any]:
    """A sim-report dict with the run-varying perf fields zeroed.

    Determinism checks compare reports through this: everything except
    wall time is bit-identical across replays of the same trace.
    """
    cleaned = dict(data)
    cleaned["total_wall_s"] = 0.0
    cleaned["mean_wall_s"] = 0.0
    return cleaned


def _tenant_latency(outcome: EventOutcome, tenant: str) -> float:
    """One tenant's end-to-end latency in one event's schedule.

    The evaluator's per-model chain latencies summed across windows
    (``Lat(SG_m)`` per window, model identified by its scenario index).
    """
    assert outcome.result is not None
    index = outcome.tenants.index(tenant)
    return outcome.result.metrics.model_latency(index)


def build_report(trace: Trace, mode: str,
                 outcomes: Sequence[EventOutcome]) -> SimReport:
    """Fold a replay's outcomes into the wire report."""
    workloads: dict[str, tuple[str, int, float | None]] = {}
    for event in trace.events:
        if event.kind == "arrive":
            assert event.model is not None and event.batch is not None
            workloads[event.tenant] = \
                (event.model, event.batch, event.deadline_s)

    worst: dict[str, float] = {}
    active_counts: dict[str, int] = {}
    scheduled = [o for o in outcomes if o.result is not None]
    for outcome in scheduled:
        for tenant in outcome.tenants:
            latency = _tenant_latency(outcome, tenant)
            worst[tenant] = max(worst.get(tenant, 0.0), latency)
            active_counts[tenant] = active_counts.get(tenant, 0) + 1

    tenants = []
    for tenant in sorted(workloads):
        model, batch, deadline = workloads[tenant]
        worst_latency = worst.get(tenant, 0.0)
        slack = None if deadline is None else deadline - worst_latency
        tenants.append(TenantReport(
            tenant=tenant, model=model, batch=batch, deadline_s=deadline,
            worst_latency_s=worst_latency, min_slack_s=slack,
            missed=slack is not None and slack < 0
            and active_counts.get(tenant, 0) > 0,
            events_active=active_counts.get(tenant, 0)))
    with_sla = [t for t in tenants if t.deadline_s is not None]
    miss_rate = (sum(1 for t in with_sla if t.missed) / len(with_sla)
                 if with_sla else 0.0)

    churn_samples: list[float] = []
    for prev, curr in zip(scheduled, scheduled[1:]):
        prev_placements = prev.placements()
        curr_placements = curr.placements()
        shared = sorted(set(prev_placements) & set(curr_placements))
        if not shared:
            continue
        moved = sum(1 for tenant in shared
                    if prev_placements[tenant] != curr_placements[tenant])
        churn_samples.append(moved / len(shared))
    mean_churn = sum(churn_samples) / len(churn_samples) \
        if churn_samples else 0.0

    total_wall = sum(o.wall_s for o in scheduled)
    return SimReport(
        trace=trace.name, mode=mode,
        num_events=len(outcomes), num_scheduled=len(scheduled),
        deadline_miss_rate=miss_rate, tenants=tuple(tenants),
        mean_churn=mean_churn, total_wall_s=total_wall,
        mean_wall_s=total_wall / len(scheduled) if scheduled else 0.0,
        total_segments=sum(o.num_segments for o in outcomes),
        total_segments_recosted=sum(o.num_segments_recosted
                                    for o in outcomes),
        memo_hits=sum(1 for o in outcomes if o.memo_hit),
    )
