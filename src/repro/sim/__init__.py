"""Dynamic multi-tenant simulation: traces, replay, deadline metrics.

The repo's sixth subsystem makes the paper's setting dynamic: tenants
arrive and depart over time, each carrying a latency SLA, and the
scheduler re-plans the shared MCM package at every event::

    from repro.sim import TraceSpec, generate_trace, replay, build_report

    trace = generate_trace(TraceSpec(family="uunifast", seed=7))
    outcomes = replay(trace, mode="warm", nsplits=2)
    print(build_report(trace, "warm", outcomes).render())

Three modules, one contract:

* :mod:`repro.sim.trace` -- seeded, deterministic event traces
  (``kind:"trace"`` / ``kind:"trace_spec"`` wire documents);
* :mod:`repro.sim.replay` -- the event loop, re-scheduling the active
  set through one warm :class:`~repro.api.session.Session` (or cold
  from scratch, or a live service replica);
* :mod:`repro.sim.metrics` -- deadline-miss rate, per-tenant SLA slack,
  schedule churn and reschedule cost (``kind:"sim_report"``).

The contract: warm replay is bit-identical to cold replay per event
(:meth:`~repro.api.request.ScheduleResult.same_payload`), just cheaper
-- gated by ``benchmarks/test_sim_replay.py``.  The whole package is in
SCAR002's determinism lint scope.  See DESIGN.md ("The simulation
layer").
"""

from repro.sim.metrics import (
    SIM_REPORT_KIND,
    SimReport,
    TenantReport,
    build_report,
    strip_nonidentity,
)
from repro.sim.replay import MODES, EventOutcome, replay, replay_parity
from repro.sim.trace import (
    EVENT_KINDS,
    TRACE_KIND,
    TRACE_SPEC_KIND,
    TenantEvent,
    Trace,
    TraceSpec,
    generate_trace,
)

__all__ = [
    "EVENT_KINDS", "EventOutcome", "MODES", "SIM_REPORT_KIND",
    "SimReport", "TRACE_KIND", "TRACE_SPEC_KIND", "TenantEvent",
    "TenantReport", "Trace", "TraceSpec", "build_report",
    "generate_trace", "replay", "replay_parity", "strip_nonidentity",
]
