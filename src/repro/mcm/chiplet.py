"""AI accelerator chiplet (Definition 2).

``c = {df, N_PE, BW_noc, BW_mem, Sz_mem}`` -- a chiplet is fully described
by its dataflow class and resource tuple.  Two chiplets with equal fields
belong to the same *class* for cost-database purposes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dataflow.dataflow import by_name
from repro.errors import HardwareError
from repro.units import MB


@dataclass(frozen=True)
class Chiplet:
    """One accelerator chiplet.

    ``dataflow``    registered dataflow name (``nvdla`` / ``shidiannao``).
    ``num_pes``     processing-engine count.
    ``sram_bytes``  L2 shared scratchpad size (paper: 10 MB).
    ``noc_gbps``    on-chiplet operand-delivery bandwidth.
    ``mem_gbps``    chiplet shared-memory port bandwidth.
    """

    dataflow: str
    num_pes: int
    sram_bytes: int = 10 * MB
    noc_gbps: float = 512.0
    mem_gbps: float = 512.0

    def __post_init__(self) -> None:
        by_name(self.dataflow)  # validates the dataflow exists
        if self.num_pes < 1:
            raise HardwareError(f"num_pes must be >= 1, got {self.num_pes}")
        if self.sram_bytes < 1:
            raise HardwareError(
                f"sram_bytes must be >= 1, got {self.sram_bytes}")
        if self.noc_gbps <= 0 or self.mem_gbps <= 0:
            raise HardwareError("bandwidths must be positive")

    def with_dataflow(self, dataflow: str) -> "Chiplet":
        """Same resources, different dataflow class."""
        return replace(self, dataflow=dataflow)

    @property
    def class_key(self) -> tuple:
        """Hashable chiplet-class identity (used by the cost database)."""
        return (self.dataflow, self.num_pes, self.sram_bytes, self.noc_gbps,
                self.mem_gbps)


def datacenter_chiplet(dataflow: str) -> Chiplet:
    """Paper's datacenter operating point: 4096 PEs, 10 MB L2."""
    return Chiplet(dataflow=dataflow, num_pes=4096, sram_bytes=10 * MB,
                   noc_gbps=512.0, mem_gbps=512.0)


def arvr_chiplet(dataflow: str) -> Chiplet:
    """Paper's AR/VR (edge) operating point: 256 PEs, 10 MB L2."""
    return Chiplet(dataflow=dataflow, num_pes=256, sram_bytes=10 * MB,
                   noc_gbps=32.0, mem_gbps=32.0)


def chiplet_for_use_case(dataflow: str, use_case: str) -> Chiplet:
    """Chiplet operating point for a scenario's use case."""
    if use_case == "datacenter":
        return datacenter_chiplet(dataflow)
    if use_case == "arvr":
        return arvr_chiplet(dataflow)
    raise HardwareError(f"unknown use case {use_case!r}")
