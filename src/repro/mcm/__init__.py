"""MCM hardware substrate: chiplets, topologies, package, comm and traffic."""

from repro.mcm.chiplet import (
    Chiplet,
    arvr_chiplet,
    chiplet_for_use_case,
    datacenter_chiplet,
)
from repro.mcm.comm import CommModel, Transfer
from repro.mcm.package import (
    DEFAULT_CLOCK_HZ,
    DRAM_GBPS,
    DRAM_LATENCY_S,
    NOP_GBPS_PER_CHIPLET,
    NOP_HOP_LATENCY_S,
    MCM,
)
from repro.mcm.templates import build, custom_mesh, template_names
from repro.mcm.topology import Topology, mesh, triangular
from repro.mcm.traffic import Flow, contention_factors

__all__ = [
    "Chiplet", "CommModel", "DEFAULT_CLOCK_HZ", "DRAM_GBPS",
    "DRAM_LATENCY_S", "Flow", "MCM", "NOP_GBPS_PER_CHIPLET",
    "NOP_HOP_LATENCY_S", "Topology", "Transfer", "arvr_chiplet", "build",
    "chiplet_for_use_case", "contention_factors", "custom_mesh",
    "datacenter_chiplet", "mesh", "template_names", "triangular",
]
