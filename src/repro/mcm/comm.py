"""Inter-chiplet and off-chip communication model (``Lat_com``, Sec. III-E).

Implements the paper's three-case transfer cost::

    Lat_com = 0                                         same chiplet
            = Sz/BW_nop + n_hops * Lat_hop + delta      same package
            = Sz/BW_mem + n_hops * Lat_hop + Lat_mem + delta    off-chip

``delta`` (NoP traffic conflicts) enters as a multiplicative congestion
factor on the serialization term, produced by
:mod:`repro.mcm.traffic`.  Energy aggregates per-bit transmission energy
over hops plus DRAM access energy (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mcm.package import MCM
from repro.units import pj_per_bit_to_pj_per_byte


@dataclass(frozen=True)
class Transfer:
    """Latency/energy of one data movement."""

    latency_s: float
    energy_j: float
    hops: int
    size_bytes: float

    @staticmethod
    def zero() -> "Transfer":
        return Transfer(latency_s=0.0, energy_j=0.0, hops=0, size_bytes=0.0)

    def __add__(self, other: "Transfer") -> "Transfer":
        return Transfer(
            latency_s=self.latency_s + other.latency_s,
            energy_j=self.energy_j + other.energy_j,
            hops=self.hops + other.hops,
            size_bytes=self.size_bytes + other.size_bytes,
        )


class CommModel:
    """Communication cost oracle for one MCM package.

    ``dram_pj_byte`` / ``nop_pj_byte`` default to the Table II figures via
    the package's energy table; congestion factors (``delta``) are supplied
    by callers per-flow (1.0 = contention-free).
    """

    def __init__(self, mcm: MCM, *, nop_pj_bit: float = 2.04,
                 dram_pj_bit: float = 14.8) -> None:
        self.mcm = mcm
        self.nop_pj_byte = pj_per_bit_to_pj_per_byte(nop_pj_bit)
        self.dram_pj_byte = pj_per_bit_to_pj_per_byte(dram_pj_bit)

    # -- the three Lat_com cases -----------------------------------------

    def chiplet_to_chiplet(self, size_bytes: float, src: int, dst: int,
                           congestion: float = 1.0) -> Transfer:
        """On-package transfer between two chiplets (0 if ``src == dst``)."""
        if src == dst or size_bytes <= 0:
            return Transfer.zero()
        hops = self.mcm.topology.hops(src, dst)
        serialization = size_bytes / (self.mcm.nop_gbps * 1e9)
        latency = serialization * max(congestion, 1.0) \
            + hops * self.mcm.nop_hop_s
        energy = size_bytes * self.nop_pj_byte * hops * 1e-12
        return Transfer(latency_s=latency, energy_j=energy, hops=hops,
                        size_bytes=size_bytes)

    def offchip(self, size_bytes: float, node: int,
                congestion: float = 1.0) -> Transfer:
        """DRAM read or write from ``node`` via its nearest side interface."""
        if size_bytes <= 0:
            return Transfer.zero()
        hops = self.mcm.io_hops(node)
        serialization = size_bytes / (self.mcm.offchip_gbps * 1e9)
        latency = serialization * max(congestion, 1.0) \
            + hops * self.mcm.nop_hop_s + self.mcm.dram_latency_s
        energy = (size_bytes * self.dram_pj_byte
                  + size_bytes * self.nop_pj_byte * hops) * 1e-12
        return Transfer(latency_s=latency, energy_j=energy, hops=hops,
                        size_bytes=size_bytes)

    # -- variable/fixed decomposition (for tile-granular pipelining) -------

    def chiplet_parts(self, size_bytes: float, src: int, dst: int,
                      congestion: float = 1.0) -> tuple[float, float, float]:
        """On-package transfer split into (variable_s, fixed_s, energy_j).

        The variable part scales with data volume (serialization); the
        fixed part (hop propagation) is paid once per transfer regardless
        of its size -- i.e. once per pipeline tile.
        """
        if src == dst or size_bytes <= 0:
            return 0.0, 0.0, 0.0
        hops = self.mcm.topology.hops(src, dst)
        variable = size_bytes / (self.mcm.nop_gbps * 1e9) \
            * max(congestion, 1.0)
        fixed = hops * self.mcm.nop_hop_s
        energy = size_bytes * self.nop_pj_byte * hops * 1e-12
        return variable, fixed, energy

    def offchip_parts(self, size_bytes: float, node: int,
                      congestion: float = 1.0) -> tuple[float, float, float]:
        """Off-chip transfer split into (variable_s, fixed_s, energy_j)."""
        if size_bytes <= 0:
            return 0.0, 0.0, 0.0
        hops = self.mcm.io_hops(node)
        variable = size_bytes / (self.mcm.offchip_gbps * 1e9) \
            * max(congestion, 1.0)
        fixed = hops * self.mcm.nop_hop_s + self.mcm.dram_latency_s
        energy = (size_bytes * self.dram_pj_byte
                  + size_bytes * self.nop_pj_byte * hops) * 1e-12
        return variable, fixed, energy

    def transfer(self, size_bytes: float, src: int | None, dst: int | None,
                 congestion: float = 1.0) -> Transfer:
        """General dispatcher: ``None`` endpoint means off-chip DRAM."""
        if src is None and dst is None:
            return Transfer.zero()
        if src is None:
            assert dst is not None
            return self.offchip(size_bytes, dst, congestion)
        if dst is None:
            return self.offchip(size_bytes, src, congestion)
        return self.chiplet_to_chiplet(size_bytes, src, dst, congestion)
