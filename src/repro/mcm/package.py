"""MCM AI accelerator package (Definition 3).

``H = {C, BW_offchip, BW_nop}`` plus the NoP topology and the Table II
micro-architecture parameters.  Chiplets on the two outer columns of the
package carry off-chip DRAM interfaces (as in the paper, which "integrates
memory interfaces on the sides of the outer chiplets").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import HardwareError
from repro.mcm.chiplet import Chiplet
from repro.mcm.topology import Topology

#: Table II package/off-chip parameters (28 nm scaled).
DRAM_LATENCY_S = 200e-9
DRAM_PJ_PER_BIT = 14.8
DRAM_GBPS = 64.0
NOP_HOP_LATENCY_S = 35e-9
NOP_PJ_PER_BIT = 2.04
NOP_GBPS_PER_CHIPLET = 100.0

#: Evaluation clock (Sec. V: "Latency estimates at 500 MHz").
DEFAULT_CLOCK_HZ = 500e6


@dataclass(frozen=True)
class MCM:
    """A multi-chip-module accelerator: chiplets + NoP + off-chip interface.

    ``chiplets[i]`` sits at ``topology.position(i)``.  ``name`` identifies
    the template for reporting (e.g. ``"het_sides_3x3"``).
    """

    name: str
    chiplets: tuple[Chiplet, ...]
    topology: Topology
    offchip_gbps: float = DRAM_GBPS
    nop_gbps: float = NOP_GBPS_PER_CHIPLET
    nop_hop_s: float = NOP_HOP_LATENCY_S
    dram_latency_s: float = DRAM_LATENCY_S
    clock_hz: float = DEFAULT_CLOCK_HZ

    def __post_init__(self) -> None:
        if len(self.chiplets) != self.topology.num_nodes:
            raise HardwareError(
                f"MCM {self.name!r}: {len(self.chiplets)} chiplets for a "
                f"{self.topology.rows}x{self.topology.cols} topology")
        if self.offchip_gbps <= 0 or self.nop_gbps <= 0:
            raise HardwareError("bandwidths must be positive")

    # -- chiplet access ---------------------------------------------------

    @property
    def num_chiplets(self) -> int:
        return len(self.chiplets)

    def chiplet(self, node: int) -> Chiplet:
        """Chiplet at node id ``node``."""
        try:
            return self.chiplets[node]
        except IndexError:
            raise HardwareError(
                f"node {node} out of range for MCM {self.name!r}") from None

    def dataflow_counts(self) -> dict[str, int]:
        """``n_dfi`` of Eq. (1): chiplet count per dataflow class."""
        counts: dict[str, int] = {}
        for chiplet in self.chiplets:
            counts[chiplet.dataflow] = counts.get(chiplet.dataflow, 0) + 1
        return counts

    def chiplet_classes(self) -> tuple[Chiplet, ...]:
        """One representative chiplet per distinct class, deterministic."""
        seen: dict[tuple, Chiplet] = {}
        for chiplet in self.chiplets:
            seen.setdefault(chiplet.class_key, chiplet)
        return tuple(seen[key] for key in sorted(seen))

    def nodes_with_dataflow(self, dataflow: str) -> tuple[int, ...]:
        """Node ids whose chiplet implements ``dataflow``."""
        return tuple(i for i, c in enumerate(self.chiplets)
                     if c.dataflow == dataflow)

    @property
    def is_heterogeneous(self) -> bool:
        return len(self.dataflow_counts()) > 1

    # -- geometry / off-chip ------------------------------------------------

    @cached_property
    def io_nodes(self) -> tuple[int, ...]:
        """Nodes carrying an off-chip memory interface (side columns).

        Cached (cached_property writes ``__dict__`` directly, which is
        fine on a frozen dataclass): the package is immutable and the
        traffic analyzer reads this on every off-chip flow.
        """
        nodes = []
        for node in range(self.num_chiplets):
            _, col = self.topology.position(node)
            if col == 0 or col == self.topology.cols - 1:
                nodes.append(node)
        return tuple(nodes)

    @cached_property
    def _io_table(self) -> tuple[tuple[int, int], ...]:
        """Per-node ``(nearest io node, hops to it)``, computed once."""
        table = []
        for node in range(self.num_chiplets):
            io = min(self.io_nodes,
                     key=lambda io: (self.topology.hops(node, io), io))
            table.append((io, self.topology.hops(node, io)))
        return tuple(table)

    def io_hops(self, node: int) -> int:
        """Hops from ``node`` to its nearest off-chip interface."""
        self.topology._check(node)
        return self._io_table[node][1]

    def nearest_io(self, node: int) -> int:
        """Nearest off-chip interface node (ties break to lowest id)."""
        self.topology._check(node)
        return self._io_table[node][0]

    def summary(self) -> str:
        """Human-readable one-paragraph description."""
        counts = ", ".join(f"{name}x{count}" for name, count
                           in sorted(self.dataflow_counts().items()))
        return (f"MCM {self.name}: {self.topology.rows}x{self.topology.cols} "
                f"{self.topology.kind}, chiplets [{counts}], "
                f"NoP {self.nop_gbps:g} GB/s, off-chip {self.offchip_gbps:g} "
                f"GB/s @ {self.clock_hz / 1e6:g} MHz")

    def grid_diagram(self) -> str:
        """ASCII diagram of the dataflow pattern (for reports/examples)."""
        rows = []
        for r in range(self.topology.rows):
            cells = []
            for c in range(self.topology.cols):
                df = self.chiplet(self.topology.node_at(r, c)).dataflow
                cells.append(df[:3].upper())
            rows.append(" ".join(cells))
        return "\n".join(rows)
