"""Network-on-package topologies (2D mesh and triangular).

The paper assumes a 2D-mesh NoP with XY routing (like Simba) and shows in
Sec. V-E that SCAR generalizes to other topologies because it only relies on
adjacency -- reproduced here with the triangular NoP (mesh plus one diagonal
per cell, Fig. 6 "Simba-T" / "Het-T").

Nodes are numbered row-major: node ``i`` sits at ``(i // cols, i % cols)``.
Routes are returned as sequences of directed links ``(src, dst)`` so the
traffic analyzer can attribute flows to individual links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import networkx as nx

from repro.errors import HardwareError

Link = tuple[int, int]


@dataclass(frozen=True)
class Topology:
    """An immutable NoP topology with deterministic routing.

    ``kind`` is ``"mesh"`` (XY routing) or ``"triangular"`` (BFS shortest
    path with lowest-node-id tie-breaking).
    """

    rows: int
    cols: int
    kind: str = "mesh"

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise HardwareError(
                f"topology must be at least 1x1, got {self.rows}x{self.cols}")
        if self.kind not in ("mesh", "triangular"):
            raise HardwareError(f"unknown topology kind {self.kind!r}")

    # -- basic geometry --------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.rows * self.cols

    def position(self, node: int) -> tuple[int, int]:
        """(row, col) of a node id."""
        self._check(node)
        return divmod(node, self.cols)

    def node_at(self, row: int, col: int) -> int:
        """Node id at (row, col)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise HardwareError(f"position ({row}, {col}) out of range")
        return row * self.cols + col

    def _check(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise HardwareError(
                f"node {node} out of range for {self.rows}x{self.cols}")

    # -- connectivity ----------------------------------------------------

    @lru_cache(maxsize=None)
    def edges(self) -> tuple[Link, ...]:
        """Undirected edge list (each edge once, low id first; memoized)."""
        result: list[Link] = []
        for node in range(self.num_nodes):
            row, col = self.position(node)
            if col + 1 < self.cols:
                result.append((node, node + 1))
            if row + 1 < self.rows:
                result.append((node, node + self.cols))
            if (self.kind == "triangular" and row + 1 < self.rows
                    and col + 1 < self.cols):
                result.append((node, node + self.cols + 1))
        return tuple(result)

    @lru_cache(maxsize=None)
    def neighbors(self, node: int) -> tuple[int, ...]:
        """Directly connected nodes, ascending (memoized)."""
        self._check(node)
        found = [b for a, b in self.edges() if a == node]
        found += [a for a, b in self.edges() if b == node]
        return tuple(sorted(found))

    # -- routing ----------------------------------------------------------

    @lru_cache(maxsize=None)
    def route(self, src: int, dst: int) -> tuple[Link, ...]:
        """Directed link sequence from ``src`` to ``dst``.

        Mesh uses dimension-ordered XY routing (X first, then Y) exactly as
        the paper adopts; triangular uses deterministic BFS shortest paths.
        Memoized (topologies are frozen value objects and routes are pure
        functions of them): the traffic analyzer asks for the same few
        hundred routes millions of times per search.
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return ()
        if self.kind == "mesh":
            return self._xy_route(src, dst)
        path = self._shortest_paths()[(src, dst)]
        return tuple(zip(path[:-1], path[1:]))

    def hops(self, src: int, dst: int) -> int:
        """Hop count of the deterministic route."""
        return len(self.route(src, dst))

    def _xy_route(self, src: int, dst: int) -> tuple[Link, ...]:
        row, col = self.position(src)
        dst_row, dst_col = self.position(dst)
        links: list[Link] = []
        node = src
        while col != dst_col:
            col += 1 if dst_col > col else -1
            nxt = self.node_at(row, col)
            links.append((node, nxt))
            node = nxt
        while row != dst_row:
            row += 1 if dst_row > row else -1
            nxt = self.node_at(row, col)
            links.append((node, nxt))
            node = nxt
        return tuple(links)

    def _shortest_paths(self) -> dict[tuple[int, int], list[int]]:
        return _all_pairs_paths(self.rows, self.cols, self.kind)


@lru_cache(maxsize=None)
def _all_pairs_paths(rows: int, cols: int,
                     kind: str) -> dict[tuple[int, int], list[int]]:
    """Deterministic all-pairs shortest paths for non-mesh topologies."""
    topo = Topology(rows=rows, cols=cols, kind=kind)
    graph = nx.Graph()
    graph.add_nodes_from(range(topo.num_nodes))
    graph.add_edges_from(topo.edges())
    paths: dict[tuple[int, int], list[int]] = {}
    for src in range(topo.num_nodes):
        # nx BFS is deterministic given sorted adjacency insertion order.
        for dst, path in nx.single_source_shortest_path(graph, src).items():
            paths[(src, dst)] = path
    return paths


def mesh(rows: int, cols: int) -> Topology:
    """2D mesh with XY routing (the paper's default)."""
    return Topology(rows=rows, cols=cols, kind="mesh")


def triangular(rows: int, cols: int) -> Topology:
    """Mesh plus one diagonal per cell (Fig. 6 'T' templates)."""
    return Topology(rows=rows, cols=cols, kind="triangular")
