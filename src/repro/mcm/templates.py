"""The MCM chiplet organizations evaluated in the paper (Fig. 6).

=================  =====================================================
template           pattern
=================  =====================================================
``simba_shi_3x3``  3x3 mesh, all Shi-diannao
``simba_nvd_3x3``  3x3 mesh, all NVDLA
``het_cb_3x3``     3x3 mesh, checkerboard (NVDLA on even parity)
``het_sides_3x3``  3x3 mesh, NVDLA side columns, Shi centre column
``simba_shi_6x6``  6x6 mesh, all Shi-diannao ("Simba-6")
``simba_nvd_6x6``  6x6 mesh, all NVDLA ("Simba-6")
``het_cross_6x6``  6x6 mesh, Shi centre cross (rows/cols 2-3), NVDLA rest
``simba_t_shi``    3x3 triangular NoP, all Shi-diannao ("Simba-T")
``simba_t_nvd``    3x3 triangular NoP, all NVDLA ("Simba-T")
``het_t``          3x3 triangular NoP with the Het-Sides pattern
``het_2x2``        2x2 mesh, 3 NVDLA + 1 Shi (the Fig. 2 motivational MCM)
=================  =====================================================

The exact Fig. 6 color assignments are not machine-readable; patterns here
follow the names plus the paper's stated design intent (Het-Sides and
Het-Cross "enable both homogeneous and heterogeneous inter-chiplet
pipelining").
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.mcm.chiplet import Chiplet, chiplet_for_use_case
from repro.mcm.package import MCM
from repro.mcm.topology import Topology, mesh, triangular

NVD = "nvdla"
SHI = "shidiannao"


def _grid(name: str, topology: Topology, pattern: Callable[[int, int], str],
          use_case: str) -> MCM:
    chiplets = []
    for node in range(topology.num_nodes):
        row, col = topology.position(node)
        chiplets.append(chiplet_for_use_case(pattern(row, col), use_case))
    return MCM(name=name, chiplets=tuple(chiplets), topology=topology)


def _homogeneous(dataflow: str) -> Callable[[int, int], str]:
    return lambda row, col: dataflow


def _checkerboard(row: int, col: int) -> str:
    return NVD if (row + col) % 2 == 0 else SHI


def _sides(cols: int) -> Callable[[int, int], str]:
    return lambda row, col: NVD if col in (0, cols - 1) else SHI


def _cross(rows: int, cols: int) -> Callable[[int, int], str]:
    mid_rows = (rows // 2 - 1, rows // 2)
    mid_cols = (cols // 2 - 1, cols // 2)
    return lambda row, col: SHI if (row in mid_rows or col in mid_cols) \
        else NVD


def _motivational(row: int, col: int) -> str:
    # 3 NVDLA-like and 1 Shi-diannao-like (Sec. II-C).
    return SHI if (row, col) == (1, 1) else NVD


_TEMPLATES: dict[str, Callable[[str], MCM]] = {
    "simba_shi_3x3": lambda uc: _grid("simba_shi_3x3", mesh(3, 3),
                                      _homogeneous(SHI), uc),
    "simba_nvd_3x3": lambda uc: _grid("simba_nvd_3x3", mesh(3, 3),
                                      _homogeneous(NVD), uc),
    "het_cb_3x3": lambda uc: _grid("het_cb_3x3", mesh(3, 3),
                                   _checkerboard, uc),
    "het_sides_3x3": lambda uc: _grid("het_sides_3x3", mesh(3, 3),
                                      _sides(3), uc),
    "simba_shi_6x6": lambda uc: _grid("simba_shi_6x6", mesh(6, 6),
                                      _homogeneous(SHI), uc),
    "simba_nvd_6x6": lambda uc: _grid("simba_nvd_6x6", mesh(6, 6),
                                      _homogeneous(NVD), uc),
    "het_cross_6x6": lambda uc: _grid("het_cross_6x6", mesh(6, 6),
                                      _cross(6, 6), uc),
    "simba_t_shi": lambda uc: _grid("simba_t_shi", triangular(3, 3),
                                    _homogeneous(SHI), uc),
    "simba_t_nvd": lambda uc: _grid("simba_t_nvd", triangular(3, 3),
                                    _homogeneous(NVD), uc),
    "het_t": lambda uc: _grid("het_t", triangular(3, 3), _sides(3), uc),
    "het_2x2": lambda uc: _grid("het_2x2", mesh(2, 2), _motivational, uc),
}


def template_names() -> tuple[str, ...]:
    """All known template names."""
    return tuple(sorted(_TEMPLATES))


def build(name: str, use_case: str = "datacenter") -> MCM:
    """Build a Fig. 6 template at the given use-case operating point."""
    try:
        builder = _TEMPLATES[name]
    except KeyError:
        raise ConfigError(
            f"unknown MCM template {name!r}; known: {template_names()}"
        ) from None
    return builder(use_case)


def custom_mesh(name: str, rows: int, cols: int, dataflows: list[str],
                use_case: str = "datacenter") -> MCM:
    """Build an arbitrary mesh MCM from a row-major dataflow list."""
    topo = mesh(rows, cols)
    if len(dataflows) != topo.num_nodes:
        raise ConfigError(
            f"need {topo.num_nodes} dataflows for {rows}x{cols}, "
            f"got {len(dataflows)}")
    chiplets = tuple(chiplet_for_use_case(df, use_case) for df in dataflows)
    return MCM(name=name, chiplets=chiplets, topology=topo)
