"""Static NoP traffic-conflict analysis (the ``delta`` term of Sec. III-E).

Given the set of flows active in a time window, each flow's congestion
factor is the maximum number of flows sharing any directed link along its
route (XY routes on mesh, BFS routes on triangular).  Off-chip flows
additionally share the package DRAM bandwidth: their congestion factor is
the number of concurrent off-chip flows.

This is a static (schedule-time) approximation of dynamic contention, which
is what an analytical scheduler can see; the paper's delta plays the same
role.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.mcm.package import MCM

#: Marker for the off-chip endpoint of a flow.
OFFCHIP = None


@dataclass(frozen=True)
class Flow:
    """One logical transfer active during a time window.

    ``src``/``dst`` are node ids, or ``None`` for off-chip DRAM (the route
    then runs between the on-package endpoint and its nearest interface).
    """

    src: int | None
    dst: int | None
    size_bytes: float

    @property
    def is_offchip(self) -> bool:
        return self.src is None or self.dst is None


def _route_of(mcm: MCM, flow: Flow) -> tuple[tuple[int, int], ...]:
    """Directed links used by a flow (off-chip flows route to nearest IO)."""
    if flow.src is None and flow.dst is None:
        return ()
    if flow.src is None:
        assert flow.dst is not None
        io = mcm.nearest_io(flow.dst)
        return mcm.topology.route(io, flow.dst)
    if flow.dst is None:
        io = mcm.nearest_io(flow.src)
        return mcm.topology.route(flow.src, io)
    return mcm.topology.route(flow.src, flow.dst)


def contention_factors(mcm: MCM, flows: list[Flow]) -> list[float]:
    """Per-flow congestion factor (>= 1.0), aligned with ``flows``.

    A flow with no links (same chiplet, or zero-size) gets 1.0.  Off-chip
    flows take ``max(link contention, number of concurrent off-chip
    flows)`` since they also serialize on the shared DRAM channel.
    """
    routes = [_route_of(mcm, flow) for flow in flows]
    link_load: Counter[tuple[int, int]] = Counter()
    for route, flow in zip(routes, flows):
        if flow.size_bytes <= 0:
            continue
        for link in route:
            link_load[link] += 1
    num_offchip = sum(1 for flow in flows
                      if flow.is_offchip and flow.size_bytes > 0)
    factors: list[float] = []
    for route, flow in zip(routes, flows):
        if flow.size_bytes <= 0:
            factors.append(1.0)
            continue
        link_factor = max((link_load[link] for link in route), default=1)
        factor = float(link_factor)
        if flow.is_offchip:
            factor = max(factor, float(num_offchip))
        factors.append(max(factor, 1.0))
    return factors
