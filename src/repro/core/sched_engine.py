"""Scheduling engine (SCHED, Sec. IV-D): per-window candidate search.

Combines the SEG engine's top-k segmentations per model (Heuristic 1 step
2) with scheduling-tree placements, builds concrete
:class:`~repro.core.schedule.WindowSchedule` instances, evaluates each with
the full heterogeneous MCM cost model and returns the best one (plus the
evaluated population, which the Pareto figures consume).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product

from repro.core.budget import SearchBudget
from repro.core.metrics import ScheduleEvaluator, WindowMetrics
from repro.core.packing import WindowAssignment
from repro.core.schedule import Segment, WindowSchedule
from repro.core.scoring import Objective
from repro.core.sched_tree import NodeRank, Placement, placements
from repro.core.segmentation import (
    Cuts,
    RankedSegmentation,
    segments_from_cuts,
)
from repro.errors import SearchError


@dataclass(frozen=True)
class WindowCandidate:
    """One fully evaluated window schedule."""

    window: WindowSchedule
    metrics: WindowMetrics
    score: float


def build_window_schedule(window: WindowAssignment,
                          cuts_by_model: dict[int, Cuts],
                          placement: Placement) -> WindowSchedule:
    """Materialize a WindowSchedule from cuts + chiplet paths."""
    chains = []
    for model in window.models:
        layer_range = window.range_for(model)
        assert layer_range is not None
        ranges = segments_from_cuts(layer_range[0], layer_range[1],
                                    cuts_by_model[model])
        path = placement[model]
        if len(path) < len(ranges):
            raise SearchError(
                f"model {model}: {len(ranges)} segments but only "
                f"{len(path)} chiplets in path")
        chain = tuple(
            Segment(model=model, start=s, stop=e, node=path[i])
            for i, (s, e) in enumerate(ranges))
        chains.append(chain)
    return WindowSchedule(index=window.index, chains=tuple(chains))


def node_affinity_ranks(window: WindowAssignment,
                        evaluator: ScheduleEvaluator,
                        objective: Objective) -> dict[int, NodeRank]:
    """Per-model chiplet preference (Fig. 1 heterogeneity-aware assignment).

    Each model ranks every chiplet by the objective score of executing its
    window layers on that chiplet's *class* (computed once per class, so
    this is cheap against the memoized cost database).  The ranks depend
    only on (window ranges, objective), so they are memoized in the
    evaluator's cache and shared across provisioning allocations.
    """
    return evaluator.cache.lookup(
        "affinity", (window.ranges, objective),
        lambda: _node_affinity_ranks(window, evaluator, objective))


def _node_affinity_ranks(window: WindowAssignment,
                         evaluator: ScheduleEvaluator,
                         objective: Objective) -> dict[int, NodeRank]:
    mcm = evaluator.mcm
    database = evaluator.database
    ranks: dict[int, NodeRank] = {}
    for model, start, stop in window.ranges:
        instance = evaluator.scenario[model]
        class_scores: dict[tuple, float] = {}
        for chiplet in mcm.chiplet_classes():
            latency = sum(database.latency_s(instance.layer(i), chiplet)
                          for i in range(start, stop))
            energy = sum(database.energy_j(instance.layer(i), chiplet)
                         for i in range(start, stop))
            class_scores[chiplet.class_key] = objective.score_values(
                latency, energy)
        ranks[model] = {
            node: class_scores[mcm.chiplet(node).class_key]
            for node in range(mcm.num_chiplets)
        }
    return ranks


def search_window(window: WindowAssignment,
                  ranked_by_model: dict[int, list[RankedSegmentation]],
                  evaluator: ScheduleEvaluator, objective: Objective,
                  budget: SearchBudget,
                  collect: list[WindowCandidate] | None = None,
                  beam: int | None = None) -> WindowCandidate:
    """Explore (segmentation x placement) for one window; return the best.

    Segmentation combinations are visited in ascending summed-proxy-score
    order; each combination receives an equal share of the window's
    evaluation budget.  ``collect``, when given, receives every evaluated
    candidate (for Pareto reporting).

    ``beam`` prunes the combination list to the ``beam``
    best-proxy-scored entries *before* the budget is split, trading
    population coverage for a deeper placement search per surviving
    combination.  ``beam=None`` (the default everywhere, including every
    paper figure) keeps the full exhaustive enumeration and is
    bit-identical to the pre-beam engine.
    """
    if beam is not None and beam < 1:
        raise SearchError(f"beam must be None or >= 1, got {beam}")
    models = list(window.models)
    combos = sorted(
        product(*(ranked_by_model[m] for m in models)),
        key=lambda combo: sum(r.score for r in combo))
    if not combos:
        raise SearchError(f"window {window.index}: no segmentations")
    if beam is not None:
        combos = combos[:beam]

    per_combo_budget = max(1, budget.max_candidates_per_window // len(combos))
    rng = random.Random(budget.seed + 7919 * window.index)
    node_ranks = node_affinity_ranks(window, evaluator, objective)

    best: WindowCandidate | None = None
    evaluated = 0
    for combo in combos:
        if evaluated >= budget.max_candidates_per_window:
            break
        cuts_by_model = {m: r.cuts for m, r in zip(models, combo)}
        # Place larger chains first (paper's subtree ordering intuition:
        # big subtrees constrain the forest the most).
        seg_counts = sorted(
            ((m, len(cuts_by_model[m]) + 1) for m in models),
            key=lambda mc: (-mc[1], mc[0]))
        combo_evals = 0
        for placement in placements(evaluator.mcm, seg_counts, budget, rng,
                                    node_ranks=node_ranks):
            window_schedule = build_window_schedule(window, cuts_by_model,
                                                    placement)
            metrics = evaluator.evaluate_window(window_schedule)
            score = objective.score_window(metrics)
            candidate = WindowCandidate(window=window_schedule,
                                        metrics=metrics, score=score)
            if collect is not None:
                collect.append(candidate)
            if best is None or candidate.score < best.score:
                best = candidate
            evaluated += 1
            combo_evals += 1
            if (combo_evals >= per_combo_budget
                    or evaluated >= budget.max_candidates_per_window):
                break
    if best is None:
        raise SearchError(
            f"window {window.index}: no feasible placement found "
            f"(models {models}, {evaluator.mcm.num_chiplets} chiplets)")
    return best
