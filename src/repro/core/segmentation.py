"""Segmentation engine (SEG, Sec. IV-C).

Partitions a window's per-model layer range into at most ``N_i`` contiguous
segments (Definition 5).  The search-space reduction follows the paper's
Heuristic 1: candidates from each model are ranked *independently* with a
cheap expected-cost pipeline proxy, and only the top-k per model reach the
SCHED engine, turning the product space ``O(prod_i C(L_i, N_i - 1))`` into
``O(max_i C(L_i, N_i - 1))``.

Candidate generation enumerates every cut-set when the count fits the
budget, and otherwise samples deterministically while always retaining the
single-segment and load-balanced candidates.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from itertools import combinations

from repro.core.budget import SearchBudget
from repro.errors import SearchError

Cuts = tuple[int, ...]
"""Cut positions: segment boundaries inside (start, stop), ascending."""


def segments_from_cuts(start: int, stop: int, cuts: Cuts) -> tuple[tuple[int, int], ...]:
    """Materialize [start, stop) sub-ranges from cut positions."""
    bounds = (start, *cuts, stop)
    return tuple((bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1))


def _balanced_cuts(start: int, stop: int, num_segments: int,
                   weights: list[float]) -> Cuts:
    """Cut positions that approximately balance per-segment weight."""
    total = sum(weights)
    if total <= 0:
        # Degenerate: equal layer counts.
        size = (stop - start) / num_segments
        return tuple(start + round(size * i) for i in range(1, num_segments))
    target = total / num_segments
    cuts: list[int] = []
    acc = 0.0
    for offset, weight in enumerate(weights[:-1]):
        acc += weight
        if acc >= target * (len(cuts) + 1) and len(cuts) < num_segments - 1:
            cuts.append(start + offset + 1)
    while len(cuts) < num_segments - 1:
        candidate = (cuts[-1] if cuts else start) + 1
        if candidate >= stop:
            break
        cuts.append(candidate)
    return tuple(sorted(set(cuts)))


def enumerate_cut_candidates(start: int, stop: int, max_segments: int,
                             weights: list[float],
                             budget: SearchBudget) -> list[Cuts]:
    """Candidate cut-sets for one model's window range.

    Always includes the no-cut candidate and, per segment count, the
    weight-balanced candidate; fills the rest exhaustively or by seeded
    sampling up to ``budget.max_segment_candidates``.
    """
    num_layers = stop - start
    if num_layers < 1:
        raise SearchError(f"empty layer range [{start}, {stop})")
    max_segments = max(1, min(max_segments, num_layers))
    positions = list(range(start + 1, stop))

    candidates: list[Cuts] = [()]
    seen: set[Cuts] = {()}

    def add(cuts: Cuts) -> None:
        if cuts not in seen:
            seen.add(cuts)
            candidates.append(cuts)

    for num_segments in range(2, max_segments + 1):
        add(_balanced_cuts(start, stop, num_segments, weights))

    rng = random.Random(budget.seed)
    for num_segments in range(2, max_segments + 1):
        num_cuts = num_segments - 1
        space = math.comb(len(positions), num_cuts)
        room = budget.max_segment_candidates - len(candidates)
        if room <= 0:
            break
        if space <= room:
            for cuts in combinations(positions, num_cuts):
                add(tuple(cuts))
        else:
            for _ in range(room):
                add(tuple(sorted(rng.sample(positions, num_cuts))))
    return candidates[:budget.max_segment_candidates]


@dataclass(frozen=True)
class RankedSegmentation:
    """A candidate segmentation with its proxy score (lower is better)."""

    cuts: Cuts
    score: float


def proxy_pipeline_score(start: int, stop: int, cuts: Cuts,
                         per_layer_expected_s: list[float], batch: int,
                         boundary_bytes: list[float],
                         nop_gbps: float) -> float:
    """Cheap expected-latency proxy for one model's segmentation.

    Uses per-sample expected layer latencies (Eq. 1 values divided by
    batch): pipeline latency = sum of per-sample segment latencies + the
    bottleneck segment repeated ``batch - 1`` times, plus the NoP
    serialization of each cut's boundary activations.

    ``per_layer_expected_s[i]`` / ``boundary_bytes[i]`` are indexed by
    absolute layer index minus ``start``.
    """
    ranges = segments_from_cuts(start, stop, cuts)
    steadies = []
    for seg_start, seg_stop in ranges:
        compute = sum(per_layer_expected_s[i - start] / batch
                      for i in range(seg_start, seg_stop))
        comm = 0.0
        if seg_stop != stop:  # a cut follows this segment
            comm = (boundary_bytes[seg_stop - 1 - start] / batch) \
                / (nop_gbps * 1e9)
        steadies.append(compute + comm)
    return sum(steadies) + (batch - 1) * max(steadies)


def rank_segmentations(start: int, stop: int, max_segments: int,
                       per_layer_expected_s: list[float], batch: int,
                       boundary_bytes: list[float], nop_gbps: float,
                       budget: SearchBudget) -> list[RankedSegmentation]:
    """Heuristic 1 step 1: rank a model's candidates independently.

    Returns the top ``budget.top_k_segmentations`` candidates by proxy
    score (deterministic ties by cut tuple).
    """
    weights = list(per_layer_expected_s)
    candidates = enumerate_cut_candidates(start, stop, max_segments,
                                          weights, budget)
    ranked = [
        RankedSegmentation(
            cuts=cuts,
            score=proxy_pipeline_score(start, stop, cuts,
                                       per_layer_expected_s, batch,
                                       boundary_bytes, nop_gbps))
        for cuts in candidates
    ]
    ranked.sort(key=lambda r: (r.score, r.cuts))
    return ranked[:budget.top_k_segmentations]
