"""Scheduling trees (SCHED search space, Sec. IV-D).

The paper represents the per-window placement space as a forest of
scheduling trees: tree nodes are chiplets, edges follow the interposer
adjacency, each model owns a subtree rooted at a candidate start chiplet,
and a constrained DFS that reaches the model's node budget ``N_i`` emits a
candidate path.  A chiplet appears at most once across the whole tree
(exclusive occupancy).

This module enumerates exactly that: simple adjacency paths per model,
composed across models under mutual exclusion, in a deterministic seeded
order bounded by the :class:`~repro.core.budget.SearchBudget`.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from repro.core.budget import SearchBudget
from repro.mcm.package import MCM

Path = tuple[int, ...]
Placement = dict[int, Path]
"""Model index -> ordered chiplet path hosting its segment chain."""

NodeRank = dict[int, float]
"""Node id -> affinity score for one model (lower = preferred)."""


def simple_paths(mcm: MCM, start: int, length: int,
                 blocked: frozenset[int], limit: int,
                 node_rank: NodeRank | None = None) -> list[Path]:
    """Simple paths of exactly ``length`` nodes starting at ``start``.

    Paths follow the NoP adjacency (tree edges), never revisit a node and
    avoid ``blocked`` nodes.  At most ``limit`` paths are returned in DFS
    order; neighbors expand by ascending ``node_rank`` (heterogeneity-aware
    chiplet assignment: preferred-dataflow chiplets are explored first),
    with ascending node id as the deterministic tie-break.
    """
    if start in blocked or length < 1:
        return []
    results: list[Path] = []
    stack: list[int] = [start]
    visited = {start}

    def ordered_neighbors(node: int) -> list[int]:
        neighbors = mcm.topology.neighbors(node)
        if node_rank is None:
            return list(neighbors)
        return sorted(neighbors,
                      key=lambda n: (node_rank.get(n, 0.0), n))

    def dfs() -> None:
        if len(results) >= limit:
            return
        if len(stack) == length:
            results.append(tuple(stack))
            return
        for neighbor in ordered_neighbors(stack[-1]):
            if neighbor in visited or neighbor in blocked:
                continue
            stack.append(neighbor)
            visited.add(neighbor)
            dfs()
            visited.remove(neighbor)
            stack.pop()
            if len(results) >= limit:
                return

    dfs()
    return results


def placements(mcm: MCM, seg_counts: Sequence[tuple[int, int]],
               budget: SearchBudget,
               rng: random.Random | None = None,
               node_ranks: dict[int, NodeRank] | None = None
               ) -> Iterator[Placement]:
    """Enumerate complete placements for a window's segment chains.

    ``seg_counts`` is ``[(model, num_segments), ...]`` in the order models
    are placed (the paper's subtree order).  ``node_ranks[model]`` orders
    start chiplets (and DFS expansion) by the model's expected cost on
    each chiplet's dataflow class -- the heterogeneity-aware assignment of
    Fig. 1; without it, starts are visited in a seeded shuffled order.
    Yields lazily -- callers stop consuming when their evaluation budget
    is spent.
    """
    rng = rng or random.Random(budget.seed)
    models = list(seg_counts)
    total_needed = sum(count for _, count in models)
    if total_needed > mcm.num_chiplets:
        return

    start_orders: list[list[int]] = []
    for model, _ in models:
        order = list(range(mcm.num_chiplets))
        rng.shuffle(order)
        if node_ranks is not None and model in node_ranks:
            rank = node_ranks[model]
            order.sort(key=lambda n: rank.get(n, 0.0))
        start_orders.append(order)

    def assign(idx: int, blocked: frozenset[int],
               acc: Placement) -> Iterator[Placement]:
        if idx == len(models):
            yield dict(acc)
            return
        model, count = models[idx]
        rank = node_ranks.get(model) if node_ranks else None
        starts_tried = 0
        for start in start_orders[idx]:
            if start in blocked:
                continue
            paths = simple_paths(mcm, start, count, blocked,
                                 budget.max_paths_per_model, rank)
            if not paths:
                continue
            starts_tried += 1
            for path in paths:
                acc[model] = path
                yield from assign(idx + 1, blocked | frozenset(path), acc)
            acc.pop(model, None)
            if starts_tried >= budget.max_root_combos:
                break

    yield from assign(0, frozenset(), {})
