"""Optimization metrics (Definition 10's ``OptMetric``).

The paper's searches target one of latency, energy or EDP at a time
("Latency Search", "Energy Search", "EDP Search"), and the framework allows
user-defined functions of a schedule's metrics; both are supported here.
Scores are *minimized*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.core.metrics import ScheduleMetrics, WindowMetrics
from repro.errors import SearchError


class OptTarget(enum.Enum):
    """Built-in optimization targets."""

    LATENCY = "latency"
    ENERGY = "energy"
    EDP = "edp"


MetricFn = Callable[[float, float], float]
"""Custom metric: ``f(latency_s, energy_j) -> score`` (lower is better)."""


@dataclass(frozen=True)
class Objective:
    """A configurable optimization objective.

    Either one of the built-in :class:`OptTarget` values or a custom
    callable over (latency, energy).  ``latency_bound_s`` optionally
    invalidates candidates whose latency exceeds a constraint (the
    "EDP search lower-bounded by the latency search" extension discussed
    in Sec. VI): violating candidates score ``inf``.
    """

    target: OptTarget = OptTarget.EDP
    custom: MetricFn | None = None
    latency_bound_s: float | None = None

    def score_values(self, latency_s: float, energy_j: float) -> float:
        """Score raw latency/energy values (lower is better)."""
        if self.latency_bound_s is not None \
                and latency_s > self.latency_bound_s:
            return float("inf")
        if self.custom is not None:
            return self.custom(latency_s, energy_j)
        if self.target is OptTarget.LATENCY:
            return latency_s
        if self.target is OptTarget.ENERGY:
            return energy_j
        if self.target is OptTarget.EDP:
            return latency_s * energy_j
        raise SearchError(f"unknown target {self.target!r}")

    def score(self, metrics: ScheduleMetrics) -> float:
        """Score a full schedule."""
        return self.score_values(metrics.latency_s, metrics.energy_j)

    def score_window(self, metrics: WindowMetrics) -> float:
        """Score a single window (used by the per-window search)."""
        return self.score_values(metrics.latency_s, metrics.energy_j)

    @property
    def name(self) -> str:
        if self.custom is not None:
            return "custom"
        return self.target.value


def latency_objective() -> Objective:
    """The paper's Latency Search."""
    return Objective(target=OptTarget.LATENCY)


def energy_objective() -> Objective:
    """The paper's Energy Search."""
    return Objective(target=OptTarget.ENERGY)


def edp_objective() -> Objective:
    """The paper's (default) EDP Search."""
    return Objective(target=OptTarget.EDP)


def objective_by_name(name: str) -> Objective:
    """Resolve ``"latency" | "energy" | "edp"`` to an objective."""
    try:
        return Objective(target=OptTarget(name))
    except ValueError:
        raise SearchError(
            f"unknown objective {name!r}; expected one of "
            f"{[t.value for t in OptTarget]}") from None
