"""Time-window characterization and layer packing (MCM-Reconfig, Alg. 1).

The MCM-Reconfig engine splits the scheduling horizon into ``nsplits + 1``
periodic time windows and packs each model's layers into them with the
paper's first-fit greedy heuristic (Algorithm 1): a layer joins the current
window if its *expected* execution time (Eq. 1) fits in the remaining
slack, otherwise the model's remaining layers defer to the next window.
The final window is unbounded, and windows that receive no layers are
dropped ("dynamically controlling the number of time windows").

A uniform packing baseline (equal layer counts per window) is provided for
the Sec. V-E packing ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.database import LayerCostDatabase
from repro.errors import SchedulingError
from repro.mcm.package import MCM
from repro.workloads.model import Scenario


@dataclass(frozen=True)
class WindowAssignment:
    """Layers each model contributes to one window: (model, start, stop)."""

    index: int
    ranges: tuple[tuple[int, int, int], ...]

    def range_for(self, model: int) -> tuple[int, int] | None:
        for m, start, stop in self.ranges:
            if m == model:
                return (start, stop)
        return None

    @property
    def models(self) -> tuple[int, ...]:
        return tuple(m for m, _, _ in self.ranges)

    @property
    def total_layers(self) -> int:
        return sum(stop - start for _, start, stop in self.ranges)


@dataclass(frozen=True)
class PackingPlan:
    """An ordered, validated window partitioning (Theorem 2 holds)."""

    windows: tuple[WindowAssignment, ...]

    @property
    def num_windows(self) -> int:
        return len(self.windows)

    def validate(self, scenario: Scenario) -> None:
        """Check every model's layers are exactly covered, in order."""
        cursors = [0] * len(scenario)
        for window in self.windows:
            for model, start, stop in window.ranges:
                if start != cursors[model]:
                    raise SchedulingError(
                        f"model {model}: window {window.index} starts at "
                        f"{start}, expected {cursors[model]}")
                if stop <= start:
                    raise SchedulingError(
                        f"model {model}: empty range in window "
                        f"{window.index}")
                cursors[model] = stop
        for model, cursor in enumerate(cursors):
            if cursor != scenario[model].num_layers:
                raise SchedulingError(
                    f"model {model}: covered {cursor} of "
                    f"{scenario[model].num_layers} layers")


def expected_layer_latencies(scenario: Scenario, mcm: MCM,
                             database: LayerCostDatabase) -> list[list[float]]:
    """``E(Lat(l))`` per (model, layer) over the MCM composition (Eq. 1).

    Latencies are at the instance batch size (the unit the greedy packer
    budgets with).
    """
    counts = mcm.dataflow_counts()
    classes = {c.dataflow: c for c in mcm.chiplet_classes()}
    total = mcm.num_chiplets
    expected: list[list[float]] = []
    for instance in scenario:
        row = []
        for layer in instance.layers():
            value = 0.0
            for dataflow, count in counts.items():
                value += (count / total) * database.latency_s(
                    layer, classes[dataflow])
            row.append(value)
        expected.append(row)
    return expected


def expected_layer_energies(scenario: Scenario, mcm: MCM,
                            database: LayerCostDatabase) -> list[list[float]]:
    """Expected per-layer energy over the MCM composition (Eq. 1 analogue)."""
    counts = mcm.dataflow_counts()
    classes = {c.dataflow: c for c in mcm.chiplet_classes()}
    total = mcm.num_chiplets
    expected: list[list[float]] = []
    for instance in scenario:
        row = []
        for layer in instance.layers():
            value = 0.0
            for dataflow, count in counts.items():
                value += (count / total) * database.energy_j(
                    layer, classes[dataflow])
            row.append(value)
        expected.append(row)
    return expected


def _build_plan(per_model_windows: list[list[list[int]]],
                scenario: Scenario) -> PackingPlan:
    """Assemble a plan from per-model per-window layer-index lists."""
    max_windows = max(len(w) for w in per_model_windows)
    windows: list[WindowAssignment] = []
    for win_idx in range(max_windows):
        ranges = []
        for model, model_windows in enumerate(per_model_windows):
            if win_idx >= len(model_windows) or not model_windows[win_idx]:
                continue
            layers = model_windows[win_idx]
            ranges.append((model, layers[0], layers[-1] + 1))
        if ranges:
            windows.append(WindowAssignment(index=len(windows),
                                            ranges=tuple(ranges)))
    if not windows:
        raise SchedulingError("packing produced no windows")
    plan = PackingPlan(windows=tuple(windows))
    plan.validate(scenario)
    return plan


def greedy_pack(scenario: Scenario, expected: list[list[float]],
                nsplits: int) -> PackingPlan:
    """Algorithm 1: first-fit greedy layer packing into periodic windows.

    ``expected[m][l]`` is the Eq. (1) expected latency of layer ``l`` of
    model ``m``.  The horizon is the worst-case (largest) expected model
    latency, cut into ``nsplits + 1`` equal periods; the last window is
    unbounded.
    """
    if nsplits < 0:
        raise SchedulingError(f"nsplits must be >= 0, got {nsplits}")
    num_windows = nsplits + 1
    horizon = max(sum(row) for row in expected)
    period = horizon / num_windows
    boundaries = [period * (i + 1) for i in range(num_windows)]

    per_model: list[list[list[int]]] = []
    for model, row in enumerate(expected):
        model_windows: list[list[int]] = [[] for _ in range(num_windows)]
        win_idx = 0
        used = 0.0
        for layer_idx, cost in enumerate(row):
            while True:
                if win_idx >= num_windows - 1:
                    # Final window: unbounded slack.
                    model_windows[num_windows - 1].append(layer_idx)
                    used += cost
                    break
                slack = boundaries[win_idx] - used
                if cost <= slack:
                    model_windows[win_idx].append(layer_idx)
                    used += cost
                    break
                # Defer to the next window; account the skipped slack.
                used = boundaries[win_idx]
                win_idx += 1
        per_model.append(model_windows)
    return _build_plan(per_model, scenario)


def uniform_pack(scenario: Scenario, nsplits: int) -> PackingPlan:
    """Ablation baseline: equal layer counts per window, per model."""
    if nsplits < 0:
        raise SchedulingError(f"nsplits must be >= 0, got {nsplits}")
    num_windows = nsplits + 1
    per_model: list[list[list[int]]] = []
    for instance in scenario:
        total = instance.num_layers
        base, extra = divmod(total, num_windows)
        model_windows: list[list[int]] = []
        cursor = 0
        for win in range(num_windows):
            size = base + (1 if win < extra else 0)
            model_windows.append(list(range(cursor, cursor + size)))
            cursor += size
        per_model.append(model_windows)
    return _build_plan(per_model, scenario)
