"""Schedule analysis: occupancy, traffic and energy breakdowns.

Downstream users (and the paper's discussion section) want to know *why*
a schedule scores the way it does: which chiplets are busy, how much data
crosses the NoP vs the off-chip channel, and where the energy goes.  This
module derives those breakdowns from a placed schedule, complementing the
scalar metrics of :mod:`repro.core.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import ScheduleEvaluator, ScheduleMetrics
from repro.core.schedule import Schedule
from repro.mcm.traffic import Flow
from repro.workloads.model import Scenario


@dataclass(frozen=True)
class TrafficBreakdown:
    """Bytes moved per channel class over a whole schedule."""

    nop_bytes: float
    offchip_weight_bytes: float
    offchip_activation_bytes: float

    @property
    def offchip_bytes(self) -> float:
        return self.offchip_weight_bytes + self.offchip_activation_bytes

    @property
    def total_bytes(self) -> float:
        return self.nop_bytes + self.offchip_bytes

    @property
    def on_package_fraction(self) -> float:
        """Share of traffic kept on-package (the paper's data-reuse win)."""
        total = self.total_bytes
        return self.nop_bytes / total if total else 0.0


@dataclass(frozen=True)
class ChipletUtilization:
    """Per-chiplet busy time across the schedule."""

    node: int
    dataflow: str
    busy_s: float
    windows_active: int
    models_hosted: tuple[int, ...]


@dataclass(frozen=True)
class ScheduleReport:
    """Full analysis artifact for one evaluated schedule."""

    metrics: ScheduleMetrics
    traffic: TrafficBreakdown
    utilization: tuple[ChipletUtilization, ...]
    compute_energy_j: float
    comm_energy_j: float

    @property
    def mean_busy_fraction(self) -> float:
        """Average chiplet busy time over the schedule makespan."""
        makespan = self.metrics.latency_s
        if makespan <= 0 or not self.utilization:
            return 0.0
        return sum(u.busy_s for u in self.utilization) \
            / (makespan * len(self.utilization))

    def render(self) -> str:
        lines = [self.metrics.summary()]
        lines.append(
            f"traffic: {self.traffic.nop_bytes / 1e6:.2f} MB on-package, "
            f"{self.traffic.offchip_weight_bytes / 1e6:.2f} MB weight + "
            f"{self.traffic.offchip_activation_bytes / 1e6:.2f} MB "
            f"activation off-chip "
            f"({self.traffic.on_package_fraction * 100:.1f}% on-package)")
        lines.append(
            f"energy split: {self.compute_energy_j * 1e3:.2f} mJ compute, "
            f"{self.comm_energy_j * 1e3:.2f} mJ communication")
        lines.append(f"mean chiplet busy fraction: "
                     f"{self.mean_busy_fraction * 100:.1f}%")
        for entry in self.utilization:
            if entry.windows_active == 0:
                continue
            lines.append(
                f"  c{entry.node} ({entry.dataflow[:3]}): "
                f"{entry.busy_s * 1e3:.3f} ms busy, "
                f"{entry.windows_active} window(s), models "
                f"{list(entry.models_hosted)}")
        return "\n".join(lines)


def analyze_schedule(schedule: Schedule, scenario: Scenario,
                     evaluator: ScheduleEvaluator) -> ScheduleReport:
    """Produce the full breakdown for a placed schedule."""
    metrics = evaluator.evaluate(schedule)

    # Traffic: reuse the evaluator's window flow derivation.
    nop = 0.0
    off_weight = 0.0
    off_act = 0.0
    for window in schedule.windows:
        for chain in window.chains:
            batch = scenario[chain[0].model].batch
            for pos, segment in enumerate(chain):
                weight_bytes = sum(
                    scenario[segment.model].model[i].weight_bytes
                    for i in segment.layer_indices())
                off_weight += weight_bytes
                first = scenario[segment.model].model[segment.start] \
                    .with_batch(batch)
                if pos == 0:
                    off_act += first.input_bytes
                else:
                    prev = chain[pos - 1]
                    prev_out = scenario[prev.model].model[prev.stop - 1] \
                        .with_batch(batch)
                    if prev.node != segment.node:
                        nop += prev_out.output_bytes
            last = chain[-1]
            last_out = scenario[last.model].model[last.stop - 1] \
                .with_batch(batch)
            off_act += last_out.output_bytes
    traffic = TrafficBreakdown(nop_bytes=nop,
                               offchip_weight_bytes=off_weight,
                               offchip_activation_bytes=off_act)

    # Per-chiplet busy time: a chiplet hosting a model in a window is
    # busy for that model's chain latency in that window.
    busy: dict[int, float] = {}
    windows_active: dict[int, int] = {}
    hosted: dict[int, set[int]] = {}
    for window, wmetrics in zip(schedule.windows, metrics.windows):
        for chain in window.chains:
            model = chain[0].model
            chain_latency = wmetrics.model_latency(model)
            for segment in chain:
                node = segment.node
                assert node is not None
                busy[node] = busy.get(node, 0.0) + chain_latency
                windows_active[node] = windows_active.get(node, 0) + 1
                hosted.setdefault(node, set()).add(model)
    utilization = tuple(
        ChipletUtilization(
            node=node,
            dataflow=evaluator.mcm.chiplet(node).dataflow,
            busy_s=busy.get(node, 0.0),
            windows_active=windows_active.get(node, 0),
            models_hosted=tuple(sorted(hosted.get(node, ()))))
        for node in range(evaluator.mcm.num_chiplets))

    # Energy split: recompute pure-compute energy; the remainder of the
    # evaluated energy is communication (NoP + DRAM + re-streaming).
    compute = 0.0
    for window in schedule.windows:
        for chain in window.chains:
            batch = scenario[chain[0].model].batch
            for segment in chain:
                chiplet = evaluator.mcm.chiplet(segment.node)
                for idx in segment.layer_indices():
                    layer = scenario[segment.model].model[idx] \
                        .with_batch(batch)
                    compute += evaluator.database.energy_j(layer, chiplet)
    comm = max(metrics.energy_j - compute, 0.0)
    return ScheduleReport(metrics=metrics, traffic=traffic,
                          utilization=utilization,
                          compute_energy_j=compute, comm_energy_j=comm)


def gantt(schedule: Schedule, scenario: Scenario,
          evaluator: ScheduleEvaluator, width: int = 72) -> str:
    """ASCII Gantt chart: chiplet rows, window columns scaled by latency.

    Each cell shows the first letter of the model occupying the chiplet
    during that window ('.' = idle).
    """
    metrics = evaluator.evaluate(schedule)
    total = metrics.latency_s or 1.0
    cols = [max(1, int(round(w.latency_s / total * width)))
            for w in metrics.windows]
    rows = []
    for node in range(evaluator.mcm.num_chiplets):
        cells = []
        for window, span in zip(schedule.windows, cols):
            marker = "."
            for chain in window.chains:
                if any(seg.node == node for seg in chain):
                    marker = scenario[chain[0].model].name[0]
                    break
            cells.append(marker * span)
        dataflow = evaluator.mcm.chiplet(node).dataflow[:3]
        rows.append(f"c{node:<2d} {dataflow} |{'|'.join(cells)}|")
    legend = ", ".join(f"{inst.name[0]}={inst.name}" for inst in scenario)
    return "\n".join(rows + [f"legend: {legend}, .=idle"])
