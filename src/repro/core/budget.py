"""Search budget knobs shared by the SEG and SCHED engines.

The paper runs an exhaustive search over its heuristic-reduced space for
3x3 MCMs; this reproduction exposes the same heuristics (top-k
segmentation, sampled tree roots) with explicit caps so that experiment
runtime is bounded and deterministic.  Defaults are generous enough that
3x3 searches cover the heuristic space effectively exhaustively.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import SearchError


@dataclass(frozen=True)
class SearchBudget:
    """Deterministic caps for the per-window search.

    ``top_k_segmentations``        Heuristic 1's k: candidates kept per model.
    ``max_segment_candidates``     segmentations enumerated per model before
                                   ranking (sampled beyond this count).
    ``max_root_combos``            scheduling trees explored (root-position
                                   combinations across models).
    ``max_paths_per_model``        DFS paths kept per model per tree.
    ``max_candidates_per_window``  fully-evaluated window schedules.
    ``seed``                       RNG seed for any sampling.
    """

    top_k_segmentations: int = 3
    max_segment_candidates: int = 128
    max_root_combos: int = 24
    max_paths_per_model: int = 12
    max_candidates_per_window: int = 400
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("top_k_segmentations", "max_segment_candidates",
                     "max_root_combos", "max_paths_per_model",
                     "max_candidates_per_window"):
            if getattr(self, name) < 1:
                raise SearchError(f"{name} must be >= 1")

    def fitness_slice(self, num_fitness_evals: int,
                      floor: int = 4) -> "SearchBudget":
        """Per-individual share of the window budget for GA fitness.

        The evolutionary SEG search spends one SCHED-engine run per
        individual; dividing the window's candidate budget across the
        expected ``num_fitness_evals`` keeps the GA's total evaluation
        count comparable to the enumerative engine's.
        """
        share = self.max_candidates_per_window // max(num_fitness_evals, 1)
        return replace(self,
                       max_candidates_per_window=max(floor, share))


#: Reduced budget for quick tests and CI benches.
QUICK_BUDGET = SearchBudget(
    top_k_segmentations=2,
    max_segment_candidates=32,
    max_root_combos=8,
    max_paths_per_model=6,
    max_candidates_per_window=96,
)
