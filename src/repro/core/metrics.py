"""Schedule evaluator: the Sec. III-E performance model.

Implements, per time window and model chain::

    Lat(sg)   = sum_l Lat_comp(l) + Lat_ip_com(sg) + Lat_op_com(sg)
    Lat(SG_m) = sum_k Lat(sg_k | b') + (b/b' - 1) * max_k Lat(sg_k | b')
    Lat(tw)   = max_m Lat(SG_m)
    Lat(Sc)   = sum_tw Lat(tw)

with the three-case communication model of :mod:`repro.mcm.comm`, static
NoP contention (``delta``) from :mod:`repro.mcm.traffic`, and energy
aggregation over compute + NoP + DRAM.

Modeling decisions (see DESIGN.md):

* The pipelining mini-batch ``b'`` is searched over the divisors of the
  instance batch; the latency-minimizing value is used.
* Inter-chiplet pipelining additionally streams each mini-batch in ``t``
  spatial tiles (t in ``_TILE_FACTORS``): data-proportional costs divide
  by ``t`` while fixed per-transfer latencies (NoP hops, DRAM access) are
  paid per tile.  This is the paper's fine-grained inter-layer pipelining
  (without it, batch-1 workloads such as U-Net could never benefit from a
  multi-chiplet chain).
* A segment's weights are *resident* when they fit in the chiplet L2 next
  to the activation working set; non-resident weights are re-streamed from
  DRAM every mini-batch (this is what makes mapping a large model onto a
  single chiplet expensive, the paper's core motivation for pipelining).
* Inter-segment activation transfers are attributed to the receiving
  segment (``ip_com``); the final segment pays the off-chip write-back
  (``op_com``).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.core.evalcache import EvalCache, segment_place_key, window_key
from repro.core.schedule import Schedule, Segment, WindowSchedule
from repro.dataflow.database import LayerCostDatabase
from repro.errors import SchedulingError
from repro.mcm.comm import CommModel
from repro.mcm.package import MCM
from repro.mcm.traffic import Flow, contention_factors
from repro.workloads.layer import Layer
from repro.workloads.model import Scenario


@functools.lru_cache(maxsize=None)
def _divisors(value: int) -> tuple[int, ...]:
    """Divisors of ``value`` in ascending order (O(sqrt n) enumeration).

    Memoized: every chain costing of a batch-``b`` model asks for the
    same tuple, and distinct batch sizes per process number a handful.
    """
    small: list[int] = []
    large: list[int] = []
    d = 1
    while d * d <= value:
        if value % d == 0:
            small.append(d)
            if d != value // d:
                large.append(value // d)
        d += 1
    return tuple(small + large[::-1])


#: Spatial tile factors tried for fine-grained inter-chiplet pipelining.
_TILE_FACTORS = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class ModelWindowMetrics:
    """One model's chain metrics inside one window."""

    model: int
    latency_s: float
    energy_j: float
    minibatch: int
    tile_factor: int
    segment_latencies_s: tuple[float, ...]


@dataclass(frozen=True)
class WindowMetrics:
    """Aggregated metrics of one time window."""

    index: int
    latency_s: float
    energy_j: float
    per_model: tuple[ModelWindowMetrics, ...]

    @functools.cached_property
    def _latency_by_model(self) -> dict[int, float]:
        # cached_property writes instance.__dict__ directly, which works
        # on frozen dataclasses; equality/hash still derive from the
        # declared fields only.
        return {entry.model: entry.latency_s for entry in self.per_model}

    def model_latency(self, model: int) -> float:
        """Latency of a model's chain in this window (0 if absent)."""
        return self._latency_by_model.get(model, 0.0)


@dataclass(frozen=True)
class ScheduleMetrics:
    """Whole-schedule evaluation (the scheduler's optimization surface)."""

    latency_s: float
    energy_j: float
    windows: tuple[WindowMetrics, ...]

    @property
    def edp(self) -> float:
        """Energy-delay product in J*s."""
        return self.latency_s * self.energy_j

    def model_latency(self, model: int) -> float:
        """Cumulative latency of one model across windows."""
        return sum(w.model_latency(model) for w in self.windows)

    def summary(self) -> str:
        return (f"latency {self.latency_s * 1e3:.3f} ms, "
                f"energy {self.energy_j * 1e3:.3f} mJ, "
                f"EDP {self.edp * 1e3:.4f} mJ.s")


@dataclass(frozen=True)
class _SegmentCost:
    """Pre-resolved per-segment quantities reused across mini-batch trials.

    Node-id independent (everything derives from the segment's placement
    class), so instances live in the ``static`` table of the
    :class:`~repro.core.evalcache.EvalCache` and are shared across
    candidates that place the same sub-chain on any same-class chiplet.
    """

    weight_bytes: float
    resident: bool
    weight_load_var_s: float
    weight_load_fix_s: float
    weight_load_j: float

    @property
    def weight_load_s(self) -> float:
        return self.weight_load_var_s + self.weight_load_fix_s


class ScheduleEvaluator:
    """Evaluates :class:`Schedule` instances on one (scenario, MCM) pair.

    One evaluator is created per experiment and shared across the search;
    all per-layer costs come from the memoized
    :class:`~repro.dataflow.database.LayerCostDatabase`.
    """

    def __init__(self, scenario: Scenario, mcm: MCM,
                 database: LayerCostDatabase | None = None,
                 cache: EvalCache | None = None) -> None:
        self.scenario = scenario
        self.mcm = mcm
        self.database = database or LayerCostDatabase(clock_hz=mcm.clock_hz)
        self.comm = CommModel(mcm)
        #: Memoized segment/window costs; valid for this (scenario, mcm)
        #: pair only.
        self.cache = cache if cache is not None else EvalCache()
        # io_hops enters every cache key; MCM.io_hops rescans the package
        # per call, so precompute it once for the hot path.
        self._io_hops = tuple(mcm.io_hops(node)
                              for node in range(mcm.num_chiplets))

    # -- public API -------------------------------------------------------

    def evaluate(self, schedule: Schedule, *,
                 validate: bool = True) -> ScheduleMetrics:
        """Evaluate a complete schedule (validates Theorems 1/2 first)."""
        if validate:
            schedule.validate(self.scenario)
        windows = tuple(self.evaluate_window(w) for w in schedule.windows)
        return ScheduleMetrics(
            latency_s=sum(w.latency_s for w in windows),
            energy_j=sum(w.energy_j for w in windows),
            windows=windows,
        )

    def evaluate_window(self, window: WindowSchedule) -> WindowMetrics:
        """Evaluate one time window (``Lat(tw) = max_m Lat(SG_m)``).

        Results are memoized on the window's structure, so duplicate
        placements produced by the search (and the final re-evaluation of
        the winning schedule) are free.
        """
        return self.cache.lookup("window", window_key(window),
                                 lambda: self._evaluate_window(window))

    def _evaluate_window(self, window: WindowSchedule) -> WindowMetrics:
        congestion = self._window_congestion(window)
        per_model = []
        for chain in window.chains:
            per_model.append(self._chain_metrics_cached(chain, congestion))
        latency = max((m.latency_s for m in per_model), default=0.0)
        energy = sum(m.energy_j for m in per_model)
        return WindowMetrics(index=window.index, latency_s=latency,
                             energy_j=energy, per_model=tuple(per_model))

    def _chain_metrics_cached(self, chain: tuple[Segment, ...],
                              congestion: dict[tuple, float]
                              ) -> ModelWindowMetrics:
        """Chain-costing hook: the base evaluator always recomputes.

        :class:`repro.engine.CandidateEvaluator` overrides this with the
        delta-evaluation fast path (memoize by chain structure + the
        congestion factors the chain actually reads), which is
        bit-identical because :meth:`_chain_metrics` is a pure function
        of exactly those inputs.
        """
        return self._chain_metrics(chain, congestion)

    # -- layers and costs ---------------------------------------------------

    def _layer(self, model: int, index: int, batch: int) -> Layer:
        return self.scenario[model].model[index].with_batch(batch)

    def _chiplet_of(self, segment: Segment):
        if segment.node is None:
            raise SchedulingError(f"segment {segment} is unplaced")
        return self.mcm.chiplet(segment.node)

    def _segment_compute(self, segment: Segment,
                         batch: int) -> tuple[float, float]:
        """(latency_s, energy_j) of a segment's compute at ``batch``.

        Cached by placement class rather than node id: the compute terms
        depend only on the chiplet class and the node's distance to its
        off-chip interface, so same-class placements share one entry.
        """
        chiplet = self._chiplet_of(segment)
        assert segment.node is not None
        key = (*segment_place_key(segment, chiplet,
                                  self._io_hops[segment.node]), batch)
        return self.cache.lookup(
            "compute", key,
            lambda: self._segment_compute_uncached(segment, chiplet, batch))

    def _segment_compute_uncached(self, segment: Segment, chiplet,
                                  batch: int) -> tuple[float, float]:
        latency = 0.0
        energy = 0.0
        for idx in segment.layer_indices():
            cost = self.database.cost(
                self._layer(segment.model, idx, batch), chiplet)
            latency += cost.latency_s(self.database.clock_hz)
            energy += cost.energy_j()
            # Intra-layer DRAM re-fetch rounds also pay the off-chip channel.
            if cost.dram_refetch_bytes > 0:
                extra = self.comm.offchip(cost.dram_refetch_bytes,
                                          segment.node)
                latency += extra.latency_s
                energy += extra.energy_j
        return latency, energy

    def _segment_weight_bytes(self, segment: Segment) -> float:
        return float(sum(
            self.scenario[segment.model].model[idx].weight_bytes
            for idx in segment.layer_indices()))

    # -- contention ---------------------------------------------------------

    def _window_flows(self, window: WindowSchedule) -> list[Flow]:
        """All logical transfers active in a window (full-batch sizes)."""
        flows: list[Flow] = []
        for chain in window.chains:
            batch = self.scenario[chain[0].model].batch
            for pos, segment in enumerate(chain):
                weight_bytes = self._segment_weight_bytes(segment)
                if weight_bytes:
                    flows.append(Flow(src=None, dst=segment.node,
                                      size_bytes=weight_bytes))
                first_layer = self._layer(segment.model, segment.start, batch)
                if pos == 0:
                    flows.append(Flow(src=None, dst=segment.node,
                                      size_bytes=float(first_layer.input_bytes)))
                else:
                    prev = chain[pos - 1]
                    prev_out = self._layer(prev.model, prev.stop - 1, batch)
                    flows.append(Flow(src=prev.node, dst=segment.node,
                                      size_bytes=float(prev_out.output_bytes)))
            last = chain[-1]
            last_out = self._layer(last.model, last.stop - 1, batch)
            flows.append(Flow(src=last.node, dst=None,
                              size_bytes=float(last_out.output_bytes)))
        return flows

    def _window_congestion(self, window: WindowSchedule) -> dict[tuple, float]:
        """Map (src, dst) endpoint pairs to their delta congestion factor."""
        flows = self._window_flows(window)
        factors = contention_factors(self.mcm, flows)
        congestion: dict[tuple, float] = {}
        for flow, factor in zip(flows, factors):
            key = (flow.src, flow.dst)
            congestion[key] = max(congestion.get(key, 1.0), factor)
        return congestion

    # -- chain (model-in-window) evaluation ----------------------------------

    def _chain_metrics(self, chain: tuple[Segment, ...],
                       congestion: dict[tuple, float]) -> ModelWindowMetrics:
        model = chain[0].model
        batch = self.scenario[model].batch
        seg_costs = [self._segment_static(seg) for seg in chain]

        best: ModelWindowMetrics | None = None
        for minibatch in _divisors(batch):
            for tile in _TILE_FACTORS:
                candidate = self._chain_at_minibatch(
                    chain, seg_costs, batch, minibatch, tile, congestion)
                if best is None \
                        or candidate.latency_s < best.latency_s - 1e-15:
                    best = candidate
        assert best is not None
        return best

    def _segment_static(self, segment: Segment) -> _SegmentCost:
        """Mini-batch-independent segment quantities (weights, residency)."""
        chiplet = self._chiplet_of(segment)
        assert segment.node is not None
        key = segment_place_key(segment, chiplet,
                                self._io_hops[segment.node])
        return self.cache.lookup(
            "static", key,
            lambda: self._segment_static_uncached(segment, chiplet))

    def _segment_static_uncached(self, segment: Segment,
                                 chiplet) -> _SegmentCost:
        weight_bytes = self._segment_weight_bytes(segment)
        # Activation working set: heaviest single-layer in/out at batch 1
        # (mini-batch streams at least one sample at a time).
        act_bytes = max(
            (self._layer(segment.model, idx, 1).input_bytes
             + self._layer(segment.model, idx, 1).output_bytes
             for idx in segment.layer_indices()),
            default=0)
        resident = weight_bytes + act_bytes <= chiplet.sram_bytes
        var, fix, energy = self.comm.offchip_parts(weight_bytes, segment.node)
        return _SegmentCost(weight_bytes=weight_bytes,
                            resident=resident, weight_load_var_s=var,
                            weight_load_fix_s=fix, weight_load_j=energy)

    def _chain_at_minibatch(self, chain: tuple[Segment, ...],
                            seg_costs: list[_SegmentCost], batch: int,
                            minibatch: int, tile: int,
                            congestion: dict[tuple, float]) -> ModelWindowMetrics:
        """Pipeline latency/energy at a fixed (mini-batch, tile factor).

        Each mini-batch streams through the chain in ``tile`` spatial
        tiles: data-proportional latency (compute, serialization, weight
        re-streaming) divides by ``tile``; fixed per-transfer latency
        (hop propagation, DRAM access) is paid once per tile.  Energy is
        tile-invariant.
        """
        model = chain[0].model
        num_minibatches = batch // minibatch
        per_tile: list[float] = []
        energy = 0.0

        for pos, (segment, static) in enumerate(zip(chain, seg_costs)):
            comp_s, comp_j = self._segment_compute(segment, minibatch)
            energy += comp_j * num_minibatches
            var_s = comp_s
            fix_s = 0.0

            # ip_com: incoming activations (off-chip for the head segment,
            # NoP from the predecessor otherwise).
            if pos == 0:
                first = self._layer(model, segment.start, minibatch)
                v, f, e = self.comm.offchip_parts(
                    float(first.input_bytes), segment.node,
                    congestion.get((None, segment.node), 1.0))
            else:
                prev = chain[pos - 1]
                prev_out = self._layer(model, prev.stop - 1, minibatch)
                v, f, e = self.comm.chiplet_parts(
                    float(prev_out.output_bytes), prev.node, segment.node,
                    congestion.get((prev.node, segment.node), 1.0))
            var_s += v
            fix_s += f
            energy += e * num_minibatches

            # op_com: only the tail segment writes results off-chip.
            if pos == len(chain) - 1:
                out_layer = self._layer(model, segment.stop - 1, minibatch)
                v, f, e = self.comm.offchip_parts(
                    float(out_layer.output_bytes), segment.node,
                    congestion.get((segment.node, None), 1.0))
                var_s += v
                fix_s += f
                energy += e * num_minibatches

            if static.resident:
                energy += static.weight_load_j
            else:
                # Weights re-streamed every mini-batch pass.
                var_s += static.weight_load_var_s
                fix_s += static.weight_load_fix_s
                energy += static.weight_load_j * num_minibatches
            per_tile.append(var_s / tile + fix_s)

        units = num_minibatches * tile
        fill = sum(per_tile)
        # One-time weight pre-load for resident segments (conservative
        # serial fill; no further overlap assumed).
        fill += sum(s.weight_load_s for s in seg_costs if s.resident)
        latency = fill + (units - 1) * max(per_tile)
        return ModelWindowMetrics(
            model=model, latency_s=latency, energy_j=energy,
            minibatch=minibatch, tile_factor=tile,
            segment_latencies_s=tuple(per_tile))
