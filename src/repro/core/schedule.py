"""Schedule IR: time windows, segments and full schedules (Defs. 4-9).

Because models are topologically sorted, SCAR's greedy layer packing and
segmentation always produce *contiguous* ranges of each model's layer
sequence.  The IR therefore represents

* a **segment** (Definition 5) as a half-open layer range of one model
  bound to a chiplet node, and
* a **time window** (Definition 4) as, per model, an ordered chain of
  segments covering the model's layer range assigned to that window.

Validity checks implement Theorem 1 (segments partition the window's
layers) and Theorem 2 (windows partition the workload).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import SchedulingError, ValidationError
from repro.workloads.model import Scenario


@dataclass(frozen=True)
class Segment:
    """Definition 5: a contiguous group of one model's layers on one chiplet.

    ``model`` indexes into the scenario's instances; layers span
    ``[start, stop)`` of that model's topological order.  ``node`` is the
    chiplet assignment produced by the SCHED engine (``None`` while the
    segment is still unplaced).
    """

    model: int
    start: int
    stop: int
    node: int | None = None

    def __post_init__(self) -> None:
        if self.model < 0:
            raise SchedulingError(f"negative model index {self.model}")
        if not (0 <= self.start < self.stop):
            raise SchedulingError(
                f"segment range [{self.start}, {self.stop}) is empty or "
                "negative")

    @property
    def num_layers(self) -> int:
        return self.stop - self.start

    def layer_indices(self) -> range:
        return range(self.start, self.stop)

    def placed(self, node: int) -> "Segment":
        """This segment bound to a chiplet node."""
        return replace(self, node=node)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f"@c{self.node}" if self.node is not None else "@?"
        return f"m{self.model}[{self.start}:{self.stop}]{where}"


@dataclass(frozen=True)
class WindowSchedule:
    """One time window's spatial/temporal mapping (Definitions 4 and 7).

    ``chains[m]`` is model ``m``'s ordered segment chain inside this window
    (execution order; inter-chiplet pipelining runs along the chain).
    Models absent from the window simply have no entry.
    """

    index: int
    chains: tuple[tuple[Segment, ...], ...]

    def __post_init__(self) -> None:
        for chain in self.chains:
            if not chain:
                raise SchedulingError(
                    f"window {self.index} has an empty segment chain")
            model = chain[0].model
            cursor = chain[0].start
            for segment in chain:
                if segment.model != model:
                    raise SchedulingError(
                        f"window {self.index}: chain mixes models "
                        f"{model} and {segment.model}")
                if segment.start != cursor:
                    raise ValidationError(
                        f"window {self.index}: model {model} segments are "
                        f"not contiguous at layer {cursor}")
                cursor = segment.stop

    @property
    def models(self) -> tuple[int, ...]:
        return tuple(chain[0].model for chain in self.chains)

    def chain_for(self, model: int) -> tuple[Segment, ...]:
        """Segment chain of ``model`` in this window."""
        for chain in self.chains:
            if chain[0].model == model:
                return chain
        raise SchedulingError(
            f"window {self.index} has no segments for model {model}")

    def layer_range(self, model: int) -> tuple[int, int]:
        """[start, stop) of the model's layers covered by this window."""
        chain = self.chain_for(model)
        return chain[0].start, chain[-1].stop

    def segments(self) -> tuple[Segment, ...]:
        """All segments in the window, model-major."""
        return tuple(seg for chain in self.chains for seg in chain)

    def nodes_used(self) -> tuple[int, ...]:
        """Distinct chiplet nodes occupied by placed segments."""
        nodes = {seg.node for seg in self.segments() if seg.node is not None}
        return tuple(sorted(nodes))

    @property
    def total_layers(self) -> int:
        return sum(seg.num_layers for seg in self.segments())


@dataclass(frozen=True)
class Schedule:
    """A full schedule instance (Definition 9): ordered time windows."""

    windows: tuple[WindowSchedule, ...]

    def __post_init__(self) -> None:
        if not self.windows:
            raise SchedulingError("schedule has no time windows")
        for expected, window in enumerate(self.windows):
            if window.index != expected:
                raise SchedulingError(
                    f"window indices must be 0..n-1 in order; found "
                    f"{window.index} at position {expected}")

    @property
    def num_windows(self) -> int:
        return len(self.windows)

    def segments(self) -> tuple[Segment, ...]:
        return tuple(seg for window in self.windows
                     for seg in window.segments())

    def validate(self, scenario: Scenario) -> None:
        """Theorem 1 + Theorem 2: exact partition of every model's layers.

        Raises :class:`ValidationError` on coverage gaps, overlaps, or
        out-of-range layers; also checks chiplet exclusivity within each
        window (a node hosts at most one model per window).
        """
        cursors = [0] * len(scenario)
        for window in self.windows:
            owners: dict[int, int] = {}
            for chain in window.chains:
                model = chain[0].model
                if model >= len(scenario):
                    raise ValidationError(
                        f"window {window.index} references model {model} "
                        f"outside scenario ({len(scenario)} models)")
                if chain[0].start != cursors[model]:
                    raise ValidationError(
                        f"model {model} ({scenario[model].name}): window "
                        f"{window.index} starts at layer {chain[0].start}, "
                        f"expected {cursors[model]}")
                cursors[model] = chain[-1].stop
                for segment in chain:
                    if segment.node is None:
                        continue
                    owner = owners.setdefault(segment.node, model)
                    if owner != model:
                        raise ValidationError(
                            f"window {window.index}: node {segment.node} "
                            f"shared by models {owner} "
                            f"({scenario[owner].name}) and {model} "
                            f"({scenario[model].name})")
        for model, cursor in enumerate(cursors):
            expected = scenario[model].num_layers
            if cursor != expected:
                raise ValidationError(
                    f"model {model} ({scenario[model].name}) covers layers "
                    f"[0, {cursor}) but has {expected} layers (Theorem 2 "
                    "violation)")

    def describe(self, scenario: Scenario) -> str:
        """Multi-line human-readable schedule dump (Fig. 9 style)."""
        lines = []
        for window in self.windows:
            lines.append(f"window {window.index}:")
            for chain in window.chains:
                name = scenario[chain[0].model].name
                parts = ", ".join(
                    f"L[{seg.start}:{seg.stop})->c{seg.node}"
                    for seg in chain)
                lines.append(f"  {name}: {parts}")
        return "\n".join(lines)
