"""Evolutionary segmentation search (Sec. V-D, the 6x6 scaling study).

For large MCMs the SEG space outgrows enumeration; the paper swaps the SEG
module for an evolutionary algorithm (population 10, 4 generations).  An
individual is the window's joint segmentation -- one cut-tuple per model --
and fitness is the best SCHED-engine score reachable with that
segmentation under a small placement budget.

Genetic operators: tournament selection, per-model uniform crossover, and
cut mutation (add / remove / move one cut).  Everything is seeded and
deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.budget import SearchBudget
from repro.core.metrics import ScheduleEvaluator
from repro.core.packing import WindowAssignment
from repro.core.scoring import Objective
from repro.core.sched_engine import WindowCandidate, search_window
from repro.core.segmentation import Cuts, RankedSegmentation
from repro.errors import SearchError

Individual = dict[int, Cuts]
"""Model index -> cut tuple."""


@dataclass(frozen=True)
class GAConfig:
    """Evolutionary-search hyperparameters (paper defaults)."""

    population_size: int = 10
    generations: int = 4
    crossover_rate: float = 0.7
    mutation_rate: float = 0.5
    tournament: int = 2


def _random_cuts(rng: random.Random, start: int, stop: int,
                 max_segments: int) -> Cuts:
    """A random valid cut tuple for a [start, stop) range."""
    num_layers = stop - start
    max_cuts = min(max_segments, num_layers) - 1
    if max_cuts <= 0:
        return ()
    num_cuts = rng.randint(0, max_cuts)
    positions = list(range(start + 1, stop))
    return tuple(sorted(rng.sample(positions, min(num_cuts, len(positions)))))


def _mutate_cuts(rng: random.Random, cuts: Cuts, start: int, stop: int,
                 max_segments: int) -> Cuts:
    """Add, remove or move one cut (whichever is legal)."""
    positions = [p for p in range(start + 1, stop) if p not in cuts]
    moves = []
    if cuts:
        moves.append("remove")
        if positions:
            moves.append("move")
    if positions and len(cuts) + 1 < min(max_segments, stop - start):
        moves.append("add")
    if not moves:
        return cuts
    move = rng.choice(moves)
    new = list(cuts)
    if move == "remove":
        new.remove(rng.choice(new))
    elif move == "add":
        new.append(rng.choice(positions))
    else:
        new.remove(rng.choice(new))
        new.append(rng.choice(positions))
    return tuple(sorted(new))


class EvolutionarySegSearch:
    """GA over joint window segmentations, fitness via the SCHED engine."""

    def __init__(self, window: WindowAssignment, alloc: dict[int, int],
                 evaluator: ScheduleEvaluator, objective: Objective,
                 budget: SearchBudget, config: GAConfig | None = None,
                 seeds: dict[int, list[Cuts]] | None = None,
                 window_search=None) -> None:
        self.window = window
        self.alloc = alloc
        self.evaluator = evaluator
        self.objective = objective
        self.budget = budget
        self.config = config or GAConfig()
        self.seeds = seeds or {}
        #: Per-window SCHED strategy; ``None`` keeps the plain exhaustive
        #: kernel (bit-identical to an engine-layer
        #: ``WindowSearch(beam=None)``, see :mod:`repro.engine.search`).
        self._search = window_search.run if window_search is not None \
            else search_window
        self.rng = random.Random(budget.seed + 104729 * window.index)
        evals = self.config.population_size * (self.config.generations + 1)
        self._fitness_budget = budget.fitness_slice(evals)
        self._cache: dict[tuple, WindowCandidate] = {}
        self.evaluated: list[WindowCandidate] = []

    # -- individuals -------------------------------------------------------

    def _range(self, model: int) -> tuple[int, int]:
        layer_range = self.window.range_for(model)
        assert layer_range is not None
        return layer_range

    def _random_individual(self) -> Individual:
        individual: Individual = {}
        for model in self.window.models:
            start, stop = self._range(model)
            individual[model] = _random_cuts(self.rng, start, stop,
                                             self.alloc[model])
        return individual

    def _initial_population(self) -> list[Individual]:
        population: list[Individual] = []
        # Seed with externally ranked segmentations (SEG proxy winners).
        seed_depth = max((len(v) for v in self.seeds.values()), default=0)
        for rank in range(seed_depth):
            individual: Individual = {}
            for model in self.window.models:
                options = self.seeds.get(model, [])
                individual[model] = options[min(rank, len(options) - 1)] \
                    if options else ()
            population.append(individual)
        while len(population) < self.config.population_size:
            population.append(self._random_individual())
        return population[:self.config.population_size]

    # -- genetic operators ---------------------------------------------------

    def _crossover(self, a: Individual, b: Individual) -> Individual:
        return {m: (a[m] if self.rng.random() < 0.5 else b[m])
                for m in self.window.models}

    def _mutate(self, individual: Individual) -> Individual:
        model = self.rng.choice(list(self.window.models))
        start, stop = self._range(model)
        mutated = dict(individual)
        mutated[model] = _mutate_cuts(self.rng, individual[model], start,
                                      stop, self.alloc[model])
        return mutated

    def _tournament(self, scored: list[tuple[float, Individual]]) -> Individual:
        picks = [scored[self.rng.randrange(len(scored))]
                 for _ in range(self.config.tournament)]
        return min(picks, key=lambda pair: pair[0])[1]

    # -- fitness ---------------------------------------------------------------

    def _fitness(self, individual: Individual) -> tuple[float, WindowCandidate | None]:
        key = tuple(sorted(individual.items()))
        if key in self._cache:
            cached = self._cache[key]
            self.evaluator.cache.record("fitness", hit=True)
            return cached.score, cached
        self.evaluator.cache.record("fitness", hit=False)
        ranked = {m: [RankedSegmentation(cuts=cuts, score=0.0)]
                  for m, cuts in individual.items()}
        try:
            candidate = self._search(self.window, ranked, self.evaluator,
                                     self.objective, self._fitness_budget,
                                     collect=self.evaluated)
        except SearchError:
            return float("inf"), None
        self._cache[key] = candidate
        return candidate.score, candidate

    # -- main loop ---------------------------------------------------------------

    def run(self) -> WindowCandidate:
        """Evolve and return the best window candidate found."""
        population = self._initial_population()
        best: WindowCandidate | None = None
        for _ in range(self.config.generations + 1):
            scored: list[tuple[float, Individual]] = []
            for individual in population:
                score, candidate = self._fitness(individual)
                scored.append((score, individual))
                if candidate is not None and (best is None
                                              or candidate.score < best.score):
                    best = candidate
            scored.sort(key=lambda pair: pair[0])
            # Elitism: keep the two best; breed the rest.
            next_population = [pair[1] for pair in scored[:2]]
            while len(next_population) < self.config.population_size:
                parent_a = self._tournament(scored)
                parent_b = self._tournament(scored)
                child = self._crossover(parent_a, parent_b) \
                    if self.rng.random() < self.config.crossover_rate \
                    else dict(parent_a)
                if self.rng.random() < self.config.mutation_rate:
                    child = self._mutate(child)
                next_population.append(child)
            population = next_population
        if best is None:
            raise SearchError(
                f"window {self.window.index}: evolutionary search found no "
                "feasible schedule")
        return best
