"""Provisioner engine (PROV, Sec. IV-B).

Estimates how many chiplet *nodes* each model receives in a time window.
PROV is dataflow-agnostic ("we refer to chiplets in this state as nodes").
Two modes are provided, as in the paper:

* **uniform rule** (Eq. 2): nodes proportional to each model's expected
  share of the optimization metric, with every present model guaranteed at
  least one node;
* **exhaustive**: every composition of the chiplet budget over the
  window's models (used by the Sec. V-E PROV ablation).

Heuristic 2 (node-allocation constraint) caps the nodes granted to models
with disproportionately many cheap layers.

Schedulers do not call these functions directly any more: the engine
layer (:mod:`repro.engine.provisioning`) wraps them as the shared
``window_shares`` / ``window_allocations`` plumbing every policy builds
its task list from.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.core.packing import WindowAssignment
from repro.errors import SchedulingError


def _bounded(count: int, model: int, window: WindowAssignment,
             max_nodes_per_model: int | None) -> int:
    layer_range = window.range_for(model)
    assert layer_range is not None
    num_layers = layer_range[1] - layer_range[0]
    bound = num_layers
    if max_nodes_per_model is not None:
        bound = min(bound, max_nodes_per_model)
    return max(1, min(count, bound))


def uniform_allocation(window: WindowAssignment,
                       expected_share: dict[int, float], num_chiplets: int,
                       max_nodes_per_model: int | None = None) -> dict[int, int]:
    """Eq. (2): ``N_i = round(E(P_i) / sum_j E(P_j) * |C|)``, floor 1.

    ``expected_share[m]`` is model ``m``'s expected optimization-metric
    mass in this window (e.g. summed expected latency).  Allocations are
    clipped to the model's layer count and the optional Heuristic-2 cap,
    then trimmed largest-first until the total fits the chiplet budget.
    """
    models = list(window.models)
    if not models:
        raise SchedulingError("window has no models to provision")
    if num_chiplets < len(models):
        raise SchedulingError(
            f"{num_chiplets} chiplets cannot host {len(models)} models")
    def clean(value: float) -> float:
        # Custom objectives may score inf/NaN; such shares cannot drive
        # the proportional rule and fall back to zero (floor-1 applies).
        if not math.isfinite(value) or value < 0:
            return 0.0
        return value

    total_share = sum(clean(expected_share.get(m, 0.0)) for m in models)
    alloc: dict[int, int] = {}
    for model in models:
        share = clean(expected_share.get(model, 0.0))
        raw = round(share / total_share * num_chiplets) if total_share else 1
        alloc[model] = _bounded(raw, model, window, max_nodes_per_model)
    # Trim overshoot: repeatedly shrink the largest allocation.
    while sum(alloc.values()) > num_chiplets:
        victim = max(alloc, key=lambda m: (alloc[m], m))
        if alloc[victim] == 1:
            raise SchedulingError(
                "cannot trim allocation below one node per model")
        alloc[victim] -= 1
    return alloc


def exhaustive_allocations(window: WindowAssignment, num_chiplets: int,
                           max_nodes_per_model: int | None = None,
                           limit: int | None = None) -> Iterator[dict[int, int]]:
    """All node compositions over the window's models (Sec. V-E ablation).

    Yields every assignment with one-or-more nodes per model and a total of
    at most ``num_chiplets``, respecting layer-count and Heuristic-2 caps.
    ``limit`` bounds the number of yielded compositions.
    """
    models = list(window.models)
    if num_chiplets < len(models):
        raise SchedulingError(
            f"{num_chiplets} chiplets cannot host {len(models)} models")
    caps = {m: _bounded(num_chiplets, m, window, max_nodes_per_model)
            for m in models}

    yielded = 0

    def rec(idx: int, remaining: int,
            current: dict[int, int]) -> Iterator[dict[int, int]]:
        nonlocal yielded
        if limit is not None and yielded >= limit:
            return
        if idx == len(models):
            yielded += 1
            yield dict(current)
            return
        model = models[idx]
        models_left = len(models) - idx - 1
        upper = min(caps[model], remaining - models_left)
        for count in range(1, upper + 1):
            current[model] = count
            yield from rec(idx + 1, remaining - count, current)
            if limit is not None and yielded >= limit:
                return
        current.pop(model, None)

    yield from rec(0, num_chiplets, {})
