"""Baseline schedulers (Sec. V "Baselines and MCM patterns", Sec. II-C).

* **Standalone** -- each model is pinned to its own single chiplet for its
  whole execution; all models run concurrently (spatial multi-tenancy).
  The paper pairs this policy with homogeneous MCMs ("Standalone (Shi)" /
  "Standalone (NVD)").
* **NN-baton-style** -- the single-model scheduler baseline from the
  motivational study: models execute *sequentially*, each on its starting
  chiplet, agnostic to the MCM's heterogeneous composition.
* **Simba-like pipelining** is not a separate class: it is SCAR run on a
  homogeneous MCM template (models may span multiple same-dataflow
  chiplets per window), exactly how the paper constructs that baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import ScheduleMetrics
from repro.core.schedule import Schedule, Segment, WindowSchedule
from repro.dataflow.database import LayerCostDatabase
from repro.engine.evaluator import CandidateEvaluator
from repro.errors import SchedulingError
from repro.mcm.package import MCM
from repro.workloads.model import Scenario


@dataclass(frozen=True)
class BaselineResult:
    """Schedule and metrics produced by a baseline scheduler."""

    schedule: Schedule
    metrics: ScheduleMetrics


class StandaloneScheduler:
    """One model per chiplet, one segment per model, one time window.

    Chiplets are taken in node order (the MCM is homogeneous in the
    paper's use of this baseline, so the choice is immaterial; on a
    heterogeneous MCM the assignment is still deterministic).
    """

    def __init__(self, mcm: MCM,
                 database: LayerCostDatabase | None = None) -> None:
        self.mcm = mcm
        self.database = database or LayerCostDatabase(clock_hz=mcm.clock_hz)

    def schedule(self, scenario: Scenario) -> BaselineResult:
        if len(scenario) > self.mcm.num_chiplets:
            raise SchedulingError(
                f"standalone needs one chiplet per model: {len(scenario)} "
                f"models vs {self.mcm.num_chiplets} chiplets")
        chains = []
        for model, instance in enumerate(scenario):
            segment = Segment(model=model, start=0,
                              stop=instance.num_layers, node=model)
            chains.append((segment,))
        schedule = Schedule(windows=(
            WindowSchedule(index=0, chains=tuple(chains)),))
        evaluator = CandidateEvaluator(scenario, self.mcm, self.database)
        return BaselineResult(schedule=schedule,
                              metrics=evaluator.evaluate(schedule))


class NNBatonScheduler:
    """NN-baton-style sequential single-model scheduling (Sec. II-C).

    Every model runs in its own time window on the starting chiplet
    (node 0), so models serialize end-to-end -- the behaviour the
    motivational study's case (B1) attributes to NN-baton on multi-model
    workloads.
    """

    def __init__(self, mcm: MCM, start_node: int = 0,
                 database: LayerCostDatabase | None = None) -> None:
        self.mcm = mcm
        self.start_node = start_node
        self.database = database or LayerCostDatabase(clock_hz=mcm.clock_hz)

    def schedule(self, scenario: Scenario) -> BaselineResult:
        windows = []
        for model, instance in enumerate(scenario):
            segment = Segment(model=model, start=0,
                              stop=instance.num_layers, node=self.start_node)
            windows.append(WindowSchedule(index=model,
                                          chains=((segment,),)))
        schedule = Schedule(windows=tuple(windows))
        evaluator = CandidateEvaluator(scenario, self.mcm, self.database)
        return BaselineResult(schedule=schedule,
                              metrics=evaluator.evaluate(schedule))
