"""SCAR scheduler facade (Fig. 4): the four engines wired together.

``SCARScheduler.schedule(scenario)`` runs the full multi-tiered search:

1. **MCM-Reconfig** -- offline expected layer costs (Eq. 1), periodic time
   windows, greedy layer packing (Algorithm 1, or the uniform baseline).
2. **PROV** -- per-window node allocation (Eq. 2 uniform rule, or
   exhaustive composition enumeration), via
   :mod:`repro.engine.provisioning`.
3. **SEG** -- top-k segmentation candidates per model (Heuristic 1), with
   the optional Heuristic-2 node-allocation constraint.
4. **SCHED** -- scheduling-tree placement search with full cost-model
   evaluation (or the evolutionary variant for large MCMs), executed
   through the unified engine layer: one
   :class:`~repro.engine.CandidateEvaluator` (delta costing + stats), a
   :class:`~repro.engine.WindowSearch` strategy (``beam=None`` = the
   paper's exhaustive search) and a pluggable execution backend
   (``serial`` / ``process``).

The result carries the chosen schedule, its metrics and the whole
evaluated population, which the Pareto/top-candidate figures consume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.budget import SearchBudget
from repro.core.evalcache import EvalCache
from repro.core.evolutionary import EvolutionarySegSearch, GAConfig
from repro.core.metrics import ScheduleMetrics
from repro.core.packing import (
    PackingPlan,
    WindowAssignment,
    expected_layer_energies,
    expected_layer_latencies,
    greedy_pack,
    uniform_pack,
)
from repro.core.schedule import Schedule
from repro.core.scoring import Objective, edp_objective
from repro.core.sched_engine import WindowCandidate
from repro.core.segmentation import RankedSegmentation, rank_segmentations
from repro.dataflow.database import LayerCostDatabase
from repro.engine.backends import ExecutionBackend, resolve_backend
from repro.engine.candidates import assemble_candidate_points
from repro.engine.evaluator import CandidateEvaluator, EvaluatorStats
from repro.engine.provisioning import window_allocations, window_shares
from repro.engine.tensorkernel import EVAL_MODES, TensorEvaluator, require_numpy
from repro.engine.search import WindowSearch
from repro.errors import SearchError
from repro.mcm.package import MCM
from repro.perf import PerfReport, diff_stats, log_report, merge_stats
from repro.workloads.model import Scenario

__all__ = ["SCARResult", "SCARScheduler", "assemble_candidate_points"]


@dataclass(frozen=True)
class SCARResult:
    """Everything a scheduling run produced."""

    schedule: Schedule
    metrics: ScheduleMetrics
    plan: PackingPlan
    window_candidates: tuple[tuple[WindowCandidate, ...], ...]
    num_evaluated: int
    perf: PerfReport | None = None

    def candidate_points(self) -> list[tuple[float, float]]:
        """(latency_s, energy_j) of assembled candidate schedules.

        See :func:`repro.engine.candidates.assemble_candidate_points`
        (the one Pareto construction shared with the wire-side
        ``ScheduleResult``).
        """
        return assemble_candidate_points(
            self.window_candidates,
            fallback=(self.metrics.latency_s, self.metrics.energy_j))


class SCARScheduler:
    """The SCAR multi-model scheduler for one MCM configuration.

    Parameters mirror the paper's hyperparameters:

    ``nsplits``              time-window split count (default 4 -> 5 windows).
    ``objective``            Latency / Energy / EDP search (default EDP).
    ``budget``               search caps (see :class:`SearchBudget`).
    ``packing``              ``"greedy"`` (Algorithm 1) or ``"uniform"``.
    ``provisioning``         ``"uniform"`` (Eq. 2) or ``"exhaustive"``.
    ``max_nodes_per_model``  Heuristic-2 node-allocation constraint.
    ``seg_search``           ``"enumerative"`` or ``"evolutionary"``.
    ``jobs``                 worker processes for the window search
                             (1 = serial; results are bit-identical
                             either way, see :meth:`schedule`).
    ``backend``              execution backend name (``"serial"`` /
                             ``"process"`` / a registered plugin);
                             ``None`` infers from ``jobs`` exactly as the
                             pre-backend scheduler did.
    ``beam``                 :class:`~repro.engine.WindowSearch` beam
                             width; ``None`` (default, used by every
                             paper figure) = exhaustive search.
    ``use_cache``            enable the segment-cost memo (results are
                             bit-identical with it off; it only trades
                             memory for speed).
    ``use_delta``            enable the chain-level delta-evaluation fast
                             path (bit-identical on or off; off is only
                             useful for measuring what it saves).
    ``eval_mode``            candidate-costing kernel: ``"scalar"`` (the
                             pure-Python Sec. III-E reference, default)
                             or ``"vector"`` (the numpy tensor kernel of
                             :mod:`repro.engine.tensorkernel`; requires
                             the optional numpy dependency and produces
                             bit-identical schedules and metrics).
    ``cache``                inject a caller-owned :class:`EvalCache`
                             instead of building a fresh one per
                             :meth:`schedule` call.  A long-lived front-end
                             (the warm simulation replay, see
                             :mod:`repro.sim`) shares one cache across
                             runs *of the same scenario + MCM*, so
                             repeated searches start warm; entries are
                             pure functions of their keys, so results
                             stay bit-identical.  The per-run perf report
                             still counts only this run's lookups (the
                             scheduler snapshots the cache counters
                             around the run).
    """

    def __init__(self, mcm: MCM, *, objective: Objective | None = None,
                 nsplits: int = 4, budget: SearchBudget | None = None,
                 database: LayerCostDatabase | None = None,
                 packing: str = "greedy", provisioning: str = "uniform",
                 max_nodes_per_model: int | None = None,
                 seg_search: str = "enumerative",
                 ga_config: GAConfig | None = None,
                 prov_limit: int = 64, jobs: int = 1,
                 backend: str | None = None, beam: int | None = None,
                 use_cache: bool = True, use_delta: bool = True,
                 cache: EvalCache | None = None,
                 eval_mode: str = "scalar") -> None:
        if packing not in ("greedy", "uniform"):
            raise SearchError(f"unknown packing mode {packing!r}")
        if provisioning not in ("uniform", "exhaustive"):
            raise SearchError(f"unknown provisioning mode {provisioning!r}")
        if seg_search not in ("enumerative", "evolutionary"):
            raise SearchError(f"unknown seg_search mode {seg_search!r}")
        if jobs < 1:
            raise SearchError(f"jobs must be >= 1, got {jobs}")
        if eval_mode not in EVAL_MODES:
            raise SearchError(f"unknown eval_mode {eval_mode!r}; "
                              f"expected one of {EVAL_MODES}")
        if eval_mode == "vector":
            require_numpy()
        self.mcm = mcm
        self.objective = objective or edp_objective()
        self.nsplits = nsplits
        self.budget = budget or SearchBudget()
        self.database = database or LayerCostDatabase(clock_hz=mcm.clock_hz)
        self.packing = packing
        self.provisioning = provisioning
        self.max_nodes_per_model = max_nodes_per_model
        self.seg_search = seg_search
        self.ga_config = ga_config
        self.prov_limit = prov_limit
        self.jobs = jobs
        self.use_cache = use_cache
        self.use_delta = use_delta
        self.cache = cache
        self.eval_mode = eval_mode
        self.window_search = WindowSearch(beam=beam)
        self.backend: ExecutionBackend = resolve_backend(backend, jobs)

    # -- public API ------------------------------------------------------------

    def make_evaluator(self, scenario: Scenario,
                       cache: EvalCache | None = None) -> CandidateEvaluator:
        """Build the candidate evaluator this scheduler is configured for.

        Chooses the scalar reference kernel or the numpy tensor kernel
        per ``eval_mode``; both honour ``use_delta`` and share the same
        cache/stat channels.  Backends call this so worker processes
        build the same kernel as the parent.
        """
        cls = TensorEvaluator if self.eval_mode == "vector" \
            else CandidateEvaluator
        if cache is None:
            cache = EvalCache(enabled=self.use_cache)
        return cls(scenario, self.mcm, self.database, cache=cache,
                   delta=self.use_delta)

    def schedule(self, scenario: Scenario) -> SCARResult:
        """Run the full SCAR search on ``scenario``.

        The search is decomposed into independent (window, provisioning
        allocation) tasks handed to the configured execution backend.
        Each task is internally deterministic (seeded by its window
        index) and the merge orders outcomes by ``(window_index,
        alloc_index)`` and picks per-window winners by ``(score,
        alloc_index)`` -- exactly the serial iteration order -- so every
        backend produces bit-identical results.
        """
        wall_start = time.perf_counter()
        cache = self.cache if self.cache is not None \
            else EvalCache(enabled=self.use_cache)
        # An injected cache outlives this run; snapshot its counters so
        # the perf report covers this run's lookups only.
        cache_before = cache.snapshot() if self.cache is not None else None
        evaluator = self.make_evaluator(scenario, cache=cache)
        expected_lat = expected_layer_latencies(scenario, self.mcm,
                                                self.database)
        expected_en = expected_layer_energies(scenario, self.mcm,
                                              self.database)
        if self.packing == "greedy":
            plan = greedy_pack(scenario, expected_lat, self.nsplits)
        else:
            plan = uniform_pack(scenario, self.nsplits)

        tasks = []
        for window in plan.windows:
            shares = window_shares(self.objective, window, expected_lat,
                                   expected_en)
            allocations = window_allocations(
                window, shares, mode=self.provisioning,
                num_chiplets=self.mcm.num_chiplets,
                max_nodes_per_model=self.max_nodes_per_model,
                limit=self.prov_limit)
            for alloc_index, alloc in enumerate(allocations):
                tasks.append((window, alloc_index, alloc))

        outcomes = self.backend.run(self, scenario, tasks, expected_lat,
                                    evaluator)

        (best_by_window, all_candidates, num_evaluated, worker_stats,
         eval_stats) = self._merge_outcomes(plan, outcomes)

        schedule = Schedule(windows=tuple(
            candidate.window for candidate in best_by_window))
        metrics = evaluator.evaluate(schedule)
        eval_stats.merge(evaluator.stats)
        perf = PerfReport(
            wall_s=time.perf_counter() - wall_start,
            num_evaluated=num_evaluated,
            num_windows=plan.num_windows,
            # The backend's parallelism, not the configured ``jobs``: an
            # explicit serial backend overriding jobs=N reports 1.
            jobs=self.backend.jobs,
            cache=merge_stats(
                cache.snapshot() if cache_before is None
                else diff_stats(cache.snapshot(), cache_before),
                *worker_stats),
            num_segments=eval_stats.num_segments,
            num_segments_recosted=eval_stats.num_segments_recosted,
        )
        log_report(perf)
        return SCARResult(schedule=schedule, metrics=metrics, plan=plan,
                          window_candidates=tuple(all_candidates),
                          num_evaluated=num_evaluated, perf=perf)

    # -- task merge -------------------------------------------------------

    @staticmethod
    def _merge_outcomes(plan: PackingPlan, outcomes):
        """Deterministically merge per-(window, alloc) search outcomes."""
        outcomes = sorted(outcomes, key=lambda o: (o[0], o[1]))
        best: dict[int, tuple[tuple[float, int], WindowCandidate]] = {}
        collected: dict[int, list[WindowCandidate]] = {}
        worker_stats = []
        eval_stats = EvaluatorStats()
        for (window_index, alloc_index, candidate, evaluated, stats,
                seg_stats) in outcomes:
            collected.setdefault(window_index, []).extend(evaluated)
            rank = (candidate.score, alloc_index)
            if window_index not in best or rank < best[window_index][0]:
                best[window_index] = (rank, candidate)
            if stats is not None:
                worker_stats.append(stats)
            if seg_stats is not None:
                eval_stats.merge(seg_stats)
        best_by_window = [best[w.index][1] for w in plan.windows]
        all_candidates = [tuple(collected.get(w.index, []))
                          for w in plan.windows]
        num_evaluated = sum(len(c) for c in all_candidates)
        return (best_by_window, all_candidates, num_evaluated,
                worker_stats, eval_stats)

    # -- engine plumbing ----------------------------------------------------------

    def _rank_for_window(self, scenario: Scenario, window: WindowAssignment,
                         alloc: dict[int, int],
                         expected_lat: list[list[float]]
                         ) -> dict[int, list[RankedSegmentation]]:
        ranked: dict[int, list[RankedSegmentation]] = {}
        for model, start, stop in window.ranges:
            instance = scenario[model]
            boundary = [float(instance.layer(i).output_bytes)
                        for i in range(start, stop)]
            ranked[model] = rank_segmentations(
                start, stop, alloc[model],
                expected_lat[model][start:stop], instance.batch,
                boundary, self.mcm.nop_gbps, self.budget)
        return ranked

    def _search_one_alloc(self, scenario: Scenario,
                          window: WindowAssignment, alloc: dict[int, int],
                          expected_lat: list[list[float]],
                          evaluator: CandidateEvaluator,
                          collected: list[WindowCandidate]
                          ) -> WindowCandidate:
        """SEG + SCHED search of one window under one node allocation."""
        ranked = self._rank_for_window(scenario, window, alloc,
                                       expected_lat)
        if self.seg_search == "evolutionary":
            seeds = {m: [r.cuts for r in ranked[m]] for m in ranked}
            search = EvolutionarySegSearch(
                window, alloc, evaluator, self.objective, self.budget,
                config=self.ga_config, seeds=seeds,
                window_search=self.window_search)
            candidate = search.run()
            collected.extend(search.evaluated)
            return candidate
        return self.window_search.run(window, ranked, evaluator,
                                      self.objective, self.budget,
                                      collect=collected)
